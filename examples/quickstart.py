"""Quickstart: generate a cohort, build the DD-DGMS, ask the first questions.

Run: ``python examples/quickstart.py``
"""

import datetime as dt

import repro
from repro.discri import DiScRiGenerator
from repro.discri.generator import offset_identifiers
from repro.dgms.system import DDDGMS
from repro.etl.quarantine import QuarantineStore
from repro.tabular.table import Table


def main() -> None:
    # 1. A synthetic DiScRi screening cohort (the paper's dataset, simulated).
    print("Generating cohort (300 patients)...")
    cohort = DiScRiGenerator(n_patients=300, seed=7).generate()
    print(f"  {cohort.num_rows} attendances, "
          f"{cohort.column('patient_id').n_unique()} patients, "
          f"{len(cohort.column_names) - 4} clinical attributes\n")

    # 2. The platform: ETL -> warehouse -> cube, behind the one front door.
    system = repro.open_system(cohort)
    print("ETL audit trail:")
    for entry in system.etl_audit:
        print(f"  {entry}")
    print()

    # 3. OLTP: the operational store answers point queries.
    visit = system.oltp_lookup(1)
    print(f"OLTP point lookup, visit 1: patient {visit['patient_id']}, "
          f"FBG {visit['fbg']}\n")

    # 4. OLAP: a drag-and-drop-style query (paper Fig 4 workflow).
    grid = (
        system.query()
        .rows("age_band")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
        .sorted_rows()
    )
    print("Diabetic patients by age band and gender:")
    print(grid.to_text(with_totals=True))
    print()

    # 5. The same question in MDX.
    mdx_grid = system.mdx(
        "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
        "[conditions].[age_band].MEMBERS ON ROWS "
        "FROM discri WHERE [conditions].[diabetes_status].[yes]"
    )
    print("Same grid via MDX (attendance counts):")
    print(mdx_grid.sorted_rows().to_text())
    print()

    # 6. Prediction: the next glycaemic phase for a pre-diabetic patient.
    predictor = system.trajectory_predictor()
    stage, distribution = predictor.predict_next_stage(
        {"patient_id": -1, "fbg_band": "preDiabetic"}
    )
    print(f"Most likely next phase after 'preDiabetic': {stage}")
    print("  distribution:", {k: round(v, 3) for k, v in distribution.items()})
    print()

    # 7. Fault-tolerant ingest: a dirty follow-up batch.  With a quarantine
    #    sink attached the loop loads every valid row and diverts the bad
    #    ones — row by row, with typed reasons — instead of failing.
    print("Ingesting a dirty follow-up batch (resilient mode)...")
    store = QuarantineStore()
    resilient = DDDGMS(cohort, quarantine=store)
    batch = offset_identifiers(
        DiScRiGenerator(n_patients=20, seed=11).generate(),
        max(cohort.column("patient_id").to_list()),
        max(cohort.column("visit_id").to_list()),
    )
    rows = batch.to_rows()
    rows[0]["visit_date"] = None  # a broken row: the derive step needs .year
    dirty = Table.from_rows(rows, schema=dict(cohort.schema))

    accepted = resilient.ingest_visits(dirty, batch="followup-2009")
    health = resilient.ingest_health()
    print(f"  accepted {accepted} rows; "
          f"quarantined {health['quarantined_total']} "
          f"(by step: {health['quarantined_by_step']})")
    for entry in store.rows():
        print(f"  - {entry.describe()}")

    # Repair the quarantined rows and re-drive them through the full loop.
    report = resilient.redrive_quarantine(
        repair=lambda row: {
            **row, "visit_date": row["visit_date"] or dt.date(2009, 5, 1)
        }
    )
    print(f"  redrive after repair: {report.summary()}; "
          f"{len(store)} rows remain quarantined")


if __name__ == "__main__":
    main()
