"""Quickstart: generate a cohort, build the DD-DGMS, ask the first questions.

Run: ``python examples/quickstart.py``
"""

import repro
from repro.discri import DiScRiGenerator


def main() -> None:
    # 1. A synthetic DiScRi screening cohort (the paper's dataset, simulated).
    print("Generating cohort (300 patients)...")
    cohort = DiScRiGenerator(n_patients=300, seed=7).generate()
    print(f"  {cohort.num_rows} attendances, "
          f"{cohort.column('patient_id').n_unique()} patients, "
          f"{len(cohort.column_names) - 4} clinical attributes\n")

    # 2. The platform: ETL -> warehouse -> cube, behind the one front door.
    system = repro.open_system(cohort)
    print("ETL audit trail:")
    for entry in system.etl_audit:
        print(f"  {entry}")
    print()

    # 3. OLTP: the operational store answers point queries.
    visit = system.oltp_lookup(1)
    print(f"OLTP point lookup, visit 1: patient {visit['patient_id']}, "
          f"FBG {visit['fbg']}\n")

    # 4. OLAP: a drag-and-drop-style query (paper Fig 4 workflow).
    grid = (
        system.query()
        .rows("age_band")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
        .sorted_rows()
    )
    print("Diabetic patients by age band and gender:")
    print(grid.to_text(with_totals=True))
    print()

    # 5. The same question in MDX.
    mdx_grid = system.mdx(
        "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
        "[conditions].[age_band].MEMBERS ON ROWS "
        "FROM discri WHERE [conditions].[diabetes_status].[yes]"
    )
    print("Same grid via MDX (attendance counts):")
    print(mdx_grid.sorted_rows().to_text())
    print()

    # 6. Prediction: the next glycaemic phase for a pre-diabetic patient.
    predictor = system.trajectory_predictor()
    stage, distribution = predictor.predict_next_stage(
        {"patient_id": -1, "fbg_band": "preDiabetic"}
    )
    print(f"Most likely next phase after 'preDiabetic': {stage}")
    print("  distribution:", {k: round(v, 3) for k, v in distribution.items()})


if __name__ == "__main__":
    main()
