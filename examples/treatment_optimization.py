"""The strategic user: treatment-regimen and screening optimisation.

Paper §IV: strategic users "seek information relevant for optimising
treatment regimen that have the best individual outcomes by reducing
disease progression ... within the economic constraints of the current
health care system."  Everything the optimiser consumes — group sizes,
detection rates — comes from the warehouse, which is the architecture's
point.

Run: ``python examples/treatment_optimization.py``
"""

from repro.dgms import DDDGMS, StrategicSession
from repro.discri import DiScRiGenerator
from repro.optimize import RegimenProblem, TreatmentOutcome


def main() -> None:
    print("Building the DD-DGMS (500 patients)...")
    system = DDDGMS(DiScRiGenerator(n_patients=500, seed=11).generate())
    session = StrategicSession(system, "clinical_administrator")

    # ---- case mix straight from the warehouse ----
    print("\nCase mix (distinct patients):")
    print(session.case_mix().sorted_rows().to_text(with_totals=True))

    # ---- regimen optimisation under a budget ----
    counts = (
        system.olap().rows("bloods.fbg_band")
        .count_distinct("cardinality.patient_id", name="patients")
        .execute()
    )
    group_sizes = {
        str(key[0]): float(counts.value(key, ("patients",)) or 0)
        for key in counts.row_keys
        if str(key[0]) in ("preDiabetic", "Diabetic")
    }
    print(f"\nIntervention groups from the warehouse: {group_sizes}")

    problem = RegimenProblem(
        group_sizes=group_sizes,
        outcomes=[
            TreatmentOutcome("preDiabetic", "lifestyle_program", 0.35, 110),
            TreatmentOutcome("preDiabetic", "metformin", 0.45, 320),
            TreatmentOutcome("Diabetic", "metformin", 0.75, 320),
            TreatmentOutcome("Diabetic", "intensive_management", 1.05, 950),
        ],
        budget=60_000,
    )
    plan = session.plan_regimen(problem)
    print("\nOptimal regimen:")
    print(plan.summary())
    print("Coverage:", {
        group: f"{fraction:.0%}"
        for group, fraction in plan.coverage(group_sizes).items()
    })

    # budget sensitivity: where does the next dollar go?
    print("\nBudget sweep (optimal benefit):")
    for budget in (20_000, 40_000, 60_000, 90_000, 130_000):
        sweep = RegimenProblem(group_sizes, problem.outcomes, budget=budget)
        swept = session.plan_regimen(sweep)
        print(f"  budget {budget:>7,} -> benefit {swept.total_benefit:7.1f} "
              f"(cost {swept.total_cost:9,.0f})")

    # ---- screening allocation from warehouse detection rates ----
    rates = session.detection_rates_from_warehouse("conditions.age_band")
    populations = {group: total for group, (total, __) in rates.items()}
    detection = {group: rate for group, (__, rate) in rates.items()}
    print("\nWarehouse-derived detection rates:")
    for group in sorted(detection):
        print(f"  {group}: population {populations[group]:.0f}, "
              f"diabetes rate {detection[group]:.2f}")

    allocation = session.plan_screening(
        populations, detection, capacity=sum(populations.values()) * 0.4,
        min_slots={group: populations[group] * 0.05 for group in populations},
    )
    print("\nScreening allocation (40% capacity, 5% equity floors):")
    print(allocation.summary())

    print("\nSession journal:")
    for line in session.journal:
        print(f"  {line}")


if __name__ == "__main__":
    main()
