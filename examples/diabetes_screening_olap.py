"""The paper's trial, end to end: Figs 4, 5 and 6 on the full cohort.

Reproduces the OLAP exploration of paper §V.C — family-history crosstab,
age/gender drill-down with its gender findings, and the hypertension-years
distribution with its 5-10-year dip — and writes the two charts as SVG.

Run: ``python examples/diabetes_screening_olap.py``
"""

from pathlib import Path

from repro.dgms import DDDGMS
from repro.discri import DiScRiGenerator
from repro.olap.operations import drill_down
from repro.viz.bars import grouped_bar_chart
from repro.viz.overlap import edge_groups

OUT = Path(__file__).parent / "out"


def main() -> None:
    print("Building the DD-DGMS over the full cohort (900 patients)...")
    system = DDDGMS(DiScRiGenerator(n_patients=900, seed=42).generate())
    OUT.mkdir(exist_ok=True)

    # ---- Fig 4: family history of diabetes by age group and gender ----
    fig4 = (
        system.olap()
        .rows("age_band")
        .columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes")
        .execute()
        .sorted_rows()
    )
    print("\nFig 4 — family history of diabetes by age group and gender:")
    print(fig4.to_text(with_totals=True))

    # ---- Fig 5: age and gender distribution of diabetics, drilled ----
    coarse = (
        system.olap()
        .rows("age_band10")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .build()
    )
    print("\nFig 5 — diabetics by 10-year age band and gender:")
    print(coarse.execute(system.cube).sorted_rows().to_text(with_totals=True))

    fine = drill_down(coarse, system.cube, "age_band10")
    grid5 = fine.execute(system.cube).sorted_rows()
    print("\nFig 5 (drill-down) — 5-year bands:")
    print(grid5.to_text(with_totals=True))
    print("\nFindings:")
    print(f"  70-75: M={grid5.value(('70-75',), ('M',))} vs "
          f"F={grid5.value(('70-75',), ('F',))}  (males dominate)")
    print(f"  75-80: F={grid5.value(('75-80',), ('F',))} vs "
          f"M={grid5.value(('75-80',), ('M',))}  (females the majority)")
    system.visualize(grid5, "Fig 5: diabetics by age band and gender",
                     OUT / "fig5.svg")

    # terminal rendering of the same chart
    rows = [key[0] for key in grid5.row_keys if key[0].startswith("7")]
    print()
    print(grouped_bar_chart(
        rows,
        {
            "F": {band: grid5.value((band,), ("F",)) for band in rows},
            "M": {band: grid5.value((band,), ("M",)) for band in rows},
        },
        title="diabetic patients, 70s age bands",
    ))

    # groups at the edges of overlapping dimensions (paper §IV Visualisation)
    print("\nEdge groups (thin intersections worth a hypothesis):")
    for group in edge_groups(grid5, max_edge_ratio=0.2, min_margin=8)[:5]:
        print(f"  {group.describe()}")

    # ---- Fig 6: years since hypertension diagnosis by age group ----
    fig6_coarse = (
        system.olap()
        .rows("age_band10")
        .columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes")
        .build()
    )
    grid6 = drill_down(fig6_coarse, system.cube, "age_band10").execute(
        system.cube
    ).sorted_rows()
    print("\nFig 6 (drill-down) — years since HT diagnosis by 5-year band:")
    print(grid6.to_text(with_totals=True))
    categories = ("<2", "2-5", "5-10", "10-20", ">=20")
    print("\n5-10y share per band (note the 70s dip):")
    for band in ("60-65", "65-70", "70-75", "75-80", "80-85"):
        cells = [grid6.value((band,), (c,)) or 0 for c in categories]
        total = sum(cells)
        share = cells[2] / total if total else 0.0
        print(f"  {band}: {share:.3f} (n={total})")
    system.visualize(grid6, "Fig 6: years since HT diagnosis by age band",
                     OUT / "fig6.svg")
    print(f"\nSVGs written to {OUT}/fig5.svg and {OUT}/fig6.svg")


if __name__ == "__main__":
    main()
