"""Translational research workflows: hypothesis generation from the warehouse.

Two §V.C narratives, end to end:

1. The AWSum insight — absent knee+ankle reflexes with a mid-range glucose
   reading is unexpectedly predictive of later diabetes; the finding is
   recorded in the knowledge base with its evidence.
2. The Ewing substitution — hand grip is unusable for many elderly
   patients; wrapper-filter selection finds a substitute battery for CAN
   risk assessment.

Run: ``python examples/translational_research.py``
"""

from repro.dgms import DDDGMS
from repro.discri import DiScRiGenerator
from repro.knowledge import FindingKind, draft_guidelines
from repro.mining import NaiveBayesClassifier, wrapper_filter_select


def reflex_glucose_insight(system: DDDGMS) -> None:
    print("=" * 68)
    print("1. AWSum: what predicts developing diabetes, before diagnosis?")
    print("=" * 68)
    pre_diagnosis = [
        row for row in system.transformed.to_rows()
        if row["diabetes_status"] == "no"
    ]
    model = system.awsum(
        "develops_diabetes",
        ["fbg_band", "reflex_knees_ankles", "exercise_frequency", "bmi_band"],
        min_support=15,
        rows=pre_diagnosis,
    )
    print("\nStrongest value influences (clinician-readable):")
    for influence in model.value_influences()[:8]:
        print(f"  {influence.render()}")

    print("\nMost surprising interactions:")
    interactions = model.interaction_influences(top=8)
    for interaction in interactions[:5]:
        print(f"  {interaction.render()}")

    # the paper's specific insight: reflexes × mid-range glucose
    reflex_glucose = [
        inter for inter in interactions
        if {inter.first.attribute, inter.second.attribute}
        == {"reflex_knees_ankles", "fbg_band"}
        and "absent" in (str(inter.first.value), str(inter.second.value))
    ]
    top = reflex_glucose[0] if reflex_glucose else interactions[0]
    statement = (
        f"{top.first.attribute}={top.first.value} combined with "
        f"{top.second.attribute}={top.second.value} is unexpectedly "
        f"predictive of developing diabetes "
        f"(joint influence {top.joint_weight:+.2f})"
    )
    system.record_finding(
        "awsum.reflex_glucose", FindingKind.ASSOCIATION, statement,
        source="AWSum interaction analysis",
        description=f"surprise {top.surprise:+.2f} over n={top.support} visits",
        weight=2.0, tags=["pre-diabetes", "screening"],
    )
    print(f"\nRecorded finding: {statement}")
    print("Hypothesis for the clinical scientist: nervous-system dysfunction "
          "may be present at a pre-diabetes stage (paper §II).")


def ewing_substitution(system: DDDGMS) -> None:
    print()
    print("=" * 68)
    print("2. Ewing battery: substituting the hand-grip test for the elderly")
    print("=" * 68)
    rows = system.transformed.to_rows()
    without_grip = [r for r in rows if r["ewing_handgrip_dbp_rise"] is None]
    elderly = [r for r in rows if r["age"] >= 75]
    missing_rate = sum(
        1 for r in elderly if r["ewing_handgrip_dbp_rise"] is None
    ) / len(elderly)
    print(f"\nHand grip missing on {len(without_grip)} of {len(rows)} visits; "
          f"{missing_rate:.0%} of visits by patients 75+.")

    candidates = [
        "ewing_hr_deep_breathing", "ewing_valsalva_ratio",
        "ewing_30_15_ratio", "ewing_postural_sbp_drop",
        "sdnn", "rmssd", "heart_rate_lying", "postural_drop_sbp",
    ]
    selected, trace = wrapper_filter_select(
        without_grip, "can_status", candidates,
        NaiveBayesClassifier, max_features=3, k=3,
    )
    print("\nWrapper-filter selection of a substitute battery "
          "(on visits with no hand-grip result):")
    for feature, score in trace:
        print(f"  + {feature}: cross-validated accuracy {score:.3f}")

    system.record_finding(
        "ewing.substitute_battery", FindingKind.PREDICTION,
        f"CAN risk can be assessed without the hand grip test using "
        f"{', '.join(selected)}",
        source="wrapper-filter selection",
        description=f"CV accuracy {trace[-1][1]:.3f} on {len(without_grip)} visits",
        weight=2.0, tags=["screening", "elderly"],
    )


def knowledge_cycle(system: DDDGMS) -> None:
    print()
    print("=" * 68)
    print("3. Knowledge management: promotion and guideline drafting")
    print("=" * 68)
    # a second round of evidence (e.g. a replication on next year's data)
    for key in ("awsum.reflex_glucose", "ewing.substitute_battery"):
        finding = system.knowledge_base.get(key)
        system.record_finding(
            key, finding.kind, finding.statement,
            source="replication", description="confirmed on held-out visits",
            weight=1.5,
        )
    promoted = system.knowledge_base.promote_ready()
    print(f"\nPromoted findings: {[f.key for f in promoted]}")

    guidelines = draft_guidelines(
        system.knowledge_base,
        {
            "Pre-diabetes screening additions": (
                "screening",
                "Include reflex testing alongside FBG in routine screening; "
                "substitute the Ewing hand-grip test for elderly patients.",
            )
        },
    )
    print()
    for guideline in guidelines:
        print(guideline.to_text())


def main() -> None:
    print("Building the DD-DGMS over the full cohort (900 patients)...")
    system = DDDGMS(DiScRiGenerator(n_patients=900, seed=42).generate(),
                    promotion_threshold=3.0)
    reflex_glucose_insight(system)
    ewing_substitution(system)
    knowledge_cycle(system)


if __name__ == "__main__":
    main()
