"""Prediction *and simulation* (DGMS phase 2), plus the trial report.

Projects the screening cohort's glycaemic case mix several visit-cycles
ahead — deterministically and by Monte-Carlo — shows a bedside patient
timeline, and finishes by writing the full markdown trial report.

Run: ``python examples/cohort_projection.py``
"""

from pathlib import Path

from repro.dgms import DDDGMS, OperationalSession, StrategicSession
from repro.dgms.report import generate_trial_report
from repro.discri import DiScRiGenerator
from repro.prediction import CohortSimulator
from repro.viz import line_chart

OUT = Path(__file__).parent / "out"


def main() -> None:
    print("Building the DD-DGMS (400 patients)...")
    system = DDDGMS(DiScRiGenerator(n_patients=400, seed=23).generate())
    OUT.mkdir(exist_ok=True)

    # ---- a bedside timeline (operational user) ----
    operational = OperationalSession(system, "dr_a")
    print("\n" + operational.patient_timeline(7))

    # ---- deterministic projection (strategic user) ----
    strategic = StrategicSession(system, "planner")
    projection = strategic.project_case_mix(periods=6)
    print("\nExpected glycaemic case mix, 6 visit-cycles ahead:")
    print(projection.to_text())

    stages = sorted(projection.steps[0].counts)
    print()
    print(line_chart(
        {stage: projection.series(stage) for stage in stages},
        labels=[str(step.period) for step in projection.steps],
        title="projected stage counts per period",
    ))

    # ---- Monte-Carlo bands around the projection ----
    predictor = system.trajectory_predictor()
    simulator = CohortSimulator(predictor.model)
    initial = projection.steps[0].counts
    __, bands = simulator.project_monte_carlo(
        initial, periods=6, runs=100, seed=1
    )
    print("\nMonte-Carlo 10th-90th percentile bands at period 6:")
    for stage in stages:
        low, high = bands[stage]
        expected = projection.final().counts[stage]
        print(f"  {stage:<12} expected {expected:7.1f}   band [{low:.0f}, {high:.0f}]")

    diabetic_growth = (
        projection.final().counts.get("Diabetic", 0.0)
        / max(projection.steps[0].counts.get("Diabetic", 1.0), 1.0)
    )
    print(f"\nDiabetic case load multiplier over the horizon: "
          f"{diabetic_growth:.2f}x — the number a budget planner needs.")

    # ---- the trial report ----
    report_path = OUT / "trial_report.md"
    generate_trial_report(system, path=report_path)
    print(f"\nFull trial report written to {report_path}")


if __name__ == "__main__":
    main()
