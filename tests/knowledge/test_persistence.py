"""Tests for knowledge-base save/load."""

import datetime as dt
import json

import pytest

from repro.errors import KnowledgeBaseError
from repro.knowledge.findings import Evidence, FindingKind
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.persistence import load_knowledge_base, save_knowledge_base


@pytest.fixture()
def kb():
    base = KnowledgeBase(promotion_threshold=2.5)
    base.record(
        "a", FindingKind.AGGREGATE, "claim A",
        Evidence("fig5", "drill-down", 2.0, recorded=dt.date(2013, 4, 8)),
        tags=["age", "gender"],
    )
    base.record("a", FindingKind.AGGREGATE, "claim A", Evidence("review", "ok", 1.0))
    base.record("b", FindingKind.TREND, "claim B", Evidence("s", "d", 0.5))
    base.promote("a")
    base.retire("b", "contradicted")
    return base


def test_round_trip_preserves_everything(kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    loaded = load_knowledge_base(path)
    assert loaded.promotion_threshold == kb.promotion_threshold
    assert len(loaded) == len(kb)
    a = loaded.get("a")
    assert a.status == "promoted"
    assert a.total_weight() == pytest.approx(3.0)
    assert a.tags == frozenset({"age", "gender"})
    assert a.evidence[0].recorded == dt.date(2013, 4, 8)
    assert loaded.get("b").status == "retired"


def test_loaded_base_keeps_working(kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    loaded = load_knowledge_base(path)
    loaded.record("c", FindingKind.FEEDBACK, "new claim", Evidence("s", "d", 3.0))
    assert loaded.promote("c").status == "promoted"


def test_missing_file(tmp_path):
    with pytest.raises(KnowledgeBaseError, match="no knowledge base"):
        load_knowledge_base(tmp_path / "absent.json")


def test_unsupported_version(tmp_path):
    path = tmp_path / "kb.json"
    path.write_text(json.dumps({"format_version": 99}), encoding="utf-8")
    with pytest.raises(KnowledgeBaseError, match="format"):
        load_knowledge_base(path)


def test_file_is_human_readable(kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["findings"][0]["statement"] == "claim A"


def test_crash_during_save_leaves_previous_file_intact(kb, tmp_path):
    from repro.knowledge.findings import Evidence, FindingKind
    from repro.storage.faults import FaultRule, SimulatedCrash, injected

    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    kb.record("c", FindingKind.FEEDBACK, "late claim", Evidence("s", "d", 1.0))
    with pytest.raises(SimulatedCrash):
        with injected([FaultRule("kb.write", mode="kill")]):
            save_knowledge_base(kb, path)
    loaded = load_knowledge_base(path)  # the write never replaced the file
    assert loaded.get("a").status == "promoted"
    assert "c" not in loaded


def test_tampered_findings_fail_the_checksum(kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["findings"][0]["statement"] = "silently altered claim"
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(KnowledgeBaseError, match="checksum"):
        load_knowledge_base(path)


def test_garbage_bytes_are_reported_as_corruption(tmp_path):
    path = tmp_path / "kb.json"
    path.write_bytes(b"\x00\xffnot json at all")
    with pytest.raises(KnowledgeBaseError, match="corrupt"):
        load_knowledge_base(path)


def test_v1_file_without_checksum_still_loads(kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(kb, path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["format_version"] = 1
    del payload["checksum"]
    path.write_text(json.dumps(payload), encoding="utf-8")
    loaded = load_knowledge_base(path)
    assert len(loaded) == len(kb)
