"""Tests for findings, the knowledge base, ontology and guidelines."""

import pytest

from repro.errors import KnowledgeBaseError, PromotionError
from repro.knowledge.findings import Evidence, Finding, FindingKind
from repro.knowledge.guidelines import draft_guidelines
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.ontology import Concept, Ontology, ontology_from_schema
from repro.discri.schemes import FBG_SCHEME
from repro.tabular import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import StarSchema


class TestFindings:
    def test_weight_accumulates(self):
        finding = Finding("k", FindingKind.AGGREGATE, "s")
        finding.add_evidence(Evidence("a", "d", 1.5))
        finding.add_evidence(Evidence("b", "d", 2.0))
        assert finding.total_weight() == pytest.approx(3.5)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            Evidence("a", "d", 0.0)

    def test_retired_rejects_evidence(self):
        finding = Finding("k", FindingKind.TREND, "s", status="retired")
        with pytest.raises(KnowledgeBaseError):
            finding.add_evidence(Evidence("a", "d"))


class TestKnowledgeBase:
    @pytest.fixture()
    def kb(self):
        return KnowledgeBase(promotion_threshold=2.0)

    def test_record_and_reinforce(self, kb):
        kb.record("f", FindingKind.AGGREGATE, "claim", Evidence("s1", "d", 1.0))
        finding = kb.record(
            "f", FindingKind.AGGREGATE, "claim", Evidence("s2", "d", 1.5)
        )
        assert finding.total_weight() == pytest.approx(2.5)
        assert len(kb) == 1

    def test_statement_conflict_rejected(self, kb):
        kb.record("f", FindingKind.AGGREGATE, "claim A", Evidence("s", "d"))
        with pytest.raises(KnowledgeBaseError, match="different"):
            kb.record("f", FindingKind.AGGREGATE, "claim B", Evidence("s", "d"))

    def test_promotion_threshold_enforced(self, kb):
        kb.record("weak", FindingKind.TREND, "c", Evidence("s", "d", 0.5))
        with pytest.raises(PromotionError):
            kb.promote("weak")

    def test_promote_ready(self, kb):
        kb.record("strong", FindingKind.TREND, "c", Evidence("s", "d", 3.0))
        kb.record("weak", FindingKind.TREND, "c2", Evidence("s", "d", 0.5))
        promoted = kb.promote_ready()
        assert [f.key for f in promoted] == ["strong"]
        assert kb.get("strong").status == "promoted"
        assert kb.get("weak").status == "candidate"

    def test_promote_idempotent(self, kb):
        kb.record("f", FindingKind.TREND, "c", Evidence("s", "d", 3.0))
        kb.promote("f")
        assert kb.promote("f").status == "promoted"

    def test_retire(self, kb):
        kb.record("f", FindingKind.TREND, "c", Evidence("s", "d", 3.0))
        kb.retire("f", "superseded")
        assert kb.get("f").status == "retired"

    def test_queries_by_tag_and_kind(self, kb):
        kb.record("a", FindingKind.TREND, "c", Evidence("s", "d", 1.0),
                  tags=["age"])
        kb.record("b", FindingKind.AGGREGATE, "c2", Evidence("s", "d", 2.0),
                  tags=["age", "gender"])
        assert [f.key for f in kb.by_tag("age")] == ["b", "a"]
        assert [f.key for f in kb.by_kind(FindingKind.TREND)] == ["a"]

    def test_missing_key(self, kb):
        with pytest.raises(KnowledgeBaseError):
            kb.get("ghost")

    def test_describe(self, kb):
        kb.record("f", FindingKind.TREND, "claim text", Evidence("s", "d"))
        assert "claim text" in kb.describe()


class TestOntology:
    @pytest.fixture()
    def star(self):
        personal = Dimension(
            "personal",
            {"gender": "str", "band10": "str", "band5": "str"},
            hierarchies=[Hierarchy("age", ["band10", "band5"])],
        )
        bloods = Dimension("bloods", {"fbg_band": "str"})
        fact = FactTable("f", ["personal", "bloods"], [Measure.of("fbg")])
        return StarSchema("discri", fact, [personal, bloods])

    def test_generated_structure(self, star):
        ontology = ontology_from_schema(star, schemes={"fbg_band": FBG_SCHEME})
        assert "personal" in ontology.concepts_of_kind("dimension")
        assert "personal.gender" in ontology.concepts_of_kind("attribute")
        assert "bloods.fbg_band=Diabetic" in ontology.concepts_of_kind("value")

    def test_hierarchy_becomes_refinement_edge(self, star):
        ontology = ontology_from_schema(star)
        assert "personal.band5" in ontology.children(
            "personal.band10", relation="refined_by"
        )

    def test_consistent_dag(self, star):
        assert ontology_from_schema(star).is_consistent()

    def test_relate_unknown_concept(self):
        ontology = Ontology("o")
        ontology.add_concept(Concept("a", "dimension"))
        with pytest.raises(KnowledgeBaseError):
            ontology.relate("a", "ghost", "has_attribute")

    def test_to_text_tree(self, star):
        text = ontology_from_schema(star).to_text()
        assert "discri [root]" in text
        assert "personal [dimension]" in text


class TestGuidelines:
    def test_built_from_promoted_only(self):
        kb = KnowledgeBase(promotion_threshold=1.0)
        kb.record("a", FindingKind.AGGREGATE, "finding A",
                  Evidence("s", "d", 2.0), tags=["screen"])
        kb.record("b", FindingKind.AGGREGATE, "finding B",
                  Evidence("s", "d", 0.5), tags=["screen"])
        kb.promote("a")
        guidelines = draft_guidelines(
            kb, {"Screening": ("screen", "Do the thing")}
        )
        assert len(guidelines) == 1
        assert [f.key for f in guidelines[0].findings] == ["a"]
        assert "finding A" in guidelines[0].to_text()

    def test_unsupported_guideline_skipped(self):
        kb = KnowledgeBase()
        guidelines = draft_guidelines(kb, {"G": ("tag", "r")})
        assert guidelines == []

    def test_empty_groupings_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            draft_guidelines(KnowledgeBase(), {})

    def test_sorted_by_evidence(self):
        kb = KnowledgeBase(promotion_threshold=1.0)
        kb.record("a", FindingKind.TREND, "A", Evidence("s", "d", 5.0), tags=["t1"])
        kb.record("b", FindingKind.TREND, "B", Evidence("s", "d", 2.0), tags=["t2"])
        kb.promote_ready()
        guidelines = draft_guidelines(
            kb, {"G1": ("t2", "r"), "G2": ("t1", "r")}
        )
        assert [g.title for g in guidelines] == ["G2", "G1"]
