"""Tests for the terminal/SVG renderers and edge-group detection."""

import pytest

from repro.errors import OLAPError, ReproError
from repro.olap.crosstab import Crosstab
from repro.viz.bars import bar_chart, grouped_bar_chart
from repro.viz.histogram import histogram
from repro.viz.overlap import edge_groups
from repro.viz.svg import SVGChart, crosstab_to_svg


class TestBarChart:
    def test_values_rendered(self):
        text = bar_chart({"<40": 12, "40-60": 30}, title="patients")
        assert "patients" in text
        assert "12" in text and "30" in text

    def test_peak_gets_full_width(self):
        text = bar_chart({"a": 10, "b": 5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_null_values_marked(self):
        text = bar_chart({"a": 3, "b": None})
        assert "(no data)" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_all_null_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({"a": None})


class TestGroupedBars:
    def test_fig5_shape(self):
        text = grouped_bar_chart(
            ["70-75", "75-80"],
            {"F": {"70-75": 19, "75-80": 24}, "M": {"70-75": 23, "75-80": 10}},
            title="diabetes by age and gender",
        )
        assert "70-75" in text and "F" in text and "M" in text

    def test_missing_cell_dot(self):
        text = grouped_bar_chart(["a", "b"], {"s": {"a": 2}})
        assert "·" in text

    def test_entirely_empty_series_rejected(self):
        with pytest.raises(ReproError):
            grouped_bar_chart(["a"], {"s": {}})

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            grouped_bar_chart([], {})

    def test_missing_dict_cells_allowed(self):
        text = grouped_bar_chart(["a", "b"], {"s": {"a": 1}})
        assert "1" in text


class TestHistogram:
    def test_bins_cover_all(self):
        text = histogram([1, 2, 3, 4, 5, 100], bins=5)
        total = sum(
            int(line.rsplit(" ", 1)[-1]) for line in text.splitlines() if "│" in line
        )
        assert total == 6

    def test_constant_data_single_bar(self):
        text = histogram([5, 5, 5])
        assert "5" in text

    def test_all_null_rejected(self):
        with pytest.raises(ReproError):
            histogram([None, None])

    def test_bad_bins(self):
        with pytest.raises(ReproError):
            histogram([1, 2], bins=0)


@pytest.fixture()
def grid():
    return Crosstab(
        ["band"], ["gender"],
        [("70-75",), ("75-80",)], [("F",), ("M",)],
        {
            (("70-75",), ("F",)): 19, (("70-75",), ("M",)): 23,
            (("75-80",), ("F",)): 24, (("75-80",), ("M",)): 2,
        },
        "patients",
    )


class TestSVG:
    def test_chart_contains_bars_and_legend(self):
        chart = SVGChart("t", ["a", "b"], {"s1": [1, 2], "s2": [3, None]})
        markup = chart.render()
        assert markup.startswith("<svg")
        assert markup.count("<rect") >= 3 + 2  # 3 bars + 2 legend swatches
        assert "s1" in markup and "t" in markup

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            SVGChart("t", ["a"], {"s": [1, 2]})

    def test_save(self, tmp_path):
        chart = SVGChart("t", ["a"], {"s": [1]})
        path = chart.save(tmp_path / "c.svg")
        assert path.read_text(encoding="utf-8").startswith("<svg")

    def test_crosstab_to_svg(self, grid, tmp_path):
        markup = crosstab_to_svg(grid, "Fig 5", tmp_path / "fig5.svg")
        assert "Fig 5" in markup
        assert (tmp_path / "fig5.svg").exists()

    def test_escaping(self):
        chart = SVGChart("a<b&c", ["g"], {"s": [1]})
        markup = chart.render()
        assert "a&lt;b&amp;c" in markup


class TestEdgeGroups:
    def test_thin_cell_detected(self, grid):
        groups = edge_groups(grid, max_edge_ratio=0.15, min_margin=10)
        assert len(groups) == 1
        found = groups[0]
        assert found.row_key == ("75-80",) and found.col_key == ("M",)

    def test_sorted_most_marginal_first(self, grid):
        groups = edge_groups(grid, max_edge_ratio=0.99, min_margin=1)
        ratios = [g.edge_ratio for g in groups]
        assert ratios == sorted(ratios)

    def test_small_margins_excluded(self, grid):
        assert edge_groups(grid, max_edge_ratio=0.15, min_margin=100) == []

    def test_bad_ratio_rejected(self, grid):
        with pytest.raises(OLAPError):
            edge_groups(grid, max_edge_ratio=0.0)

    def test_describe(self, grid):
        group = edge_groups(grid, max_edge_ratio=0.15, min_margin=10)[0]
        assert "edge" in group.describe()
