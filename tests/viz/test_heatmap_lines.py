"""Tests for heatmap and line/sparkline renderers."""

import pytest

from repro.errors import ReproError
from repro.olap.crosstab import Crosstab
from repro.viz.heatmap import heatmap
from repro.viz.lines import line_chart, sparkline


@pytest.fixture()
def grid():
    return Crosstab(
        ["band"], ["gender"],
        [("a",), ("b",)], [("F",), ("M",)],
        {
            (("a",), ("F",)): 10, (("a",), ("M",)): 0,
            (("b",), ("F",)): 5,
        },
        "n",
    )


class TestHeatmap:
    def test_shades_scale_with_value(self, grid):
        text = heatmap(grid, title="t")
        assert "t" in text
        assert "███" in text       # the max cell
        assert " · " in text       # the empty cell

    def test_legend_present(self, grid):
        assert "legend" in heatmap(grid)

    def test_empty_grid_rejected(self):
        empty = Crosstab(["r"], ["c"], [], [], {}, "n")
        with pytest.raises(ReproError):
            heatmap(empty)

    def test_nonpositive_rejected(self):
        grid = Crosstab(["r"], ["c"], [("x",)], [("y",)],
                        {(("x",), ("y",)): 0}, "n")
        with pytest.raises(ReproError):
            heatmap(grid)


class TestSparkline:
    def test_monotone_ramp(self):
        text = sparkline([1, 2, 3, 4])
        assert text[0] == "▁" and text[-1] == "█"

    def test_nulls_are_spaces(self):
        assert sparkline([1, None, 2])[1] == " "

    def test_constant_series(self):
        assert sparkline([3, 3]) == "▄▄"

    def test_all_null_rejected(self):
        with pytest.raises(ReproError):
            sparkline([None])


class TestLineChart:
    def test_single_series(self):
        text = line_chart({"fbg": [5.0, 6.0, 7.0]}, labels=["a", "b", "c"])
        assert "●" in text
        assert "a" in text

    def test_multi_series_legend(self):
        text = line_chart({"x": [1, 2], "y": [2, 1]})
        assert "A=x" in text and "B=y" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            line_chart({"x": [1], "y": [1, 2]})

    def test_label_mismatch_rejected(self):
        with pytest.raises(ReproError):
            line_chart({"x": [1, 2]}, labels=["only"])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_chart({})

    def test_nulls_skipped(self):
        text = line_chart({"x": [1.0, None, 3.0]})
        assert "●" in text
