"""Overload acceptance: the ``bench-overload`` harness at test scale.

Under 4x oversubscription with injected ``serving.*`` faults, every
admitted query must complete correctly on its pinned epoch (recompute
oracle) or fail with a typed error before its deadline; shed queries
must be rejected fast; no partial or stale answer may ever surface.
"""

from __future__ import annotations

import json

import pytest

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.errors import QueryTimeoutError
from repro.serving.bench_overload import (
    format_summary,
    run_overload_bench,
)
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule


def test_bench_overload_end_to_end(tmp_path):
    out = tmp_path / "BENCH_overload.json"
    payload = run_overload_bench(
        patients=50,
        seed=11,
        oversubscription=4,
        duration_s=0.6,
        shed_probes=25,
        out=out,
    )
    # the three acceptance bounds, each gated individually
    assert payload["shed"]["ok"], payload["shed"]
    assert payload["chaos"]["ok"], payload["chaos"]
    assert payload["deadline"]["ok"], payload["deadline"]
    assert payload["ok"]

    # shed: every probe rejected, all in bounded time
    shed = payload["shed"]
    assert shed["shed"] == shed["probes"]
    assert shed["admitted_probes"] == 0
    assert shed["shed_max_ms"] < shed["bound_ms"]

    # chaos: work completed, zero wrong/stale answers, typed errors only
    chaos = payload["chaos"]
    assert chaos["completed"] > 0
    assert chaos["wrong"] == 0
    assert chaos["unexpected"] == 0
    assert chaos["p99_ms"] <= chaos["p99_bound_ms"]

    # deadline: a stalled dependency cannot outlive the budget
    deadline = payload["deadline"]
    assert deadline["timeouts"] == deadline["probes"]
    assert deadline["max_elapsed_ms"] <= deadline["bound_ms"]

    # the artifact round-trips and the summary renders
    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["ok"] is True
    assert "overload safety" in format_summary(payload)


def test_timed_out_query_leaves_the_system_serviceable():
    cohort = DiScRiGenerator(n_patients=40, seed=3).generate()
    system = DDDGMS(cohort)
    system.materialize_lattice()

    def fig4():
        return (
            system.query().rows("age_band").columns("gender")
            .count_records("attendances").execute()
        )

    expected = sorted(fig4().cells.items())
    plan = FaultPlan([FaultRule("serving.scan", mode="stall", nth=1)])
    with faults.injected(plan):
        with pytest.raises(QueryTimeoutError):
            (system.query().rows("age_band").columns("gender")
             .count_records("attendances").within(0.05).execute())
    # the very next query — no deadline, no faults — is answered correctly
    assert sorted(fig4().cells.items()) == expected
