"""Parallel execution is an accelerator, never a semantic change.

Every parallel path in the engine partitions work so each unit runs the
identical serial kernel on the identical slice — so results must be
**bit-identical** between ``max_workers=1`` and ``max_workers=N``:

* lattice materialisation builds each node the same way regardless of
  which worker builds it, and the node list is sorted deterministically;
* the group-by fan-out chunks the group range and evaluates the very
  same per-group numpy reduction inside each chunk (hypothesis-driven
  over random float frames with nulls, checked against the serial path
  and against the scalar oracle's float semantics).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.serving import parallel
from repro.serving.bench import SYNTHETIC_GROUPS, synthetic_star
from repro.olap.materialized import MaterializedCube
from repro.tabular.table import Table


@pytest.fixture()
def eight_workers():
    parallel.configure_workers(8)
    yield
    parallel.configure_workers(None)


def _node_fingerprint(lattice: MaterializedCube) -> list[tuple]:
    return [
        (node.levels, node.measures, node.table.schema,
         node.table.to_rows())
        for node in lattice._nodes
    ]


def test_lattice_parallel_matches_serial():
    cube = synthetic_star(rows=20_000, seed=3)
    groups = [list(g) for g in SYNTHETIC_GROUPS]
    serial = MaterializedCube(cube).materialize(groups, max_workers=1)
    fanned = MaterializedCube(cube).materialize(groups, max_workers=8)
    assert _node_fingerprint(serial) == _node_fingerprint(fanned)


def test_lattice_parallel_answers_equal_serial_answers():
    cube = synthetic_star(rows=10_000, seed=9)
    groups = [list(g) for g in SYNTHETIC_GROUPS[:6]]
    serial = MaterializedCube(cube).materialize(groups, max_workers=1)
    fanned = MaterializedCube(cube).materialize(groups, max_workers=4)
    query = (["place.site"], {"total": ("stays", "sum"),
                              "peak": ("score", "max")})
    assert (
        serial.aggregate(*query).to_rows() == fanned.aggregate(*query).to_rows()
    )


_FLOATS = st.one_of(
    st.none(),
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False, width=64,
    ),
)


@given(
    values=st.lists(_FLOATS, min_size=1, max_size=120),
    n_keys=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_groupby_fanout_matches_serial(values, n_keys):
    table = Table.from_columns(
        {
            "k": [i % n_keys for i in range(len(values))],
            "x": values,
        },
        schema={"k": "int", "x": "float"},
    )
    requests = dict(
        s=("x", "sum"), m=("x", "mean"), d=("x", "std"), n=("x", "count")
    )

    # force the fan-out to engage even on tiny frames
    saved = parallel.MIN_PARALLEL_GROUPS
    parallel.MIN_PARALLEL_GROUPS = 2
    try:
        parallel.configure_workers(1)
        serial = table.groupby("k").agg(**requests).to_rows()
        parallel.configure_workers(8)
        fanned = table.groupby("k").agg(**requests).to_rows()
    finally:
        parallel.MIN_PARALLEL_GROUPS = saved
        parallel.configure_workers(None)

    # bit-identical, not approx: the chunks run the same kernels on the
    # same slices, so float results may not differ even in the last ulp
    assert fanned == serial


def test_fanout_engages_and_concatenates_in_order(eight_workers):
    seen = []

    def fn(lo, hi):
        seen.append((lo, hi))
        return list(range(lo, hi))

    out = parallel.map_group_ranges(fn, 100, min_groups=2)
    assert out == list(range(100))
    assert sorted(seen) == parallel.split_ranges(100, 8)


def test_fanout_declines_below_threshold(eight_workers):
    assert parallel.map_group_ranges(lambda lo, hi: [], 4, min_groups=64) is None
    parallel.configure_workers(1)
    assert parallel.map_group_ranges(lambda lo, hi: [], 1000) is None


def test_split_ranges_partition_exactly():
    for n in (1, 2, 7, 100, 101):
        for parts in (1, 2, 3, 8, 200):
            ranges = parallel.split_ranges(n, parts)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            assert all(a < b for a, b in ranges), "no empty chunks"
            assert all(
                ranges[i][1] == ranges[i + 1][0]
                for i in range(len(ranges) - 1)
            )
