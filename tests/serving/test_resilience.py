"""Deadlines, circuit breakers, admission control and the degradation
ladder — unit tests for the primitives plus end-to-end ladder checks on a
live system under injected serving faults."""

from __future__ import annotations

import contextlib
import threading
import time

import pytest

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.errors import (
    InjectedFault,
    PermanentIngestError,
    QueryCancelledError,
    QueryTimeoutError,
    ServingOverloadError,
)
from repro.serving.admission import AdmissionGate, ServingConfig, ServingRuntime
from repro.serving.parallel import parallel_map
from repro.serving.resilience import (
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    active_degradations,
    breaker,
    checkpoint,
    cooperative_sleep,
    current_deadline,
    deadline_scope,
)
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule
from repro.storage.retry import RetryPolicy, get_policy, register_policy


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _fingerprint(grid) -> tuple:
    return (
        tuple(sorted(grid.row_keys)),
        tuple(sorted(grid.col_keys)),
        tuple(sorted(grid.cells.items())),
    )


# --------------------------------------------------------------------------
# Deadlines
# --------------------------------------------------------------------------

class TestDeadline:
    def test_expires_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(QueryTimeoutError):
            deadline.check()

    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline()
        assert deadline.expires_at is None
        assert deadline.remaining() is None
        deadline.check()  # no error

    def test_child_inherits_the_earliest_expiry(self):
        clock = FakeClock()
        parent = Deadline(0.5, clock=clock)
        loose_child = parent.child(10.0)
        assert loose_child.expires_at == parent.expires_at
        tight_child = parent.child(0.1)
        assert tight_child.expires_at == pytest.approx(0.1)

    def test_cancel_propagates_to_descendants(self):
        parent = Deadline()
        child = parent.child()
        grandchild = child.child()
        parent.cancel("epoch retired")
        assert grandchild.cancelled
        with pytest.raises(QueryCancelledError, match="epoch retired"):
            grandchild.check()

    def test_cancelling_a_child_leaves_the_parent_alive(self):
        parent = Deadline()
        child = parent.child()
        child.cancel()
        assert not parent.cancelled
        parent.check()  # still fine

    def test_check_reports_cancellation_before_expiry(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        clock.advance(1.0)
        deadline.cancel("shutting down")
        with pytest.raises(QueryCancelledError):
            deadline.check()

    def test_checkpoint_is_free_without_a_scope(self):
        assert current_deadline() is None
        checkpoint()  # no error, no deadline installed

    def test_deadline_scope_installs_and_restores(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        with deadline_scope(deadline) as installed:
            assert installed is deadline
            assert current_deadline() is deadline
            clock.advance(2.0)
            with pytest.raises(QueryTimeoutError):
                checkpoint()
        assert current_deadline() is None

    def test_cooperative_sleep_honours_the_deadline(self):
        start = time.perf_counter()
        with deadline_scope(Deadline(0.02)):
            with pytest.raises(QueryTimeoutError):
                cooperative_sleep(10.0)
        assert time.perf_counter() - start < 1.0


# --------------------------------------------------------------------------
# Circuit breakers
# --------------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, clock: FakeClock) -> CircuitBreaker:
        return CircuitBreaker(
            "dep",
            BreakerConfig(failure_threshold=3, reset_after_s=5.0),
            clock=clock,
        )

    def test_opens_after_consecutive_failures(self):
        brk = self._breaker(FakeClock())
        for _ in range(2):
            brk.record_failure()
        assert brk.state == "closed"
        brk.record_failure()
        assert brk.state == "open"
        assert not brk.allow()
        assert brk.stats.opens == 1

    def test_a_success_resets_the_failure_streak(self):
        brk = self._breaker(FakeClock())
        brk.record_failure()
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        brk.record_failure()
        assert brk.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        brk = self._breaker(clock)
        for _ in range(3):
            brk.record_failure()
        assert not brk.allow()
        clock.advance(5.0)
        assert brk.state == "half-open"
        assert brk.allow()  # the probe
        assert not brk.allow()  # everyone else keeps the degraded rung

    def test_probe_success_closes_and_failure_reopens(self):
        clock = FakeClock()
        brk = self._breaker(clock)
        for _ in range(3):
            brk.record_failure()
        clock.advance(5.0)
        assert brk.allow()
        brk.record_success()
        assert brk.state == "closed"

        for _ in range(3):
            brk.record_failure()
        clock.advance(5.0)
        assert brk.allow()
        brk.record_failure()
        assert brk.state == "open"
        assert brk.stats.opens == 3

    def test_registry_returns_one_instance_and_retunes(self):
        first = breaker("shared-dep")
        again = breaker("shared-dep")
        assert first is again
        tuned = breaker("shared-dep", BreakerConfig(failure_threshold=7))
        assert tuned is first
        assert first.config.failure_threshold == 7

    def test_active_degradations_names_the_rung(self):
        brk = breaker("lattice")
        for _ in range(brk.config.failure_threshold):
            brk.record_failure()
        assert active_degradations() == {"lattice": "base-scan"}

    def test_snapshot_shape(self):
        snap = breaker("cache").snapshot()
        assert snap["state"] == "closed"
        assert snap["degrades_to"] == "recompute"
        for key in ("successes", "failures", "rejections", "opens"):
            assert snap[key] == 0


# --------------------------------------------------------------------------
# Retry-policy registry (shared by ingest and serving breakers)
# --------------------------------------------------------------------------

class TestPolicyRegistry:
    def test_named_defaults_exist(self):
        assert get_policy("ingest.default").attempts >= 1
        serving = get_policy("serving.breaker")
        assert serving.attempts >= 1
        assert serving.max_delay_s > 0

    def test_unknown_policy_is_a_permanent_error(self):
        with pytest.raises(PermanentIngestError, match="unknown retry policy"):
            get_policy("no.such.policy")

    def test_register_policy_round_trips(self):
        policy = RetryPolicy(attempts=9)
        register_policy("test.custom", policy)
        assert get_policy("test.custom") is policy

    def test_breaker_thresholds_come_from_the_policy(self):
        runtime = ServingRuntime(ServingConfig())
        policy = get_policy("serving.breaker")
        for brk in runtime.breakers.values():
            assert brk.config.failure_threshold == policy.attempts
            assert brk.config.reset_after_s == policy.max_delay_s


# --------------------------------------------------------------------------
# Admission gate + runtime
# --------------------------------------------------------------------------

@contextlib.contextmanager
def _held_slots(gate: AdmissionGate, count: int):
    """Hold ``count`` admission slots from background threads."""
    entered = threading.Semaphore(0)
    release = threading.Event()

    def hold() -> None:
        with gate.admitted(None):
            entered.release()
            release.wait(timeout=10.0)

    threads = [threading.Thread(target=hold, daemon=True) for _ in range(count)]
    for t in threads:
        t.start()
    for _ in range(count):
        assert entered.acquire(timeout=5.0)
    try:
        yield
    finally:
        release.set()
        for t in threads:
            t.join(timeout=10.0)


def _queued(gate: AdmissionGate, count: int):
    """Park ``count`` waiters in the gate's queue (they will time out)."""
    started = []
    for _ in range(count):
        t = threading.Thread(target=_swallow, args=(gate,), daemon=True)
        t.start()
        started.append(t)
    deadline = time.monotonic() + 5.0
    while gate.snapshot()["waiting"] < count:
        assert time.monotonic() < deadline, "queue failed to fill"
        time.sleep(0.001)
    return started


def _swallow(gate: AdmissionGate) -> None:
    with contextlib.suppress(ServingOverloadError, QueryTimeoutError):
        with gate.admitted(None):
            pass


class TestAdmission:
    def test_admits_up_to_capacity_then_queues(self):
        gate = AdmissionGate(ServingConfig(max_in_flight=2, max_queue=2))
        with _held_slots(gate, 2):
            snap = gate.snapshot()
            assert snap["in_flight"] == 2
            assert snap["admitted"] == 2

    def test_queue_full_sheds_immediately_with_typed_error(self):
        gate = AdmissionGate(
            ServingConfig(max_in_flight=1, max_queue=1, queue_timeout_s=5.0)
        )
        with _held_slots(gate, 1):
            _queued(gate, 1)
            start = time.perf_counter()
            with pytest.raises(ServingOverloadError, match="queue full"):
                with gate.admitted(None):
                    pass
            assert time.perf_counter() - start < 0.05
            assert gate.stats.shed_queue_full == 1

    def test_queue_wait_timeout_sheds(self):
        gate = AdmissionGate(
            ServingConfig(max_in_flight=1, max_queue=4, queue_timeout_s=0.05)
        )
        with _held_slots(gate, 1):
            with pytest.raises(ServingOverloadError, match="no serving slot"):
                with gate.admitted(None):
                    pass
            assert gate.stats.shed_timeout == 1

    def test_deadline_expiry_in_queue_is_a_timeout_not_overload(self):
        gate = AdmissionGate(
            ServingConfig(max_in_flight=1, max_queue=4, queue_timeout_s=5.0)
        )
        with _held_slots(gate, 1):
            with pytest.raises(QueryTimeoutError):
                with gate.admitted(Deadline(0.02)):
                    pass
        # the slot freed by the holder is not stranded: a fresh query runs
        with gate.admitted(None):
            assert gate.snapshot()["in_flight"] == 1

    def test_slot_released_on_exception(self):
        gate = AdmissionGate(ServingConfig(max_in_flight=1, max_queue=1))
        with pytest.raises(RuntimeError):
            with gate.admitted(None):
                raise RuntimeError("query failed")
        assert gate.snapshot()["in_flight"] == 0

    def test_query_scope_is_reentrant(self):
        runtime = ServingRuntime(ServingConfig(max_in_flight=1, max_queue=1))
        with runtime.query_scope() as outer:
            assert outer is current_deadline()
            # a nested aggregate (MDX member -> grand_total) reuses the
            # outer slot instead of deadlocking against itself
            with runtime.query_scope() as inner:
                assert inner is None
                assert current_deadline() is outer
        assert runtime.gate.snapshot()["admitted"] == 1

    def test_query_scope_applies_the_default_deadline(self):
        runtime = ServingRuntime(
            ServingConfig(default_deadline_s=0.02, queue_timeout_s=0.5)
        )
        with runtime.query_scope() as deadline:
            assert deadline.remaining() is not None
            time.sleep(0.03)
            with pytest.raises(QueryTimeoutError):
                checkpoint()

    def test_runtime_snapshot_shape(self):
        runtime = ServingRuntime(ServingConfig())
        snap = runtime.snapshot()
        assert set(snap) == {"admission", "breakers"}
        assert set(snap["breakers"]) == {"lattice", "cache", "pool"}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            ServingConfig(max_queue=-1)
        with pytest.raises(ValueError):
            ServingConfig(queue_timeout_s=0)


# --------------------------------------------------------------------------
# The degradation ladder, end to end
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def system() -> DDDGMS:
    cohort = DiScRiGenerator(n_patients=60, seed=7).generate()
    built = DDDGMS(cohort)
    built.materialize_lattice()
    return built


def _fig4(system: DDDGMS):
    return (
        system.query().rows("age_band").columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes").execute()
    )


class TestDegradationLadder:
    def test_cache_faults_degrade_to_recompute(self, system):
        expected = _fingerprint(_fig4(system))
        system.attach_result_cache(True)
        try:
            plan = FaultPlan([FaultRule("serving.cache", mode="error", nth=0)])
            with faults.injected(plan):
                for _ in range(5):
                    assert _fingerprint(_fig4(system)) == expected
            cache_brk = breaker("cache")
            assert cache_brk.state == "open"
            assert active_degradations()["cache"] == "recompute"
            assert system.ingest_health()["degradations"] == {
                "cache": "recompute"
            }
        finally:
            system.attach_result_cache(None)

    def test_lattice_fault_falls_back_to_base_scan(self, system):
        expected = _fingerprint(_fig4(system))
        # hit 1 = the lattice lookup; hit 2 = the base scan, which succeeds
        plan = FaultPlan([FaultRule("serving.scan", mode="error", nth=1)])
        with faults.injected(plan):
            assert _fingerprint(_fig4(system)) == expected
            assert plan.hits("serving.scan") == 2
        assert breaker("lattice").stats.failures == 1

    def test_base_scan_fault_is_the_querys_own_error(self, system):
        # with the bottom rung broken there is nothing left to degrade to:
        # the typed injected error reaches the caller, never a wrong answer
        plan = FaultPlan([FaultRule("serving.scan", mode="error", nth=0)])
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                _fig4(system)

    def test_pool_faults_degrade_to_serial(self, system):
        plan = FaultPlan([FaultRule("serving.pool", mode="error", nth=0)])
        with faults.injected(plan):
            for _ in range(4):
                assert parallel_map(
                    lambda x: x * x, list(range(200)), max_workers=4
                ) == [x * x for x in range(200)]
        pool_brk = breaker("pool")
        assert pool_brk.state == "open"
        # the breaker opened after threshold engagement failures, then the
        # remaining calls skipped the fault point entirely
        assert plan.hits("serving.pool") == pool_brk.config.failure_threshold
        assert active_degradations()["pool"] == "serial"

    def test_stalled_scan_times_out_within_the_budget(self, system):
        plan = FaultPlan([FaultRule("serving.scan", mode="stall", nth=0)])
        start = time.perf_counter()
        with faults.injected(plan):
            with pytest.raises(QueryTimeoutError):
                (system.query().rows("age_band").columns("gender")
                 .count_records("attendances").within(0.05).execute())
        assert time.perf_counter() - start < 1.0

    def test_explain_reports_active_degradations(self, system):
        cache_brk = breaker("cache")
        for _ in range(cache_brk.config.failure_threshold):
            cache_brk.record_failure()
        report = (
            system.query().rows("age_band").columns("gender")
            .count_records("attendances").explain()
        )
        assert report.plan.attrs["degraded"] == "cache"

    def test_health_reports_serving_snapshot(self, system):
        runtime = system.attach_serving(True)
        try:
            _fig4(system)
            health = system.ingest_health()
            assert health["serving"]["admission"]["admitted"] >= 1
            assert set(health["serving"]["breakers"]) == {
                "lattice", "cache", "pool",
            }
            assert runtime is system.serving
        finally:
            system.attach_serving(None)
        assert system.ingest_health()["serving"] is None

    def test_overload_sheds_through_the_query_path(self, system):
        system.attach_serving(
            ServingConfig(max_in_flight=1, max_queue=1, queue_timeout_s=5.0)
        )
        try:
            gate = system.serving.gate
            with _held_slots(gate, 1):
                _queued(gate, 1)
                with pytest.raises(ServingOverloadError):
                    _fig4(system)
        finally:
            system.attach_serving(None)
