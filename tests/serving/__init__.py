"""Serving-layer tests: concurrency, cache properties, parallel parity."""
