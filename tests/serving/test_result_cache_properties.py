"""Model-based testing of the versioned result cache.

The cache is driven through random interleavings of queries, epoch bumps
(ingest stand-ins) and evictions, against a plain-dict oracle of "what
would recomputing at the current epoch return".  The safety properties:

* a **hit is byte-identical** to recomputing the query at the epoch it
  was issued for (here: the exact object stored for that epoch — results
  are immutable, so identity implies byte equality);
* after an epoch bump, **entries from old epochs are never served** for
  current-epoch queries, no matter the interleaving;
* both budgets hold at all times: ``len(cache) <= max_entries`` and
  ``current_bytes <= max_bytes``; oversize results are rejected whole;
* ``on_epoch_published`` drops everything outside the keep window.

Values are small real Tables, so the byte estimator exercises the same
column-buffer path production results take.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.serving.cache import CacheConfig, ResultCache, estimate_result_bytes
from repro.serving.epoch import next_epoch_id
from repro.tabular.table import Table

_PLAN_KEYS = st.sampled_from(["q_age", "q_gender", "q_bmi", "q_bp", "q_fbg"])


def _recompute(epoch: int, plan_key: str) -> Table:
    """Deterministic 'fresh computation' of a query at one epoch."""
    seed = (epoch * 31 + len(plan_key)) % 97
    return Table.from_rows(
        [
            {"level": f"{plan_key}:{i}", "value": seed + i}
            for i in range(1 + seed % 3)
        ]
    )


class CacheModel(RuleBasedStateMachine):
    """Random query/ingest/evict interleavings vs a dict oracle."""

    def __init__(self):
        super().__init__()
        self.config = CacheConfig(max_entries=6, max_bytes=8_192, keep_epochs=2)
        self.cache = ResultCache(self.config)
        self.epoch = next_epoch_id()
        #: oracle: (epoch, plan) -> the exact object a hit must return
        self.stored: dict[tuple[int, str], Table] = {}

    @rule(plan_key=_PLAN_KEYS)
    def query(self, plan_key):
        """A read: hit must equal fresh recompute at the current epoch."""
        fresh = _recompute(self.epoch, plan_key)
        hit = self.cache.get(self.epoch, plan_key)
        if hit is not None:
            # byte-identical to recomputing now, at this epoch
            assert hit.to_rows() == fresh.to_rows()
            # and exactly what was stored for this (epoch, plan) — never
            # an entry from another epoch
            assert hit is self.stored[(self.epoch, plan_key)]
        else:
            self.cache.put(self.epoch, plan_key, fresh)
            self.stored[(self.epoch, plan_key)] = fresh

    @rule(plan_key=_PLAN_KEYS)
    def query_old_epoch(self, plan_key):
        """Pinned snapshots may still read their own epoch's entries."""
        old = self.epoch - 1
        hit = self.cache.get(old, plan_key)
        if hit is not None:
            assert hit is self.stored[(old, plan_key)]
            assert hit.to_rows() == _recompute(old, plan_key).to_rows()

    @rule()
    def ingest(self):
        """Epoch bump: the writer published a new version."""
        self.epoch = next_epoch_id()
        self.cache.on_epoch_published(self.epoch)
        cutoff = self.epoch - max(1, self.config.keep_epochs)
        assert all(epoch > cutoff for epoch, _ in self.cache.keys())

    @rule()
    def clear(self):
        self.cache.clear()
        assert len(self.cache) == 0
        assert self.cache.current_bytes == 0

    @rule(plan_key=_PLAN_KEYS)
    def oversize_rejected(self, plan_key):
        """A result bigger than the whole budget must not evict the world."""
        big = Table.from_rows(
            [{"pad": "x" * 512, "i": i} for i in range(64)]
        )
        assert estimate_result_bytes(big) > self.config.max_bytes
        before = self.cache.keys()
        self.cache.put(self.epoch, f"{plan_key}__huge", big)
        assert self.cache.get(self.epoch, f"{plan_key}__huge") is None
        assert self.cache.keys() == before

    @invariant()
    def budgets_hold(self):
        assert len(self.cache) <= self.config.max_entries
        assert self.cache.current_bytes <= self.config.max_bytes

    @invariant()
    def stale_epochs_never_current(self):
        """No current-epoch get can ever see another epoch's entry."""
        for plan_key in ("q_age", "q_gender"):
            hit = self.cache.get(self.epoch, plan_key)
            if hit is not None:
                assert (self.epoch, plan_key) in self.stored
                assert hit is self.stored[(self.epoch, plan_key)]


CacheModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestCacheModel = CacheModel.TestCase


def test_hit_rate_and_counters_track_traffic():
    cache = ResultCache(CacheConfig(max_entries=8, max_bytes=1 << 20))
    epoch = next_epoch_id()
    table = _recompute(epoch, "q_age")
    assert cache.get(epoch, "q_age") is None
    cache.put(epoch, "q_age", table)
    assert cache.get(epoch, "q_age") is table
    snap = cache.stats_snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1 and snap["stores"] == 1
    assert snap["hit_rate"] == 0.5


def test_lru_eviction_prefers_stale_entries():
    cache = ResultCache(CacheConfig(max_entries=3, max_bytes=1 << 20))
    epoch = next_epoch_id()
    for i in range(3):
        cache.put(epoch, f"q{i}", _recompute(epoch, f"q{i}"))
    cache.get(epoch, "q0")  # refresh q0: q1 becomes LRU
    cache.put(epoch, "q3", _recompute(epoch, "q3"))
    present = {plan for _, plan in cache.keys()}
    assert present == {"q0", "q2", "q3"}


def test_timed_out_query_never_leaves_a_cache_entry():
    """Cancellation regression: a query that dies on its deadline must not
    store a partial result or poison its ``(epoch, plan)`` key.

    The stall is injected at the base scan, *after* the cache-miss get, so
    the query dies mid-compute — the exact window where a careless
    implementation would have something partial in hand to store.
    """
    import pytest

    from repro.dgms.system import DDDGMS
    from repro.discri.generator import DiScRiGenerator
    from repro.errors import QueryTimeoutError
    from repro.storage import faults
    from repro.storage.faults import FaultPlan, FaultRule

    cohort = DiScRiGenerator(n_patients=40, seed=5).generate()
    system = DDDGMS(cohort)
    cache = system.attach_result_cache(True)

    def run(budget_s=None):
        query = (
            system.query().rows("age_band").columns("gender")
            .count_records("attendances")
        )
        if budget_s is not None:
            query = query.within(budget_s)
        return query.execute()

    plan = FaultPlan([FaultRule("serving.scan", mode="stall", nth=0)])
    with faults.injected(plan):
        with pytest.raises(QueryTimeoutError):
            run(budget_s=0.05)
    # nothing was stored for the timed-out query...
    assert len(cache) == 0
    assert cache.stats_snapshot()["stores"] == 0

    # ...and the key is not poisoned: the same plan computes, stores and
    # then hits, with the correct cells
    first = run()
    assert cache.stats_snapshot()["stores"] == 1
    second = run()
    assert cache.stats_snapshot()["hits"] >= 1
    assert sorted(first.cells.items()) == sorted(second.cells.items())


def test_cancelled_query_never_leaves_a_cache_entry():
    """Same regression for explicit cancellation (not expiry)."""
    import pytest

    from repro.dgms.system import DDDGMS
    from repro.discri.generator import DiScRiGenerator
    from repro.errors import QueryCancelledError
    from repro.serving.resilience import Deadline, deadline_scope

    cohort = DiScRiGenerator(n_patients=40, seed=5).generate()
    system = DDDGMS(cohort)
    cache = system.attach_result_cache(True)

    doomed = Deadline()
    doomed.cancel("client disconnected")
    with deadline_scope(doomed):
        with pytest.raises(QueryCancelledError):
            (system.query().rows("age_band").columns("gender")
             .count_records("attendances").execute())
    assert len(cache) == 0
    assert cache.stats_snapshot()["stores"] == 0
