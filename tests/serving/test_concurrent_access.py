"""Concurrency stress: reader threads vs a live writer.

The serving contract under test (DESIGN.md "Serving & epochs"): with a
writer continuously ingesting batches and folding feedback, concurrent
readers must

* never observe an exception, and
* only ever observe answers that equal the same query evaluated on
  *some* committed epoch — never a torn mix of two versions.

The second property is checked exactly: the writer records a pinned
snapshot of every epoch it publishes, readers record the epoch they
pinned with each answer, and after the threads join every observation is
recomputed on its epoch's snapshot and compared row for row.

Both kernel paths run (the scalar oracle via ``REPRO_SCALAR_KERNELS``),
and the versioned result cache is attached throughout — so cache hits
are subject to the same exact-equality check as fresh computations.
"""

import threading

import pytest

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry

N_READERS = 8
N_BATCHES = 3

#: mixed figure-shaped workload; tuples so threads share them safely
QUERIES = (
    (("conditions.age_band", "personal.gender"), (("records", ("records", "size")),)),
    (("conditions.age_band10",), (("patients", ("cardinality.patient_id", "nunique")),)),
    (("personal.gender",), (("mean_fbg", ("fbg", "mean")), ("n", ("records", "size")))),
)


def _builder(tag: str) -> FeedbackDimensionBuilder:
    return (
        FeedbackDimensionBuilder(f"risk_{tag}")
        .add(FeedbackEntry("flagged", lambda row: row.get("fbg") is not None))
        .add(FeedbackEntry("clear", lambda row: True))
    )


@pytest.mark.parametrize("kernels", ["vector", "scalar"])
def test_readers_vs_live_writer(monkeypatch, kernels):
    if kernels == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)

    cohort = DiScRiGenerator(n_patients=40, seed=11).generate()
    system = DDDGMS(cohort)
    system.attach_result_cache(True)

    committed: dict[int, object] = {}
    commit_lock = threading.Lock()

    def record_committed() -> None:
        snap = system.current_epoch()
        with commit_lock:
            committed[snap.epoch] = snap

    record_committed()  # the initial epoch

    stop = threading.Event()
    errors: list[str] = []
    observations: list[tuple[int, int, tuple]] = []  # (epoch, qi, rows)
    obs_lock = threading.Lock()

    def reader(slot: int) -> None:
        i = slot  # stagger the mix across readers
        local: list[tuple[int, int, tuple]] = []
        try:
            while not stop.is_set():
                levels, aggs = QUERIES[i % len(QUERIES)]
                if i % 2:
                    # explicit snapshot pin
                    snap = system.current_epoch()
                    result = snap.aggregate(list(levels), dict(aggs))
                    epoch = snap.epoch
                else:
                    # implicit pin inside one aggregate call
                    snap = system.cube.snapshot()
                    result = snap.aggregate(list(levels), dict(aggs))
                    epoch = snap.epoch
                local.append(
                    (epoch, i % len(QUERIES), tuple(map(tuple, (
                        tuple(row.items()) for row in result.to_rows()
                    )))),
                )
                i += 1
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(f"reader[{slot}] died: {exc!r}")
        finally:
            with obs_lock:
                observations.extend(local)

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(N_READERS)
    ]
    for thread in threads:
        thread.start()

    # the live writer: ingest fresh batches and fold feedback in a loop
    try:
        for round_no in range(N_BATCHES):
            batch = DiScRiGenerator(n_patients=12, seed=100 + round_no).generate()
            max_pid = int(max(system.source.column("patient_id").to_list()))
            max_vid = int(max(system.source.column("visit_id").to_list()))
            system.ingest_visits(offset_identifiers(batch, max_pid, max_vid))
            record_committed()
            system.fold_feedback(_builder(str(round_no)))
            record_committed()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

    assert not errors, errors
    assert not any(thread.is_alive() for thread in threads), "reader hung"
    assert len(committed) == 1 + 2 * N_BATCHES
    assert len(observations) > 0

    # exact check: every answer equals the query recomputed on the very
    # epoch the reader pinned — which must be one the writer committed
    for epoch, qi, rows in observations:
        assert epoch in committed, (
            f"reader pinned epoch {epoch} that was never committed "
            f"(committed: {sorted(committed)})"
        )
        levels, aggs = QUERIES[qi]
        expected = committed[epoch].aggregate(list(levels), dict(aggs))
        expected_rows = tuple(
            tuple(row.items()) for row in expected.to_rows()
        )
        assert rows == expected_rows, (
            f"epoch {epoch} query {qi}: observed answer diverges from "
            f"its own epoch's recomputation"
        )


def test_snapshot_survives_writer_churn():
    """A pinned snapshot answers identically before and after ingests."""
    cohort = DiScRiGenerator(n_patients=30, seed=5).generate()
    system = DDDGMS(cohort)
    snap = system.current_epoch()
    levels, aggs = ["conditions.age_band"], {"n": ("records", "size")}
    before = snap.aggregate(levels, aggs).to_rows()

    batch = DiScRiGenerator(n_patients=10, seed=99).generate()
    max_pid = int(max(system.source.column("patient_id").to_list()))
    max_vid = int(max(system.source.column("visit_id").to_list()))
    system.ingest_visits(offset_identifiers(batch, max_pid, max_vid))

    assert system.epoch > snap.epoch
    assert snap.aggregate(levels, aggs).to_rows() == before
    # the live cube, meanwhile, sees the grown fact set
    grown = system.cube.aggregate(levels, aggs)
    assert sum(r["n"] for r in grown.to_rows()) > sum(r["n"] for r in before)
