"""Regressions: epoch-owned caches and process-unique epoch identity.

Two historical failure modes of the pre-epoch design are pinned here:

* ``Cube.refresh()`` used to drop the cube-level group-by cache, but a
  stale ``GroupBy`` already handed to a caller kept aggregating against
  the **old** flat view while fresh calls used the new one — mixed-
  version answers.  Epoch states now own their caches: a holder of an
  old state keeps a *consistent* old view, a new state starts clean, and
  the two can never cross.
* Result-cache keys must never alias across rebuilt cubes.  Epoch ids
  come from one process-wide counter, so two different ``Cube`` objects
  (e.g. before/after an ingest rebuild, or two systems sharing one
  cache) can never reuse each other's entries.
"""

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.olap.cube import Cube
from repro.serving.cache import ResultCache
from repro.tabular.table import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def _tiny_cube(rows, managed=False):
    loader = WarehouseLoader(
        "tiny", "facts",
        [DimensionSpec(Dimension("d", {"g": "str"}))],
        [Measure.of("x", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return Cube(DynamicWarehouse(loader.schema), managed=managed)


ROWS = [
    {"g": "a", "x": 1.0},
    {"g": "a", "x": 3.0},
    {"g": "b", "x": 5.0},
]


class TestEpochOwnedCaches:
    def test_stale_groupby_holder_stays_on_its_own_epoch(self):
        cube = _tiny_cube(ROWS)
        old_state = cube._current_state()
        old_grouped = cube._grouped(old_state, ("d.g",))
        assert old_grouped.table is old_state.flat

        cube.refresh()
        new_state = cube._current_state()
        new_grouped = cube._grouped(new_state, ("d.g",))

        # the new epoch owns a fresh cache over its own flat view...
        assert new_state is not old_state
        assert new_grouped is not old_grouped
        assert new_grouped.table is new_state.flat
        # ...while the stale holder still aggregates its *own* (old) view —
        # a consistent snapshot, never a mix
        assert old_grouped.table is old_state.flat
        assert old_grouped.table is not new_state.flat
        assert (
            old_grouped.agg(n=("d.g", "size")).to_rows()
            == new_grouped.agg(n=("d.g", "size")).to_rows()
        )

    def test_groupby_cache_is_not_shared_across_epochs(self):
        cube = _tiny_cube(ROWS)
        state = cube._current_state()
        cube._grouped(state, ("d.g",))
        assert ("d.g",) in state.groupbys
        cube.refresh()
        fresh = cube._current_state()
        assert fresh.groupbys == {}

    def test_refreshed_cube_answers_from_new_facts(self):
        cube = _tiny_cube(ROWS)
        before = cube.aggregate(["d.g"], {"m": ("x", "mean")}).to_rows()
        # a second identical cube with one more fact must differ — via the
        # same epoch machinery a refresh uses
        grown = _tiny_cube(ROWS + [{"g": "b", "x": 100.0}])
        after = grown.aggregate(["d.g"], {"m": ("x", "mean")}).to_rows()
        assert before != after


class TestEpochIdentity:
    def test_epoch_ids_are_process_unique_across_cubes(self):
        a = _tiny_cube(ROWS)
        b = _tiny_cube(ROWS)
        assert a.epoch != b.epoch
        a.refresh()
        assert a.epoch not in (b.epoch,)
        assert a.epoch > b.epoch  # monotonic allocation

    def test_shared_cache_never_aliases_between_cubes(self):
        cache = ResultCache()
        a = _tiny_cube(ROWS)
        b = _tiny_cube(ROWS + [{"g": "b", "x": 100.0}])
        a.attach_result_cache(cache)
        b.attach_result_cache(cache)
        query = (["d.g"], {"m": ("x", "mean")})

        first_a = a.aggregate(*query)
        first_b = b.aggregate(*query)
        # both were stored; identical plan, different epochs
        assert len(cache) == 2
        # hits return each cube's own answer, not the other's
        assert a.aggregate(*query) is first_a
        assert b.aggregate(*query) is first_b
        assert first_a.to_rows() != first_b.to_rows()

    def test_ingest_rebuild_never_serves_preingest_answers(self):
        cohort = DiScRiGenerator(n_patients=20, seed=21).generate()
        system = DDDGMS(cohort)
        cache = system.attach_result_cache(True)
        query = (["conditions.age_band"], {"n": ("records", "size")})

        before = system.cube.aggregate(*query)
        assert system.cube.aggregate(*query) is before  # cached

        batch = DiScRiGenerator(n_patients=10, seed=22).generate()
        max_pid = int(max(system.source.column("patient_id").to_list()))
        max_vid = int(max(system.source.column("visit_id").to_list()))
        system.ingest_visits(offset_identifiers(batch, max_pid, max_vid))

        after = system.cube.aggregate(*query)
        assert after is not before
        assert sum(r["n"] for r in after.to_rows()) > sum(
            r["n"] for r in before.to_rows()
        )
        # the cache survived the rebuild and serves the new epoch
        assert system.result_cache is cache
        assert system.cube.aggregate(*query) is after

    def test_managed_cube_moves_only_on_publish(self):
        cube = _tiny_cube(ROWS, managed=True)
        state = cube._current_state()
        # a version bump alone must NOT move a managed cube's epoch
        cube.schema  # no-op touch
        dynamic = cube._dynamic
        dimension = Dimension("extra", {"tag": "str"})
        dimension.add_member({"tag": "t"})
        dynamic.add_dimension(dimension)
        assert cube._current_state() is state
        published = cube.publish()
        assert published is not state
        assert published.epoch > state.epoch
        assert "extra.tag" in cube.levels
