"""Cancelling work mid-fan-out: workers observe the shared cancel flag,
the pool drains instead of running doomed work to completion, and the
next query finds the pool fully serviceable — on both kernel paths."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.serving.parallel import map_group_ranges, parallel_map
from repro.serving.resilience import (
    Deadline,
    checkpoint,
    deadline_scope,
)
from repro.tabular.join import hash_join
from repro.tabular.table import Table

WORKERS = 4


def _spin_until_cancelled(started: threading.Semaphore):
    """A worker body that only exits via a cooperative checkpoint."""

    def body(item):
        started.release()
        deadline = time.monotonic() + 10.0  # backstop against a hang
        while time.monotonic() < deadline:
            checkpoint()
            time.sleep(0.001)
        raise AssertionError("worker was never cancelled")  # pragma: no cover

    return body


class TestFanoutCancellation:
    def test_sibling_failure_cancels_and_drains_the_fanout(self):
        started = threading.Semaphore(0)
        spin = _spin_until_cancelled(started)

        def fn(item):
            if item == 0:
                # fail only once every sibling is running, so the drain is
                # observable (not a lucky early exit)
                for _ in range(WORKERS - 1):
                    assert started.acquire(timeout=5.0)
                raise ValueError("worker zero exploded")
            return spin(item)

        start = time.perf_counter()
        with pytest.raises(ValueError, match="worker zero exploded"):
            parallel_map(fn, list(range(WORKERS)), max_workers=WORKERS)
        # the drain is prompt: siblings leave at their next checkpoint,
        # they do not run out their 10 s spin
        assert time.perf_counter() - start < 5.0

    def test_external_cancel_reaches_every_worker(self):
        started = threading.Semaphore(0)
        parent = Deadline()
        outcome: dict = {}

        def run() -> None:
            with deadline_scope(parent):
                try:
                    parallel_map(
                        _spin_until_cancelled(started),
                        list(range(WORKERS)),
                        max_workers=WORKERS,
                    )
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    outcome["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(WORKERS):
            assert started.acquire(timeout=5.0)
        parent.cancel("caller gave up")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert isinstance(outcome["error"], QueryCancelledError)
        assert "caller gave up" in str(outcome["error"])

    def test_deadline_expiry_mid_fanout_raises_timeout(self):
        started = threading.Semaphore(0)
        start = time.perf_counter()
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(QueryTimeoutError):
                parallel_map(
                    _spin_until_cancelled(started),
                    list(range(WORKERS)),
                    max_workers=WORKERS,
                )
        assert time.perf_counter() - start < 5.0

    def test_pool_serves_the_next_query_after_a_drain(self):
        started = threading.Semaphore(0)
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(QueryTimeoutError):
                parallel_map(
                    _spin_until_cancelled(started),
                    list(range(WORKERS)),
                    max_workers=WORKERS,
                )
        # a fresh fan-out (no deadline) is completely unaffected
        assert parallel_map(
            lambda x: x + 1, list(range(100)), max_workers=WORKERS
        ) == list(range(1, 101))
        # and the group-range fan-out reassembles the serial order
        assert map_group_ranges(
            lambda lo, hi: list(range(lo, hi)),
            256,
            max_workers=WORKERS,
            min_groups=2,
        ) == list(range(256))


# --------------------------------------------------------------------------
# Kernel checkpoints, both paths
# --------------------------------------------------------------------------

def _frame(n: int = 20_000) -> Table:
    return Table.from_columns(
        {
            "k": [f"g{i % 50}" for i in range(n)],
            "v": list(range(n)),
        }
    )


@pytest.fixture(params=["vector", "scalar"])
def kernel_path(request, monkeypatch):
    if request.param == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    return request.param


class TestKernelCancellation:
    def test_groupby_observes_an_expired_deadline(self, kernel_path):
        frame = _frame()
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(QueryTimeoutError):
                frame.groupby("k").agg(total=("v", "sum"))
        # the same aggregation succeeds once the deadline is gone — no
        # torn kernel state survives the cancellation
        result = frame.groupby("k").agg(total=("v", "sum"))
        assert result.num_rows == 50

    def test_groupby_observes_a_cancelled_query(self, kernel_path):
        frame = _frame()
        deadline = Deadline()
        deadline.cancel("epoch retired")
        with deadline_scope(deadline):
            with pytest.raises(QueryCancelledError):
                frame.groupby("k").agg(total=("v", "sum"))

    def test_join_observes_an_expired_deadline(self, kernel_path):
        left = _frame(5_000)
        right = _frame(5_000).rename({"v": "w"})
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(QueryTimeoutError):
                hash_join(left, right, on="k")
        joined = hash_join(left.head(100), right.head(100), on="k")
        assert joined.num_rows > 0

    def test_parallel_groupby_cancels_mid_fanout(self, kernel_path, monkeypatch):
        if kernel_path == "scalar":
            pytest.skip("the group-range fan-out only engages on the vector path")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        from repro.serving import parallel

        monkeypatch.setattr(parallel, "_default_workers", None)
        frame = _frame(50_000)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(QueryTimeoutError):
                frame.groupby("k").agg(total=("v", "sum"))
        assert frame.groupby("k").agg(total=("v", "sum")).num_rows == 50
