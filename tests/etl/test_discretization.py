"""Tests for discretisation: clinical schemes and algorithmic fitters."""

import random

import pytest

from repro.errors import DiscretizationError
from repro.etl.discretization import (
    Bin,
    ChiMergeDiscretizer,
    DiscretizationScheme,
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    MDLPDiscretizer,
)


class TestBins:
    def test_contains_inclusive_low_exclusive_high(self):
        b = Bin("mid", 5.0, 7.0)
        assert b.contains(5.0)
        assert not b.contains(7.0)

    def test_open_ended(self):
        assert Bin("low", None, 5.0).contains(-100)
        assert Bin("high", 5.0, None).contains(1e9)

    def test_describe(self):
        assert Bin("", None, 40.0).describe() == "<40"
        assert Bin("", 80.0, None).describe() == ">=80"
        assert Bin("", 40.0, 60.0).describe() == "40-60"


class TestSchemeConstruction:
    def test_from_cut_points_labels_default(self):
        scheme = DiscretizationScheme.from_cut_points("age", [40, 60, 80])
        assert scheme.labels == ["<40", "40-60", "60-80", ">=80"]

    def test_from_cut_points_custom_labels(self):
        scheme = DiscretizationScheme.from_cut_points(
            "fbg", [5.5, 6.1, 7.0],
            labels=["very good", "high", "preDiabetic", "Diabetic"],
        )
        assert scheme.assign(5.4) == "very good"
        assert scheme.assign(5.5) == "high"
        assert scheme.assign(6.5) == "preDiabetic"
        assert scheme.assign(7.0) == "Diabetic"

    def test_unsorted_cut_points_rejected(self):
        with pytest.raises(DiscretizationError, match="ascending"):
            DiscretizationScheme.from_cut_points("x", [5, 3])

    def test_duplicate_cut_points_rejected(self):
        with pytest.raises(DiscretizationError, match="ascending"):
            DiscretizationScheme.from_cut_points("x", [3, 3])

    def test_label_count_checked(self):
        with pytest.raises(DiscretizationError, match="labels"):
            DiscretizationScheme.from_cut_points("x", [1], labels=["a"])

    def test_non_contiguous_bins_rejected(self):
        with pytest.raises(DiscretizationError, match="tile"):
            DiscretizationScheme("x", [Bin("a", None, 1.0), Bin("b", 2.0, None)])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DiscretizationError, match="duplicate"):
            DiscretizationScheme.from_cut_points("x", [1, 2], labels=["a", "a", "b"])


class TestAssignment:
    @pytest.fixture()
    def scheme(self):
        return DiscretizationScheme.from_cut_points("age", [40, 60, 80])

    def test_none_stays_none(self, scheme):
        assert scheme.assign(None) is None

    def test_nan_stays_none(self, scheme):
        assert scheme.assign(float("nan")) is None

    def test_assign_many(self, scheme):
        assert scheme.assign_many([30, 50, None]) == ["<40", "40-60", None]

    def test_occupancy(self, scheme):
        counts = scheme.occupancy([30, 35, 50, 85, None])
        assert counts == {"<40": 2, "40-60": 1, "60-80": 0, ">=80": 1}

    def test_cut_points_property(self, scheme):
        assert scheme.cut_points == [40, 60, 80]


@pytest.fixture()
def supervised_data():
    rng = random.Random(5)
    values, classes = [], []
    for __ in range(400):
        diabetic = rng.random() < 0.5
        values.append(rng.gauss(8.0 if diabetic else 5.2, 0.7))
        classes.append("D" if diabetic else "N")
    return values, classes


class TestEqualWidth:
    def test_bin_count(self):
        scheme = EqualWidthDiscretizer(4).fit([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert len(scheme.bins) == 4

    def test_covers_all_values(self):
        values = [1.0, 2.5, 9.0, 4.4]
        scheme = EqualWidthDiscretizer(3).fit(values)
        assert all(scheme.assign(v) is not None for v in values)

    def test_constant_data_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer(2).fit([5, 5, 5])

    def test_all_null_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer(2).fit([None, None])

    def test_too_few_bins_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer(1)


class TestEqualFrequency:
    def test_roughly_equal_occupancy(self):
        values = list(range(100))
        scheme = EqualFrequencyDiscretizer(4).fit(values)
        counts = list(scheme.occupancy(values).values())
        assert max(counts) - min(counts) <= 2

    def test_skewed_data_dedupes_cuts(self):
        values = [1] * 50 + [2, 3, 4]
        scheme = EqualFrequencyDiscretizer(4).fit(values)
        assert len(scheme.bins) >= 2


class TestMDLP:
    def test_finds_separating_cut(self, supervised_data):
        values, classes = supervised_data
        scheme = MDLPDiscretizer().fit(values, classes)
        # the true boundary is ~6.6; at least one cut should be near it
        assert any(5.8 <= cut <= 7.4 for cut in scheme.cut_points)

    def test_pure_classes_unsplittable(self):
        with pytest.raises(DiscretizationError):
            MDLPDiscretizer().fit([1, 2, 3], ["A", "A", "A"])

    def test_all_null_rejected(self):
        with pytest.raises(DiscretizationError):
            MDLPDiscretizer().fit([None], ["A"])


class TestChiMerge:
    def test_respects_max_bins(self, supervised_data):
        values, classes = supervised_data
        scheme = ChiMergeDiscretizer(max_bins=4).fit(values, classes)
        assert 2 <= len(scheme.bins) <= 4

    def test_separates_classes(self, supervised_data):
        values, classes = supervised_data
        scheme = ChiMergeDiscretizer(max_bins=2).fit(values, classes)
        cut = scheme.cut_points[0]
        assert 5.5 <= cut <= 7.8

    def test_constant_values_rejected(self):
        with pytest.raises(DiscretizationError):
            ChiMergeDiscretizer(max_bins=2).fit([1, 1], ["A", "B"])
