"""Tests for cardinality assignment and the pipeline."""

import datetime as dt

import pytest

from repro.errors import ETLError
from repro.etl.cardinality import assign_cardinality, first_visit_only, visit_counts
from repro.etl.cleaning import RangeRule
from repro.etl.pipeline import (
    CardinalityStep,
    CleaningStep,
    DeriveStep,
    DiscretizationStep,
    Pipeline,
)
from repro.discri.schemes import FBG_SCHEME
from repro.tabular import Table


@pytest.fixture()
def visits():
    return Table.from_rows(
        [
            {"pid": 1, "when": dt.date(2010, 6, 1), "fbg": 5.5},
            {"pid": 1, "when": dt.date(2009, 3, 1), "fbg": 5.0},
            {"pid": 2, "when": dt.date(2010, 5, 1), "fbg": 7.2},
            {"pid": 1, "when": dt.date(2011, 3, 1), "fbg": 6.5},
        ]
    )


class TestCardinality:
    def test_ordinals_by_date(self, visits):
        result = assign_cardinality(visits, "pid", "when")
        assert result.column("visit_number").to_list() == [2, 1, 1, 3]

    def test_ties_broken_by_row_order(self):
        table = Table.from_rows(
            [
                {"pid": 1, "when": dt.date(2010, 1, 1)},
                {"pid": 1, "when": dt.date(2010, 1, 1)},
            ]
        )
        result = assign_cardinality(table, "pid", "when")
        assert result.column("visit_number").to_list() == [1, 2]

    def test_null_date_rejected(self):
        table = Table.from_rows([{"pid": 1, "when": None}])
        with pytest.raises(ETLError, match="null"):
            assign_cardinality(table, "pid", "when")

    def test_null_patient_rejected(self):
        table = Table.from_rows([{"pid": None, "when": dt.date(2010, 1, 1)}])
        with pytest.raises(ETLError):
            assign_cardinality(table, "pid", "when")

    def test_empty_table(self):
        table = Table.empty({"pid": "int", "when": "date"})
        result = assign_cardinality(table, "pid", "when")
        assert "visit_number" in result

    def test_visit_counts(self, visits):
        assert visit_counts(visits, "pid") == {1: 3, 2: 1}

    def test_first_visit_only(self, visits):
        firsts = first_visit_only(visits, "pid", "when")
        assert firsts.num_rows == 2
        assert firsts.column("fbg").to_list() == [5.0, 7.2]


class TestPipeline:
    def test_full_pipeline_with_audit(self, visits):
        pipeline = Pipeline(
            [
                CleaningStep(range_rules=[RangeRule("fbg", low=1, high=30)]),
                DiscretizationStep("fbg", FBG_SCHEME, output="fbg_band"),
                DeriveStep("year", lambda row: row["when"].year, dtype="int"),
                CardinalityStep("pid", "when"),
            ]
        )
        result = pipeline.run(visits)
        assert "fbg_band" in result.table
        assert result.table.column("year").to_list()[0] == 2010
        assert len(result.audit) == 4
        assert "[cardinality]" in result.audit_text()

    def test_discretize_keep_original(self, visits):
        step = DiscretizationStep("fbg", FBG_SCHEME)
        table, detail = step.apply(visits)
        assert "fbg" in table and "fbg_band" in table
        assert "FBG" in detail

    def test_discretize_drop_original(self, visits):
        step = DiscretizationStep("fbg", FBG_SCHEME, keep_original=False)
        table, __ = step.apply(visits)
        assert "fbg" not in table

    def test_empty_pipeline_rejected(self, visits):
        with pytest.raises(ETLError):
            Pipeline().run(visits)

    def test_add_chains(self, visits):
        pipeline = Pipeline().add(CardinalityStep("pid", "when"))
        assert len(pipeline.steps) == 1
