"""Tests for the episodes table (temporal abstraction over a table)."""

import datetime as dt

from repro.discri.schemes import FBG_SCHEME
from repro.etl.temporal import episodes_table
from repro.tabular import Table


def _table(rows):
    return Table.from_rows(rows)


def test_episodes_per_patient():
    table = _table(
        [
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0},
            {"pid": 1, "when": dt.date(2010, 7, 1), "fbg": 5.1},
            {"pid": 1, "when": dt.date(2011, 1, 1), "fbg": 7.5},
            {"pid": 2, "when": dt.date(2010, 3, 1), "fbg": 6.5},
        ]
    )
    episodes = episodes_table(table, "pid", "when", "fbg", FBG_SCHEME)
    assert episodes.num_rows == 3
    first = episodes.row(0)
    assert first["patient"] == 1
    assert first["state"] == "very good"
    assert first["support"] == 2
    assert first["duration_days"] == 181
    assert episodes.row(2)["patient"] == 2


def test_null_values_and_dates_skipped():
    table = _table(
        [
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0},
            {"pid": 1, "when": None, "fbg": 9.9},
            {"pid": 1, "when": dt.date(2011, 1, 1), "fbg": None},
        ]
    )
    episodes = episodes_table(table, "pid", "when", "fbg", FBG_SCHEME)
    assert episodes.num_rows == 1
    assert episodes.row(0)["state"] == "very good"


def test_min_support_filters():
    table = _table(
        [
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0},
            {"pid": 1, "when": dt.date(2010, 6, 1), "fbg": 5.1},
            {"pid": 1, "when": dt.date(2011, 1, 1), "fbg": 8.0},
        ]
    )
    episodes = episodes_table(
        table, "pid", "when", "fbg", FBG_SCHEME, min_support=2
    )
    assert episodes.column("state").to_list() == ["very good"]


def test_empty_input_keeps_schema():
    table = Table.empty({"pid": "int", "when": "date", "fbg": "float"})
    episodes = episodes_table(table, "pid", "when", "fbg", FBG_SCHEME)
    assert episodes.num_rows == 0
    assert "duration_days" in episodes.column_names


def test_system_episodes_cover_cohort(built, cohort):
    """Every episode's support sums back to the staged visit count."""
    from repro.etl.temporal import episodes_table as build_episodes

    episodes = build_episodes(
        cohort, "patient_id", "visit_date", "fbg", FBG_SCHEME
    )
    staged_visits = cohort.column("fbg").count()
    assert episodes.column("support").sum() == staged_visits
    assert episodes.column("patient").n_unique() == cohort.column(
        "patient_id"
    ).n_unique()
