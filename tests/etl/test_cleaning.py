"""Tests for cleaning policies and the audit report."""

import pytest

from repro.errors import CleaningError
from repro.etl.cleaning import (
    MissingValuePolicy,
    RangeRule,
    clean_table,
)
from repro.tabular import Table


@pytest.fixture()
def dirty():
    return Table.from_rows(
        [
            {"fbg": 6.0, "sex": "F", "age": 60},
            {"fbg": None, "sex": "M", "age": 50},
            {"fbg": 900.0, "sex": None, "age": 70},
            {"fbg": 5.0, "sex": "F", "age": None},
        ]
    )


class TestRangeRules:
    def test_null_action(self, dirty):
        cleaned, report = clean_table(
            dirty, range_rules=[RangeRule("fbg", low=1, high=30)]
        )
        assert cleaned.column("fbg").to_list()[2] is None
        assert report.erroneous_nulled == {"fbg": 1}

    def test_clip_action(self, dirty):
        cleaned, report = clean_table(
            dirty, range_rules=[RangeRule("fbg", low=1, high=30, action="clip")]
        )
        assert cleaned.column("fbg").to_list()[2] == 30
        assert report.erroneous_clipped == {"fbg": 1}

    def test_drop_row_action(self, dirty):
        cleaned, report = clean_table(
            dirty, range_rules=[RangeRule("fbg", low=1, high=30, action="drop_row")]
        )
        assert cleaned.num_rows == 3
        assert report.rows_dropped == 1

    def test_bad_action_rejected(self):
        with pytest.raises(CleaningError):
            RangeRule("fbg", low=1, action="zap")

    def test_unbounded_rule_rejected(self):
        with pytest.raises(CleaningError):
            RangeRule("fbg")


class TestMissingPolicies:
    def test_mean_fill_after_range_null(self, dirty):
        cleaned, report = clean_table(
            dirty,
            missing={"fbg": "mean"},
            range_rules=[RangeRule("fbg", low=1, high=30)],
        )
        values = cleaned.column("fbg").to_list()
        assert values[1] == pytest.approx(5.5)  # mean of 6.0 and 5.0
        assert values[2] == pytest.approx(5.5)  # erroneous value re-filled
        assert report.filled["fbg"] == 2

    def test_median_fill(self):
        table = Table.from_rows([{"v": 1.0}, {"v": 9.0}, {"v": None}, {"v": 3.0}])
        cleaned, __ = clean_table(table, missing={"v": MissingValuePolicy.MEDIAN})
        assert cleaned.column("v").to_list()[2] == 3.0

    def test_mode_fill(self, dirty):
        cleaned, __ = clean_table(dirty, missing={"sex": "mode"})
        assert cleaned.column("sex").to_list()[2] == "F"

    def test_constant_fill(self, dirty):
        cleaned, __ = clean_table(
            dirty, missing={"sex": "constant"}, constants={"sex": "unknown"}
        )
        assert cleaned.column("sex").to_list()[2] == "unknown"

    def test_constant_without_value_rejected(self, dirty):
        with pytest.raises(CleaningError):
            clean_table(dirty, missing={"sex": "constant"})

    def test_drop_row_policy(self, dirty):
        cleaned, report = clean_table(dirty, missing={"age": "drop_row"})
        assert cleaned.num_rows == 3
        assert report.rows_dropped == 1

    def test_keep_policy_leaves_nulls(self, dirty):
        cleaned, __ = clean_table(dirty, missing={"fbg": "keep"})
        assert cleaned.column("fbg").null_count == 1

    def test_all_null_mean_rejected(self):
        table = Table.from_rows([{"v": None}, {"v": None}])
        table = table.with_column("v", [None, None], dtype="float")
        with pytest.raises(CleaningError):
            clean_table(table, missing={"v": "mean"})


class TestReport:
    def test_counts(self, dirty):
        __, report = clean_table(
            dirty,
            missing={"fbg": "mean", "age": "drop_row"},
            range_rules=[RangeRule("fbg", low=1, high=30)],
        )
        assert report.rows_in == 4
        assert report.rows_out == 3
        assert "filled" in report.summary()

    def test_no_changes_summary(self, dirty):
        __, report = clean_table(dirty)
        assert report.rows_in == report.rows_out == 4
