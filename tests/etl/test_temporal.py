"""Tests for temporal abstraction."""

import datetime as dt

import pytest

from repro.errors import TemporalAbstractionError
from repro.etl.temporal import (
    Interval,
    StateAbstraction,
    TrendAbstraction,
    abstract_states,
    abstract_trends,
    find_conflicts,
)
from repro.discri.schemes import FBG_SCHEME


def days(*offsets):
    base = dt.date(2010, 1, 1)
    return [base + dt.timedelta(days=o) for o in offsets]


class TestInterval:
    def test_backwards_interval_rejected(self):
        with pytest.raises(TemporalAbstractionError):
            Interval("v", "s", dt.date(2011, 1, 1), dt.date(2010, 1, 1))

    def test_duration(self):
        iv = Interval("v", "s", dt.date(2010, 1, 1), dt.date(2010, 1, 11))
        assert iv.duration_days == 10

    def test_overlap(self):
        a = Interval("v", "s", *days(0, 10))
        b = Interval("v", "t", *days(10, 20))
        c = Interval("v", "u", *days(11, 20))
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestStateAbstraction:
    def test_merges_consecutive_equal_states(self):
        stamps = days(0, 100, 200, 300)
        intervals = abstract_states("fbg", FBG_SCHEME, stamps, [5.0, 5.2, 6.5, 6.8])
        assert [iv.state for iv in intervals] == ["very good", "preDiabetic"]
        assert intervals[0].support == 2

    def test_unsorted_input_sorted_internally(self):
        stamps = days(200, 0, 100)
        intervals = abstract_states("fbg", FBG_SCHEME, stamps, [7.5, 5.0, 7.5])
        assert intervals[0].state == "very good"

    def test_nulls_skipped(self):
        stamps = days(0, 100, 200)
        intervals = abstract_states("fbg", FBG_SCHEME, stamps, [5.0, None, 5.1])
        assert len(intervals) == 1
        assert intervals[0].support == 2

    def test_min_support_filters(self):
        stamps = days(0, 100, 200)
        intervals = StateAbstraction("fbg", FBG_SCHEME, min_support=2).abstract(
            stamps, [5.0, 5.1, 8.0]
        )
        assert [iv.state for iv in intervals] == ["very good"]

    def test_empty_series(self):
        assert abstract_states("fbg", FBG_SCHEME, [], []) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(TemporalAbstractionError):
            abstract_states("fbg", FBG_SCHEME, days(0), [1.0, 2.0])


class TestTrendAbstraction:
    def test_basic_trends(self):
        stamps = days(0, 100, 200, 300)
        intervals = abstract_trends("w", stamps, [80, 85, 90, 88], tolerance=0.01)
        assert [iv.state for iv in intervals] == ["increasing", "decreasing"]

    def test_steady_with_tolerance(self):
        stamps = days(0, 100)
        intervals = abstract_trends("w", stamps, [80, 80.5], tolerance=0.1)
        assert intervals[0].state == "steady"

    def test_single_point_no_trend(self):
        assert abstract_trends("w", days(0), [80]) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TemporalAbstractionError):
            TrendAbstraction("w", tolerance=-1)

    def test_support_counts_points(self):
        stamps = days(0, 100, 200)
        intervals = abstract_trends("w", stamps, [1, 2, 3], tolerance=0.0)
        assert intervals[0].support == 3


class TestConflicts:
    def test_conflicting_overlap_detected(self):
        a = [Interval("fbg", "high", *days(0, 100))]
        b = [Interval("fbg", "very good", *days(50, 150))]
        assert len(find_conflicts(a, b)) == 1

    def test_different_variables_never_conflict(self):
        a = [Interval("fbg", "high", *days(0, 100))]
        b = [Interval("fbg_trend", "increasing", *days(0, 100))]
        assert find_conflicts(a, b) == []

    def test_same_state_no_conflict(self):
        a = [Interval("fbg", "high", *days(0, 100))]
        b = [Interval("fbg", "high", *days(50, 150))]
        assert find_conflicts(a, b) == []

    def test_disjoint_no_conflict(self):
        a = [Interval("fbg", "high", *days(0, 10))]
        b = [Interval("fbg", "low", *days(20, 30))]
        assert find_conflicts(a, b) == []
