"""Row-level quarantine: the store, resilient pipeline/loader, taxonomy."""

import datetime as dt

import pytest

from repro.errors import ETLError, IngestError, ReproError
from repro.etl.discretization import Bin, DiscretizationScheme
from repro.etl.pipeline import (
    CardinalityStep,
    DeriveStep,
    DiscretizationStep,
    Pipeline,
)
from repro.etl.quarantine import ListSink, QuarantinedRow, QuarantineStore
from repro.etl.temporal import (
    StateAbstraction,
    TemporalConflict,
    TrendAbstraction,
    quarantine_conflicts,
)
from repro.tabular.table import Table

BOUNDED = DiscretizationScheme(
    "bounded", [Bin("lo", 0.0, 5.0), Bin("hi", 5.0, 10.0)]
)


def _batch(rows):
    return Table.from_rows(
        rows, schema={"pid": "int", "d": "date", "x": "float"}
    )


def _clean_rows(n=6):
    return [
        {"pid": i % 3, "d": dt.date(2009, 1, 1 + i), "x": float(i % 9)}
        for i in range(n)
    ]


class TestQuarantinedRow:
    def test_from_error_preserves_type_and_reason(self):
        entry = QuarantinedRow.from_error(
            {"pid": 1}, "derive", ValueError("boom"), batch="b1", source_index=4
        )
        assert entry.error_type == "ValueError"
        assert entry.reason == "boom"
        assert entry.step == "derive"
        assert entry.batch == "b1"
        assert entry.source_index == 4
        assert "derive" in entry.describe() and "boom" in entry.describe()

    def test_row_is_copied(self):
        row = {"pid": 1}
        entry = QuarantinedRow.from_error(row, "load", ValueError("x"))
        row["pid"] = 99
        assert entry.row["pid"] == 1


class TestQuarantineStore:
    def test_add_is_idempotent(self):
        store = QuarantineStore()
        entry = QuarantinedRow.from_error({"pid": 1}, "load", ValueError("v"))
        first = store.add(entry)
        second = store.add(
            QuarantinedRow.from_error({"pid": 1}, "load", ValueError("v"))
        )
        assert first == second
        assert len(store) == 1

    def test_counts_and_get(self):
        store = QuarantineStore()
        store.add(QuarantinedRow.from_error({"pid": 1}, "load", ValueError("a")))
        store.add(QuarantinedRow.from_error({"pid": 2}, "derive", KeyError("b")))
        assert store.counts("step") == {"derive": 1, "load": 1}
        assert store.counts("error_type") == {"KeyError": 1, "ValueError": 1}
        assert store.get(1).row == {"pid": 1}
        with pytest.raises(IngestError):
            store.get(99)

    def test_remove(self):
        store = QuarantineStore()
        a = store.add(QuarantinedRow.from_error({"pid": 1}, "load", ValueError("a")))
        store.add(QuarantinedRow.from_error({"pid": 2}, "load", ValueError("b")))
        store.remove([a])
        assert len(store) == 1
        assert [e.row["pid"] for e in store.rows()] == [2]

    def test_redrive_removes_succeeded_and_repairs_copy(self):
        store = QuarantineStore()
        store.add(
            QuarantinedRow.from_error({"pid": 1, "x": None}, "load", ValueError("a"))
        )
        store.add(
            QuarantinedRow.from_error({"pid": 2, "x": None}, "load", ValueError("b"))
        )
        seen = []

        def handler(entries):
            seen.extend(e.row["x"] for e in entries)
            return [e.entry_id for e in entries if e.row["pid"] == 1]

        report = store.redrive(handler, repair=lambda row: {**row, "x": 7.0})
        assert seen == [7.0, 7.0]
        assert report.attempted == 2 and report.succeeded == 1
        # repair applied to handler copies only; the stored row is pristine
        assert store.rows()[0].row["x"] is None

    def test_durable_roundtrip(self, tmp_path):
        root = tmp_path / "q"
        store = QuarantineStore.open(root)
        store.add(
            QuarantinedRow.from_error(
                {"pid": 1, "d": dt.date(2009, 5, 1)}, "load", ValueError("a"),
                batch="b1", source_index=3,
            )
        )
        store.checkpoint()
        store.close()
        reopened = QuarantineStore.open(root)
        (entry,) = reopened.rows()
        assert entry.row == {"pid": 1, "d": dt.date(2009, 5, 1)}
        assert entry.batch == "b1" and entry.source_index == 3
        # dedup knowledge survives the round-trip too
        reopened.add(
            QuarantinedRow.from_error(
                {"pid": 1, "d": dt.date(2009, 5, 1)}, "load", ValueError("a")
            )
        )
        assert len(reopened) == 1
        reopened.close()

    def test_wal_only_recovery(self, tmp_path):
        """Entries that never made it into a snapshot replay from the WAL."""
        root = tmp_path / "q"
        store = QuarantineStore.open(root)
        store.add(QuarantinedRow.from_error({"pid": 5}, "oltp", ValueError("v")))
        store.close()  # no checkpoint: the row lives only in the WAL
        reopened = QuarantineStore.open(root)
        assert [e.row["pid"] for e in reopened.rows()] == [5]
        reopened.close()


class TestConfigurationErrors:
    """Satellite: bare ``KeyError`` on a missing column becomes ``ETLError``."""

    def test_discretization_step_names_step_column_and_available(self):
        step = DiscretizationStep("missing", BOUNDED)
        table = _batch(_clean_rows())
        with pytest.raises(ETLError) as excinfo:
            step.apply(table)
        message = str(excinfo.value)
        assert "'discretize'" in message
        assert "'missing'" in message
        assert "pid" in message and "x" in message
        with pytest.raises(ETLError):
            step.apply_resilient(table)

    def test_cardinality_step_checks_both_columns(self):
        table = _batch(_clean_rows())
        with pytest.raises(ETLError, match="'nope'"):
            CardinalityStep("nope", "d").apply(table)
        with pytest.raises(ETLError, match="'gone'"):
            CardinalityStep("pid", "gone").apply(table)


class TestResilientPipeline:
    def _pipeline(self):
        return Pipeline(
            [
                DiscretizationStep("x", BOUNDED),
                DeriveStep("year", lambda row: row["d"].year, dtype="int"),
                CardinalityStep("pid", "d"),
            ]
        )

    def test_clean_batch_matches_strict(self):
        table = _batch(_clean_rows())
        strict = self._pipeline().run(table)
        sink = ListSink()
        resilient = self._pipeline().run(table, quarantine=sink)
        assert len(sink) == 0
        assert resilient.table.to_rows() == strict.table.to_rows()
        assert resilient.kept_indices == list(range(table.num_rows))

    def test_dirty_rows_divert_with_source_rows(self):
        rows = _clean_rows()
        rows[1]["x"] = 42.0          # scheme does not cover -> discretize
        rows[3]["d"] = None          # derive fails on .year
        table = _batch(rows)
        sink = ListSink()
        result = self._pipeline().run(table, quarantine=sink, batch="b")
        assert result.table.num_rows == 4
        assert sorted(result.kept_indices) == [0, 2, 4, 5]
        by_step = {e.source_index: e.step for e in sink.entries}
        assert by_step == {1: "discretize", 3: "derive"}
        # the pristine source row rides along (no hidden columns)
        diverted = {e.source_index: e.row for e in sink.entries}
        assert diverted[1] == rows[1]
        assert "__ingest_index__" not in diverted[1]

    def test_strict_mode_still_raises(self):
        rows = _clean_rows()
        rows[0]["x"] = 42.0
        with pytest.raises(ReproError):
            self._pipeline().run(_batch(rows))


class TestResilientLoader:
    def _loader(self):
        from repro.errors import DimensionError
        from repro.warehouse.dimension import Dimension
        from repro.warehouse.fact import Measure
        from repro.warehouse.loader import DimensionSpec, WarehouseLoader

        class PickyDimension(Dimension):
            """Rejects one member — a stand-in for any per-row key failure."""

            def add_member(self, row):
                if row.get("x_band") == "boom":
                    raise DimensionError("no such band: 'boom'")
                return super().add_member(row)

        return WarehouseLoader(
            "mini", "facts",
            [DimensionSpec(PickyDimension("bands", {"x_band": "str"}))],
            [Measure("x", "float")],
        )

    def _pipeline_output(self):
        rows = [
            {"x_band": "lo", "x": 1.0},
            {"x_band": "boom", "x": 3.0},  # key resolution fails per-row
            {"x_band": "hi", "x": 6.0},
        ]
        return Table.from_rows(rows, schema={"x_band": "str", "x": "float"})

    def test_bad_rows_quarantine_and_load_continues(self):
        table = self._pipeline_output()
        sink = ListSink()
        report = self._loader().load(table, quarantine=sink, batch="b",
                                     source_indices=[10, 11, 12])
        assert report.facts_loaded == 2
        assert report.rows_quarantined == 1
        assert report.quarantined_indices == [1]
        assert [e.source_index for e in sink.entries] == [11]
        assert sink.entries[0].step == "load"
        assert sink.entries[0].error_type == "DimensionError"

    def test_strict_load_still_raises(self):
        with pytest.raises(ReproError):
            self._loader().load(self._pipeline_output())


class TestTemporalConflicts:
    def test_same_day_contradiction_recorded_not_raised(self):
        sink: list = []
        intervals = StateAbstraction("fbg", BOUNDED).abstract(
            [dt.date(2009, 1, 1), dt.date(2009, 1, 1), dt.date(2009, 1, 2)],
            [1.0, 9.0, 1.0],
            conflict_sink=sink,
        )
        (conflict,) = sink
        assert isinstance(conflict, TemporalConflict)
        assert {conflict.first.state, conflict.second.state} == {"lo", "hi"}
        # the first reading of the day won; no overlapping intervals remain
        assert [iv.state for iv in intervals] == ["lo"]
        for a, b in zip(intervals, intervals[1:]):
            assert not a.overlaps(b)

    def test_trend_same_day_contradiction(self):
        sink: list = []
        TrendAbstraction("fbg").abstract(
            [dt.date(2009, 1, 1), dt.date(2009, 1, 1), dt.date(2009, 2, 1)],
            [1.0, 4.0, 2.0],
            conflict_sink=sink,
        )
        assert len(sink) == 1

    def test_quarantine_conflicts_routes_structured_entries(self):
        sink: list = []
        StateAbstraction("fbg", BOUNDED).abstract(
            [dt.date(2009, 1, 1), dt.date(2009, 1, 1)], [1.0, 9.0],
            conflict_sink=sink,
        )
        store = QuarantineStore()
        entries = quarantine_conflicts(sink, store, batch="ta")
        assert len(store) == len(entries) == 1
        entry = store.rows()[0]
        assert entry.step == "temporal"
        assert entry.error_type == "TemporalAbstractionError"
        assert entry.row["variable"] == "fbg"
        assert entry.row["state_first"] == "lo"
        assert entry.row["state_second"] == "hi"
