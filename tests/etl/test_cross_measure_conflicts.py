"""Tests for cross-measure abstraction conflict checking."""

import datetime as dt

import pytest

from repro.errors import TemporalAbstractionError
from repro.etl.discretization import DiscretizationScheme
from repro.etl.temporal import cross_measure_conflicts
from repro.tabular import Table

FBG = DiscretizationScheme.from_cut_points(
    "FBG", [6.1, 7.0], labels=["normal", "pre", "diabetic"]
)
HBA1C = DiscretizationScheme.from_cut_points(
    "HbA1c", [5.7, 6.5], labels=["ok", "borderline", "high"]
)

SHARED_FBG = {"normal": "normal", "pre": "preDiabetic", "diabetic": "Diabetic"}
SHARED_HBA1C = {"ok": "normal", "borderline": "preDiabetic", "high": "Diabetic"}


def _measures():
    return {
        "fbg": ("fbg", FBG, SHARED_FBG),
        "hba1c": ("hba1c", HBA1C, SHARED_HBA1C),
    }


def test_agreeing_measures_no_conflict():
    table = Table.from_rows(
        [
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.5, "hba1c": 5.2},
            {"pid": 1, "when": dt.date(2011, 1, 1), "fbg": 7.5, "hba1c": 7.0},
        ]
    )
    assert cross_measure_conflicts(table, "pid", "when", _measures()) == []


def test_disagreeing_measures_flagged():
    table = Table.from_rows(
        [
            # FBG says diabetic for the whole year, HbA1c says normal
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 7.8, "hba1c": 5.2},
            {"pid": 1, "when": dt.date(2010, 7, 1), "fbg": 8.1, "hba1c": 5.3},
        ]
    )
    conflicts = cross_measure_conflicts(table, "pid", "when", _measures())
    assert len(conflicts) == 1
    patient, a, b = conflicts[0]
    assert patient == 1
    assert {a.state, b.state} == {"Diabetic", "normal"}


def test_conflicts_are_per_patient():
    table = Table.from_rows(
        [
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 7.8, "hba1c": 5.2},
            {"pid": 2, "when": dt.date(2010, 1, 1), "fbg": 5.2, "hba1c": 5.2},
        ]
    )
    conflicts = cross_measure_conflicts(table, "pid", "when", _measures())
    assert [patient for patient, __, __unused in conflicts] == [1]


def test_non_overlapping_spans_no_conflict():
    table = Table.from_rows(
        [
            # diabetic FBG in 2010, normal HbA1c only recorded in 2012
            {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 7.8, "hba1c": None},
            {"pid": 1, "when": dt.date(2012, 1, 1), "fbg": None, "hba1c": 5.2},
        ]
    )
    assert cross_measure_conflicts(table, "pid", "when", _measures()) == []


def test_single_measure_rejected():
    table = Table.from_rows([{"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0}])
    with pytest.raises(TemporalAbstractionError, match="two measures"):
        cross_measure_conflicts(
            table, "pid", "when", {"fbg": ("fbg", FBG, SHARED_FBG)}
        )


def test_incomplete_state_map_rejected():
    table = Table.from_rows(
        [{"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0, "hba1c": 5.0}]
    )
    broken = {"ok": "normal"}  # misses borderline/high
    with pytest.raises(TemporalAbstractionError, match="misses"):
        cross_measure_conflicts(
            table, "pid", "when",
            {"fbg": ("fbg", FBG, SHARED_FBG), "hba1c": ("hba1c", HBA1C, broken)},
        )


def test_cohort_mostly_consistent(cohort):
    """The generator ties HbA1c to FBG, so staging conflicts are rare."""
    hba1c_scheme = DiscretizationScheme.from_cut_points(
        "HbA1c", [6.8, 7.6], labels=["ok", "borderline", "high"]
    )
    fbg_scheme = DiscretizationScheme.from_cut_points(
        "FBG", [5.5, 7.0], labels=["normal", "pre", "diabetic"]
    )
    conflicts = cross_measure_conflicts(
        cohort, "patient_id", "visit_date",
        {
            "fbg": ("fbg", fbg_scheme,
                    {"normal": "n", "pre": "p", "diabetic": "d"}),
            "hba1c": ("hba1c", hba1c_scheme,
                      {"ok": "n", "borderline": "p", "high": "d"}),
        },
        min_support=2,
    )
    patients = cohort.column("patient_id").n_unique()
    conflicted = len({patient for patient, __, __u in conflicts})
    assert conflicted / patients < 0.5
