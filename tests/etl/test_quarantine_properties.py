"""Property: loaded rows + quarantined rows exactly partition a dirty batch.

For any input batch — arbitrary mixes of clean rows, out-of-scheme values,
null dates and null patient keys — a resilient pipeline run must account
for every input row exactly once: either it survives into the output table
(its input position in ``kept_indices``) or it is quarantined (its input
position in exactly one entry's ``source_index``).  No loss, no
duplication, and the surviving rows are byte-identical to the strict run
over just the clean subset.  Checked on both kernel builds
(``REPRO_SCALAR_KERNELS``), since resilient steps lean on ``take`` /
``distinct`` / group-by machinery.
"""

import datetime as dt
import os
from contextlib import contextmanager

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.etl.discretization import Bin, DiscretizationScheme
from repro.etl.pipeline import (
    CardinalityStep,
    DeriveStep,
    DiscretizationStep,
    Pipeline,
)
from repro.etl.quarantine import ListSink
from repro.tabular import SCALAR_KERNELS_ENV
from repro.tabular.table import Table

BOUNDED = DiscretizationScheme(
    "bounded", [Bin("lo", 0.0, 5.0), Bin("hi", 5.0, 10.0)]
)

SCHEMA = {"pid": "int", "d": "date", "x": "float"}


@contextmanager
def _kernels(scalar: bool):
    previous = os.environ.get(SCALAR_KERNELS_ENV)
    if scalar:
        os.environ[SCALAR_KERNELS_ENV] = "1"
    else:
        os.environ.pop(SCALAR_KERNELS_ENV, None)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SCALAR_KERNELS_ENV, None)
        else:
            os.environ[SCALAR_KERNELS_ENV] = previous


@st.composite
def batches(draw):
    n = draw(st.integers(0, 30))
    rows = []
    for i in range(n):
        rows.append(
            {
                "pid": draw(st.integers(1, 4)),
                # None dates fail the derive step (no .year) and, if they
                # survived, the cardinality step
                "d": draw(
                    st.one_of(
                        st.none(),
                        st.dates(dt.date(2005, 1, 1), dt.date(2010, 12, 31)),
                    )
                ),
                # values outside [0, 10) are not covered by the scheme;
                # None legitimately discretises to a null band
                "x": draw(
                    st.one_of(
                        st.none(),
                        st.floats(-20.0, 20.0, allow_nan=False),
                    )
                ),
            }
        )
    return rows


def _pipeline():
    # no dedup / row-dropping policy steps: every disappearance must be a
    # quarantine entry for the partition property to be exact
    return Pipeline(
        [
            DiscretizationStep("x", BOUNDED),
            DeriveStep("year", lambda row: row["d"].year, dtype="int"),
            CardinalityStep("pid", "d"),
        ]
    )


@pytest.mark.parametrize("scalar", [False, True], ids=["vector", "scalar"])
@given(rows=batches())
@settings(max_examples=60, deadline=None)
def test_partition_no_loss_no_duplication(scalar, rows):
    table = Table.from_rows(rows, schema=SCHEMA) if rows else Table.empty(SCHEMA)
    with _kernels(scalar):
        sink = ListSink()
        result = _pipeline().run(table, quarantine=sink, batch="prop")

    kept = result.kept_indices
    quarantined = [entry.source_index for entry in sink.entries]

    # exact partition of the input positions
    assert len(set(kept)) == len(kept)
    assert len(set(quarantined)) == len(quarantined)
    assert set(kept).isdisjoint(quarantined)
    assert set(kept) | set(quarantined) == set(range(len(rows)))
    assert result.table.num_rows == len(kept)
    assert result.quarantined == sink.entries

    # every quarantined entry carries its pristine source row
    for entry in sink.entries:
        assert entry.row == rows[entry.source_index]

    # survivors match a strict run over just the clean subset
    clean_rows = [rows[i] for i in sorted(kept)]
    clean = (
        Table.from_rows(clean_rows, schema=SCHEMA)
        if clean_rows
        else Table.empty(SCHEMA)
    )
    with _kernels(scalar):
        strict = _pipeline().run(clean)
    assert result.table.to_rows() == strict.table.to_rows()
