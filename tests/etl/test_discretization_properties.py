"""Property-based tests for discretisation invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.etl.discretization import (
    DiscretizationScheme,
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
)

cut_lists = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=8, unique=True
).map(sorted)

value_lists = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=80
)


@given(cut_lists, st.floats(-1e6, 1e6, allow_nan=False))
def test_every_value_lands_in_exactly_one_bin(cuts, value):
    scheme = DiscretizationScheme.from_cut_points("s", cuts)
    matches = [b for b in scheme.bins if b.contains(value)]
    assert len(matches) == 1
    assert scheme.assign(value) == matches[0].label


@given(cut_lists)
def test_bin_count_is_cuts_plus_one(cuts):
    scheme = DiscretizationScheme.from_cut_points("s", cuts)
    assert len(scheme.bins) == len(cuts) + 1


@given(value_lists)
@settings(max_examples=60)
def test_equal_width_occupancy_sums_to_n(values):
    if len(set(values)) < 2:
        return
    if max(values) - min(values) < 1e-9:
        return  # degenerate range: fit correctly refuses
    scheme = EqualWidthDiscretizer(4).fit(values)
    assert sum(scheme.occupancy(values).values()) == len(values)


@given(value_lists)
@settings(max_examples=60)
def test_equal_frequency_covers_all_values(values):
    if len(set(values)) < 5:
        return
    scheme = EqualFrequencyDiscretizer(4).fit(values)
    assert all(scheme.assign(v) is not None for v in values)


@given(cut_lists, value_lists)
@settings(max_examples=60)
def test_assignment_is_order_preserving(cuts, values):
    """If a <= b then bin(a) is not after bin(b) in interval order."""
    scheme = DiscretizationScheme.from_cut_points("s", cuts)
    labels = scheme.labels
    ordered = sorted(values)
    positions = [labels.index(scheme.assign(v)) for v in ordered]
    assert positions == sorted(positions)
