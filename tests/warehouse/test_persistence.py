"""Tests for warehouse save/load."""

import pytest

from repro.errors import WarehouseError
from repro.olap.cube import Cube
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry
from repro.warehouse.persistence import load_warehouse, save_warehouse


class TestRoundTrip:
    def test_cube_answers_identical(self, fresh_built, tmp_path):
        warehouse = fresh_built.warehouse
        save_warehouse(warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")

        original = Cube(warehouse).aggregate(
            ["conditions.age_band", "personal.gender"],
            {"n": ("records", "size"), "m": ("fbg", "mean")},
        )
        restored = Cube(reloaded).aggregate(
            ["conditions.age_band", "personal.gender"],
            {"n": ("records", "size"), "m": ("fbg", "mean")},
        )
        assert original.to_rows() == restored.to_rows()

    def test_hierarchies_survive(self, fresh_built, tmp_path):
        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        hierarchy = reloaded.schema.dimension("conditions").hierarchies["age_drill"]
        assert hierarchy.levels == ["age_band", "age_band10", "age_band5"]

    def test_measures_survive(self, fresh_built, tmp_path):
        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        measure = reloaded.schema.fact.measure("fbg")
        assert measure.default_aggregation == "mean"
        assert not measure.additive

    def test_dynamic_history_survives(self, fresh_built, tmp_path):
        warehouse = fresh_built.warehouse
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("any", lambda row: True)
        )
        warehouse.fold_feedback(builder)
        save_warehouse(warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        assert reloaded.version == warehouse.version
        assert "fold_feedback" in reloaded.describe_history()
        assert "risk" in reloaded.dimension_names
        # the folded keys persist as data
        flat = reloaded.flatten()
        assert flat.column("risk.assessment").to_list()[0] == "any"

    def test_integrity_checked_on_load(self, fresh_built, tmp_path):
        import json

        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        facts_file = tmp_path / "wh" / "facts.json"
        rows = json.loads(facts_file.read_text(encoding="utf-8"))
        rows[0]["personal_key"] = 99999
        facts_file.write_text(json.dumps(rows), encoding="utf-8")
        with pytest.raises(WarehouseError, match="integrity"):
            load_warehouse(tmp_path / "wh")

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(WarehouseError, match="no warehouse"):
            load_warehouse(tmp_path / "ghost")

    def test_bad_format_version(self, tmp_path):
        import json

        (tmp_path / "schema.json").write_text(
            json.dumps({"format_version": 42}), encoding="utf-8"
        )
        with pytest.raises(WarehouseError, match="format"):
            load_warehouse(tmp_path)


class TestDurability:
    """Checksums, crashed saves, and the format-1 compatibility branch."""

    def test_tampered_dimension_file_names_the_file(self, fresh_built, tmp_path):
        import json

        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        victim = next((tmp_path / "wh").glob("dim_*.json"))
        members = json.loads(victim.read_text(encoding="utf-8"))
        next(iter(members.values()))["gender"] = "tampered"
        victim.write_text(json.dumps(members), encoding="utf-8")
        with pytest.raises(WarehouseError, match="checksum mismatch") as exc:
            load_warehouse(tmp_path / "wh")
        assert victim.name in str(exc.value)

    def test_crash_before_any_write_leaves_old_warehouse_loadable(
        self, fresh_built, tmp_path
    ):
        from repro.storage.faults import FaultRule, SimulatedCrash, injected

        warehouse = fresh_built.warehouse
        save_warehouse(warehouse, tmp_path / "wh")
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("any", lambda row: True)
        )
        warehouse.fold_feedback(builder)
        with pytest.raises(SimulatedCrash):
            with injected([FaultRule("warehouse.data", mode="kill")]):
                save_warehouse(warehouse, tmp_path / "wh")
        # nothing was replaced: the previous save loads, without "risk"
        reloaded = load_warehouse(tmp_path / "wh")
        assert "risk" not in reloaded.dimension_names

    def test_crash_before_manifest_is_detected_on_load(
        self, fresh_built, tmp_path
    ):
        """Data files replaced, old manifest left behind → loud mismatch."""
        from repro.storage.faults import FaultRule, SimulatedCrash, injected

        warehouse = fresh_built.warehouse
        save_warehouse(warehouse, tmp_path / "wh")
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("any", lambda row: True)
        )
        warehouse.fold_feedback(builder)  # changes facts.json content
        with pytest.raises(SimulatedCrash):
            with injected([FaultRule("warehouse.manifest", mode="kill")]):
                save_warehouse(warehouse, tmp_path / "wh")
        with pytest.raises(WarehouseError, match="integrity"):
            load_warehouse(tmp_path / "wh")

    def test_v1_manifest_without_digests_still_loads(self, fresh_built, tmp_path):
        import json

        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        manifest_file = tmp_path / "wh" / "schema.json"
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
        manifest["format_version"] = 1
        del manifest["digests"]
        manifest_file.write_text(json.dumps(manifest), encoding="utf-8")
        reloaded = load_warehouse(tmp_path / "wh")
        assert reloaded.schema.fact.measure("fbg").default_aggregation == "mean"
