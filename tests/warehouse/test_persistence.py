"""Tests for warehouse save/load."""

import pytest

from repro.errors import WarehouseError
from repro.olap.cube import Cube
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry
from repro.warehouse.persistence import load_warehouse, save_warehouse


class TestRoundTrip:
    def test_cube_answers_identical(self, fresh_built, tmp_path):
        warehouse = fresh_built.warehouse
        save_warehouse(warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")

        original = Cube(warehouse).aggregate(
            ["conditions.age_band", "personal.gender"],
            {"n": ("records", "size"), "m": ("fbg", "mean")},
        )
        restored = Cube(reloaded).aggregate(
            ["conditions.age_band", "personal.gender"],
            {"n": ("records", "size"), "m": ("fbg", "mean")},
        )
        assert original.to_rows() == restored.to_rows()

    def test_hierarchies_survive(self, fresh_built, tmp_path):
        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        hierarchy = reloaded.schema.dimension("conditions").hierarchies["age_drill"]
        assert hierarchy.levels == ["age_band", "age_band10", "age_band5"]

    def test_measures_survive(self, fresh_built, tmp_path):
        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        measure = reloaded.schema.fact.measure("fbg")
        assert measure.default_aggregation == "mean"
        assert not measure.additive

    def test_dynamic_history_survives(self, fresh_built, tmp_path):
        warehouse = fresh_built.warehouse
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("any", lambda row: True)
        )
        warehouse.fold_feedback(builder)
        save_warehouse(warehouse, tmp_path / "wh")
        reloaded = load_warehouse(tmp_path / "wh")
        assert reloaded.version == warehouse.version
        assert "fold_feedback" in reloaded.describe_history()
        assert "risk" in reloaded.dimension_names
        # the folded keys persist as data
        flat = reloaded.flatten()
        assert flat.column("risk.assessment").to_list()[0] == "any"

    def test_integrity_checked_on_load(self, fresh_built, tmp_path):
        import json

        save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        facts_file = tmp_path / "wh" / "facts.json"
        rows = json.loads(facts_file.read_text(encoding="utf-8"))
        rows[0]["personal_key"] = 99999
        facts_file.write_text(json.dumps(rows), encoding="utf-8")
        with pytest.raises(WarehouseError, match="integrity"):
            load_warehouse(tmp_path / "wh")

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(WarehouseError, match="no warehouse"):
            load_warehouse(tmp_path / "ghost")

    def test_bad_format_version(self, tmp_path):
        import json

        (tmp_path / "schema.json").write_text(
            json.dumps({"format_version": 42}), encoding="utf-8"
        )
        with pytest.raises(WarehouseError, match="format"):
            load_warehouse(tmp_path)
