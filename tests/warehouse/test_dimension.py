"""Tests for dimensions, hierarchies and attributes."""

import pytest

from repro.errors import DimensionError, HierarchyError, UnknownMemberError
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension


class TestHierarchy:
    def test_needs_two_levels(self):
        with pytest.raises(HierarchyError):
            Hierarchy("h", ["only"])

    def test_no_repeats(self):
        with pytest.raises(HierarchyError):
            Hierarchy("h", ["a", "a"])

    def test_drill_down_and_roll_up(self):
        h = Hierarchy("age", ["band20", "band10", "band5"])
        assert h.drill_down("band20") == "band10"
        assert h.roll_up("band5") == "band10"
        assert h.coarsest == "band20"
        assert h.finest == "band5"

    def test_drill_past_finest_rejected(self):
        h = Hierarchy("age", ["a", "b"])
        with pytest.raises(HierarchyError, match="finest"):
            h.drill_down("b")

    def test_roll_past_coarsest_rejected(self):
        h = Hierarchy("age", ["a", "b"])
        with pytest.raises(HierarchyError, match="coarsest"):
            h.roll_up("a")

    def test_unknown_level(self):
        h = Hierarchy("age", ["a", "b"])
        with pytest.raises(HierarchyError, match="not in hierarchy"):
            h.position("z")


@pytest.fixture()
def personal():
    return Dimension(
        "personal",
        {"patient_id": "int", "gender": "str", "band": "str"},
        natural_key=["patient_id"],
        hierarchies=[],
    )


class TestDimension:
    def test_requires_attributes(self):
        with pytest.raises(DimensionError):
            Dimension("d", {})

    def test_natural_key_must_exist(self):
        with pytest.raises(DimensionError, match="natural key"):
            Dimension("d", {"a": "str"}, natural_key=["zz"])

    def test_add_member_assigns_dense_keys(self, personal):
        k1 = personal.add_member({"patient_id": 1, "gender": "F", "band": "60-80"})
        k2 = personal.add_member({"patient_id": 2, "gender": "M", "band": "40-60"})
        assert (k1, k2) == (1, 2)
        assert personal.size == 2

    def test_same_natural_key_reuses_member(self, personal):
        k1 = personal.add_member({"patient_id": 1, "gender": "F", "band": "60-80"})
        k2 = personal.add_member({"patient_id": 1, "gender": "F", "band": ">=80"})
        assert k1 == k2
        # type-1 SCD: non-key attribute updated in place
        assert personal.attribute_of(k1, "band") == ">=80"

    def test_all_null_key_maps_to_unknown(self, personal):
        assert personal.add_member({"patient_id": None}) == UNKNOWN_KEY

    def test_unknown_attributes_rejected(self, personal):
        with pytest.raises(DimensionError, match="unknown attributes"):
            personal.add_member({"oops": 1})

    def test_lookup(self, personal):
        key = personal.add_member({"patient_id": 5, "gender": "F", "band": "x"})
        assert personal.lookup({"patient_id": 5}) == key

    def test_lookup_missing_raises(self, personal):
        with pytest.raises(UnknownMemberError):
            personal.lookup({"patient_id": 404})

    def test_member_returns_copy(self, personal):
        key = personal.add_member({"patient_id": 1, "gender": "F", "band": "x"})
        member = personal.member(key)
        member["gender"] = "Z"
        assert personal.attribute_of(key, "gender") == "F"

    def test_member_bad_key(self, personal):
        with pytest.raises(UnknownMemberError):
            personal.member(999)

    def test_attribute_of_unknown_attr(self, personal):
        key = personal.add_member({"patient_id": 1, "gender": "F", "band": "x"})
        with pytest.raises(DimensionError, match="no attribute"):
            personal.attribute_of(key, "zz")

    def test_unknown_member_has_null_attributes(self, personal):
        assert personal.member(UNKNOWN_KEY)["gender"] is None

    def test_distinct_values_first_seen_order(self, personal):
        personal.add_member({"patient_id": 1, "gender": "F", "band": "b"})
        personal.add_member({"patient_id": 2, "gender": "M", "band": "a"})
        personal.add_member({"patient_id": 3, "gender": "F", "band": "a"})
        assert personal.distinct_values("gender") == ["F", "M"]

    def test_to_table(self, personal):
        personal.add_member({"patient_id": 1, "gender": "F", "band": "x"})
        table = personal.to_table()
        assert table.num_rows == 1
        assert "personal_key" in table

    def test_to_table_with_unknown(self, personal):
        assert personal.to_table(include_unknown=True).num_rows == 1

    def test_hierarchy_levels_must_be_attributes(self, personal):
        with pytest.raises(DimensionError, match="unknown attributes"):
            personal.add_hierarchy(Hierarchy("h", ["gender", "zz"]))

    def test_hierarchy_for_level(self, personal):
        personal.add_hierarchy(Hierarchy("h", ["gender", "band"]))
        assert personal.hierarchy_for_level("band").name == "h"
        assert personal.hierarchy_for_level("patient_id") is None
