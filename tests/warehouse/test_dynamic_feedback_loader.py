"""Tests for the dynamic model, feedback folding and the loader."""

import pytest

from repro.errors import WarehouseError
from repro.tabular import Table
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.fact import Measure
from repro.warehouse.feedback import (
    FeedbackDimensionBuilder,
    FeedbackEntry,
    outcome_dimension,
)
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


@pytest.fixture()
def source():
    return Table.from_rows(
        [
            {"gender": "F", "band": "60-80", "fbg": 7.4},
            {"gender": "M", "band": "40-60", "fbg": 5.0},
            {"gender": "F", "band": "60-80", "fbg": 8.1},
            {"gender": None, "band": None, "fbg": 5.8},
        ]
    )


@pytest.fixture()
def loaded(source):
    loader = WarehouseLoader(
        "w", "facts",
        [DimensionSpec(Dimension("personal", {"gender": "str", "band": "str"}))],
        [Measure.of("fbg", "float", "mean")],
    )
    loader.load(source)
    return loader


class TestLoader:
    def test_counts(self, loaded):
        assert loaded.schema.fact.num_rows == 4
        assert loaded.schema.dimension("personal").size == 2

    def test_null_rows_map_to_unknown(self, loaded):
        keys = loaded.schema.fact.to_table().column("personal_key").to_list()
        assert UNKNOWN_KEY in keys

    def test_report(self, source, loaded):
        report = loaded.load(source)  # load again; members reused
        assert report.facts_loaded == 4
        assert report.members_per_dimension["personal"] == 2
        assert report.unknown_keys_per_dimension["personal"] == 1

    def test_column_mapping(self, source):
        dim = Dimension("p", {"sex": "str"})
        loader = WarehouseLoader(
            "w", "f",
            [DimensionSpec(dim, columns={"sex": "gender"})],
            [Measure.of("fbg")],
        )
        loader.load(source)
        assert dim.distinct_values("sex") == ["F", "M"]

    def test_bad_mapping_rejected(self):
        dim = Dimension("p", {"sex": "str"})
        with pytest.raises(WarehouseError, match="unknown"):
            DimensionSpec(dim, columns={"zz": "gender"})

    def test_integrity_after_load(self, loaded):
        assert loaded.schema.check_integrity() == []


class TestDynamicWarehouse:
    def test_add_dimension_with_keys(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        outcome = outcome_dimension("outcome", ["improved", "stable"])
        keys = [1, 2, 1, UNKNOWN_KEY]
        dynamic.add_dimension(outcome, fact_keys=keys)
        flat = dynamic.flatten()
        assert flat.column("outcome.outcome").to_list() == [
            "improved", "stable", "improved", None
        ]
        assert dynamic.version == 2

    def test_add_dimension_defaults_to_unknown(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        dynamic.add_dimension(outcome_dimension("o", ["x"]))
        assert dynamic.flatten().column("o.outcome").null_count == 4

    def test_key_length_checked(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        with pytest.raises(WarehouseError, match="keys supplied"):
            dynamic.add_dimension(outcome_dimension("o", ["x"]), fact_keys=[1])

    def test_duplicate_dimension_rejected(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        with pytest.raises(WarehouseError, match="already has"):
            dynamic.add_dimension(Dimension("personal", {"gender": "str"}))

    def test_remove_and_reattach(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        outcome = outcome_dimension("o", ["x"])
        dynamic.add_dimension(outcome, fact_keys=[1, 1, 1, 1])
        removed = dynamic.remove_dimension("o")
        assert removed is outcome
        assert "o" not in dynamic.dimension_names
        dynamic.add_dimension(removed, fact_keys=[1, 1, 1, 1])
        assert "o.outcome" in dynamic.flatten().column_names

    def test_remove_missing_rejected(self, loaded):
        with pytest.raises(WarehouseError):
            DynamicWarehouse(loaded.schema).remove_dimension("ghost")

    def test_history_journal(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        dynamic.add_dimension(outcome_dimension("o", ["x"]))
        dynamic.remove_dimension("o")
        text = dynamic.describe_history()
        assert "add_dimension" in text and "remove_dimension" in text

    def test_measures_untouched_by_dimension_changes(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        before = dynamic.flatten().column("fbg").to_list()
        dynamic.add_dimension(outcome_dimension("o", ["x"]))
        dynamic.remove_dimension("o")
        assert dynamic.flatten().column("fbg").to_list() == before


class TestFeedback:
    def test_fold_feedback_first_match_wins(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        builder = (
            FeedbackDimensionBuilder("risk")
            .add(FeedbackEntry("high", lambda r: (r["fbg"] or 0) >= 7,
                               author="dr_a", rationale="fbg >= 7"))
            .add(FeedbackEntry("low", lambda r: True))
        )
        dimension = dynamic.fold_feedback(builder)
        assert dimension.size == 2
        flat = dynamic.flatten()
        assert flat.column("risk.assessment").to_list() == [
            "high", "low", "high", "low"
        ]
        assert "fold_feedback" in dynamic.describe_history()

    def test_duplicate_label_rejected(self):
        builder = FeedbackDimensionBuilder("risk")
        builder.add(FeedbackEntry("high", lambda r: True))
        with pytest.raises(WarehouseError, match="already has"):
            builder.add(FeedbackEntry("high", lambda r: True))

    def test_empty_builder_rejected(self, loaded):
        with pytest.raises(WarehouseError, match="no entries"):
            DynamicWarehouse(loaded.schema).fold_feedback(
                FeedbackDimensionBuilder("risk")
            )

    def test_unmatched_rows_are_unknown(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("high", lambda r: (r["fbg"] or 0) >= 7)
        )
        dynamic.fold_feedback(builder)
        flat = dynamic.flatten()
        assert flat.column("risk.assessment").to_list() == [
            "high", None, "high", None
        ]

    def test_provenance_attributes(self, loaded):
        dynamic = DynamicWarehouse(loaded.schema)
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("high", lambda r: True, author="dr_b", rationale="why")
        )
        dimension = dynamic.fold_feedback(builder)
        member = dimension.member(1)
        assert member["author"] == "dr_b"
        assert member["rationale"] == "why"
