"""Tests for fact tables and star/snowflake schemas."""

import pytest

from repro.errors import (
    GrainViolationError,
    UnknownMeasureError,
    WarehouseError,
)
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import SnowflakeDimension, StarSchema


@pytest.fixture()
def star():
    personal = Dimension("personal", {"gender": "str"})
    bloods = Dimension("bloods", {"fbg_band": "str"})
    fact = FactTable(
        "measures", ["personal", "bloods"],
        [Measure.of("fbg", "float", "mean"),
         Measure.of("visits", "int", "sum", additive=True)],
    )
    f = personal.add_member({"gender": "F"})
    m = personal.add_member({"gender": "M"})
    hi = bloods.add_member({"fbg_band": "high"})
    lo = bloods.add_member({"fbg_band": "low"})
    fact.insert({"personal": f, "bloods": hi}, {"fbg": 7.0, "visits": 1})
    fact.insert({"personal": m, "bloods": lo}, {"fbg": 5.0, "visits": 1})
    fact.insert({"personal": f, "bloods": UNKNOWN_KEY}, {"fbg": 6.0, "visits": 1})
    return StarSchema("s", fact, [personal, bloods])


class TestMeasure:
    def test_non_numeric_rejected(self):
        with pytest.raises(WarehouseError):
            Measure.of("name", "str")

    def test_defaults(self):
        m = Measure.of("fbg")
        assert m.default_aggregation == "mean"
        assert not m.additive


class TestFactTable:
    def test_grain_requires_every_key(self, star):
        with pytest.raises(GrainViolationError, match="missing the key"):
            star.fact.insert({"personal": 1}, {"fbg": 5.0})

    def test_unknown_measures_rejected(self, star):
        with pytest.raises(GrainViolationError, match="unknown measures"):
            star.fact.insert(
                {"personal": 1, "bloods": 1}, {"nope": 1.0}
            )

    def test_missing_measure_values_are_null(self, star):
        star.fact.insert({"personal": 1, "bloods": 1}, {})
        assert star.fact.to_table().row(-1)["fbg"] is None

    def test_measure_lookup(self, star):
        assert star.fact.measure("fbg").name == "fbg"
        with pytest.raises(UnknownMeasureError):
            star.fact.measure("zz")

    def test_needs_dimensions_and_measures(self):
        with pytest.raises(WarehouseError):
            FactTable("f", [], [Measure.of("x")])
        with pytest.raises(WarehouseError):
            FactTable("f", ["d"], [])

    def test_cache_invalidated_on_insert(self, star):
        before = star.fact.to_table().num_rows
        star.fact.insert({"personal": 1, "bloods": 1}, {"fbg": 1.0})
        assert star.fact.to_table().num_rows == before + 1

    def test_add_drop_dimension_column(self, star):
        star.fact.add_dimension_column("extra", default_key=UNKNOWN_KEY)
        assert "extra_key" in star.fact.to_table().column_names
        star.fact.drop_dimension_column("extra")
        assert "extra_key" not in star.fact.to_table().column_names

    def test_cannot_drop_last_dimension(self):
        fact = FactTable("f", ["only"], [Measure.of("x")])
        with pytest.raises(WarehouseError, match="last dimension"):
            fact.drop_dimension_column("only")


class TestStarSchema:
    def test_missing_dimension_rejected(self, star):
        with pytest.raises(WarehouseError, match="not supplied"):
            StarSchema("bad", star.fact, [star.dimension("personal")])

    def test_integrity_clean(self, star):
        assert star.check_integrity() == []

    def test_integrity_detects_orphans(self, star):
        star.fact._rows[0]["personal_key"] = 999
        star.fact._cache = None
        problems = star.check_integrity()
        assert problems and "999" in problems[0]

    def test_flatten_layout(self, star):
        flat = star.flatten()
        assert flat.column_names == [
            "personal.gender", "bloods.fbg_band", "fbg", "visits"
        ]
        assert flat.num_rows == 3

    def test_flatten_unknown_member_is_null(self, star):
        flat = star.flatten()
        assert flat.column("bloods.fbg_band").to_list()[2] is None

    def test_qualified_attributes(self, star):
        qualified = star.qualified_attributes()
        assert qualified["personal.gender"] == ("personal", "gender")


class TestSnowflake:
    @pytest.fixture()
    def clinic(self):
        region = Dimension(
            "region", {"region_name": "str", "state": "str"},
            natural_key=["region_name"],
        )
        self.region_key = region.add_member(
            {"region_name": "Albury", "state": "NSW"}
        )
        return SnowflakeDimension(
            "clinic", {"clinic_name": "str"},
            outriggers={"region": region}, natural_key=["clinic_name"],
        )

    def test_attribute_resolution_through_outrigger(self, clinic):
        key = clinic.add_member(
            {"clinic_name": "Main", "region_key": self.region_key}
        )
        assert clinic.attribute_of(key, "state") == "NSW"
        assert clinic.attribute_of(key, "clinic_name") == "Main"

    def test_member_resolved_flattens(self, clinic):
        key = clinic.add_member(
            {"clinic_name": "Main", "region_key": self.region_key}
        )
        resolved = clinic.member_resolved(key)
        assert resolved == {
            "clinic_name": "Main", "region_name": "Albury", "state": "NSW"
        }

    def test_null_outrigger_key_resolves_to_null(self, clinic):
        key = clinic.add_member({"clinic_name": "Lone", "region_key": None})
        assert clinic.attribute_of(key, "state") is None

    def test_attribute_collision_rejected(self):
        region = Dimension("region", {"name": "str"})
        with pytest.raises(Exception, match="collide"):
            SnowflakeDimension(
                "clinic", {"name": "str"}, outriggers={"region": region}
            )

    def test_flatten_through_snowflake(self, clinic):
        key = clinic.add_member(
            {"clinic_name": "Main", "region_key": self.region_key}
        )
        fact = FactTable("f", ["clinic"], [Measure.of("x")])
        fact.insert({"clinic": key}, {"x": 1.0})
        star = StarSchema("s", fact, [clinic])
        flat = star.flatten()
        assert flat.row(0)["clinic.state"] == "NSW"
        assert "clinic.region_key" not in flat.column_names
