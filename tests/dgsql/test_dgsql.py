"""Tests for the DG-SQL baseline: lexer, parser, executor."""

import pytest

from repro.errors import EvaluationError, LexError, ParseError
from repro.dgsql.ast import (
    AggregateItem,
    BoolExpr,
    ColumnItem,
    Condition,
    LearnStatement,
    PredictStatement,
    SelectStatement,
)
from repro.dgsql.executor import DGSQLExecutor
from repro.dgsql.lexer import SqlTokenType, tokenize_sql
from repro.dgsql.parser import parse_dgsql
from repro.storage.engine import StorageEngine


class TestLexer:
    def test_operators(self):
        tokens = tokenize_sql("a <= 5 AND b <> 'x'")
        ops = [t.text for t in tokens if t.type is SqlTokenType.OPERATOR]
        assert ops == ["<=", "<>"]

    def test_string_literal(self):
        tokens = tokenize_sql("WHERE s = 'hello world'")
        strings = [t for t in tokens if t.type is SqlTokenType.STRING]
        assert strings[0].text == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize_sql("WHERE s = 'oops")

    def test_numbers(self):
        tokens = tokenize_sql("5 -3 2.75")
        values = [t.text for t in tokens if t.type is SqlTokenType.NUMBER]
        assert values == ["5", "-3", "2.75"]

    def test_keywords_vs_idents(self):
        tokens = tokenize_sql("SELECT fbg FROM visits")
        assert tokens[0].type is SqlTokenType.KEYWORD
        assert tokens[1].type is SqlTokenType.IDENT


class TestParser:
    def test_select_star(self):
        statement = parse_dgsql("SELECT * FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.select_star

    def test_full_select(self):
        statement = parse_dgsql(
            "SELECT g, COUNT(*) AS n, AVG(v) AS m FROM t "
            "WHERE a >= 40 AND s = 'yes' GROUP BY g ORDER BY n DESC LIMIT 5"
        )
        assert statement.items[0] == ColumnItem("g")
        assert statement.items[1] == AggregateItem("COUNT", None, False, "n")
        assert statement.where == BoolExpr(
            "and", (Condition("a", ">=", 40), Condition("s", "=", "yes"))
        )
        assert statement.group_by == ("g",)
        assert statement.order_by == "n" and statement.order_desc
        assert statement.limit == 5

    def test_count_distinct(self):
        statement = parse_dgsql("SELECT COUNT(DISTINCT pid) FROM t")
        item = statement.items[0]
        assert item.distinct and item.column == "pid"

    def test_is_null_conditions(self):
        statement = parse_dgsql("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert statement.where.operands[0].operator == "is_null"
        assert statement.where.operands[1].operator == "is_not_null"

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_dgsql("SELECT SUM(*) FROM t")

    def test_learn(self):
        statement = parse_dgsql(
            "LEARN m PREDICTING diabetes FROM visits USING fbg, bmi"
        )
        assert statement == LearnStatement("m", "diabetes", "visits", ("fbg", "bmi"))

    def test_predict(self):
        statement = parse_dgsql("PREDICT m GIVEN fbg = 7.5, sex = 'F'")
        assert isinstance(statement, PredictStatement)
        assert statement.givens == {"fbg": 7.5, "sex": "F"}

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_dgsql("DELETE FROM t")

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError):
            parse_dgsql("SELECT * FROM t LIMIT -1")


@pytest.fixture()
def executor():
    db = StorageEngine()
    db.create_table(
        "visits",
        {"vid": "int", "pid": "int", "sex": "str", "age": "int",
         "fbg": "float", "diabetes": "str"},
        primary_key="vid",
    )
    rows = [
        (1, 1, "F", 62, 7.4, "yes"),
        (2, 1, "F", 63, 7.9, "yes"),
        (3, 2, "M", 45, 5.1, "no"),
        (4, 3, "F", 71, None, "no"),
        (5, 4, "M", 58, 6.0, "no"),
        (6, 5, "F", 66, 8.2, "yes"),
    ]
    with db.transaction():
        for vid, pid, sex, age, fbg, diabetes in rows:
            db.insert("visits", {"vid": vid, "pid": pid, "sex": sex,
                                 "age": age, "fbg": fbg, "diabetes": diabetes})
    return DGSQLExecutor(db)


class TestExecutor:
    def test_select_star_where(self, executor):
        result = executor.execute("SELECT * FROM visits WHERE age > 60")
        assert result.num_rows == 4

    def test_projection_and_alias(self, executor):
        result = executor.execute("SELECT sex AS gender FROM visits LIMIT 2")
        assert result.column_names == ["gender"]
        assert result.num_rows == 2

    def test_group_by_aggregates(self, executor):
        result = executor.execute(
            "SELECT sex, COUNT(*) AS n, AVG(fbg) AS mean_fbg "
            "FROM visits GROUP BY sex ORDER BY sex"
        )
        by_sex = {row["sex"]: row for row in result.to_rows()}
        assert by_sex["F"]["n"] == 4
        assert by_sex["F"]["mean_fbg"] == pytest.approx((7.4 + 7.9 + 8.2) / 3)

    def test_global_aggregate(self, executor):
        result = executor.execute(
            "SELECT COUNT(DISTINCT pid) AS patients, MAX(fbg) AS peak FROM visits"
        )
        assert result.row(0) == {"patients": 5, "peak": 8.2}

    def test_is_null_filter(self, executor):
        result = executor.execute("SELECT vid FROM visits WHERE fbg IS NULL")
        assert result.column("vid").to_list() == [4]

    def test_order_and_limit(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits ORDER BY fbg DESC LIMIT 2"
        )
        assert result.column("vid").to_list() == [6, 2]

    def test_ungrouped_column_rejected(self, executor):
        with pytest.raises(EvaluationError, match="GROUP BY"):
            executor.execute("SELECT sex, COUNT(*) FROM visits")

    def test_learn_then_predict(self, executor):
        summary = executor.execute(
            "LEARN dm PREDICTING diabetes FROM visits USING fbg, age"
        )
        assert summary.row(0)["classes"] == "no, yes"
        outcome = executor.execute("PREDICT dm GIVEN fbg = 8.0, age = 65")
        assert outcome["prediction"] == "yes"
        assert outcome["probabilities"]["yes"] > 0.5

    def test_predict_without_learn(self, executor):
        with pytest.raises(EvaluationError, match="no model"):
            executor.execute("PREDICT ghost GIVEN fbg = 5")

    def test_ne_operator(self, executor):
        result = executor.execute("SELECT vid FROM visits WHERE sex <> 'F'")
        assert result.column("vid").to_list() == [3, 5]
