"""Tests for the DG-SQL extensions: OR/parentheses, IN, BETWEEN, HAVING."""

import pytest

from repro.errors import ParseError
from repro.dgsql.ast import BoolExpr, Condition
from repro.dgsql.executor import DGSQLExecutor
from repro.dgsql.parser import parse_dgsql
from repro.storage.engine import StorageEngine


@pytest.fixture()
def executor():
    db = StorageEngine()
    db.create_table(
        "visits",
        {"vid": "int", "sex": "str", "age": "int", "fbg": "float",
         "band": "str"},
        primary_key="vid",
    )
    rows = [
        (1, "F", 62, 7.4, "60-80"),
        (2, "F", 45, 5.1, "40-60"),
        (3, "M", 71, 6.0, "60-80"),
        (4, "M", 38, 5.4, "<40"),
        (5, "F", 83, 8.2, ">=80"),
        (6, "M", 55, None, "40-60"),
    ]
    with db.transaction():
        for vid, sex, age, fbg, band in rows:
            db.insert("visits", {"vid": vid, "sex": sex, "age": age,
                                 "fbg": fbg, "band": band})
    return DGSQLExecutor(db)


class TestParsing:
    def test_or_precedence(self):
        statement = parse_dgsql(
            "SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3"
        )
        # (a AND b) OR c
        assert statement.where.operator == "or"
        assert statement.where.operands[0] == BoolExpr(
            "and", (Condition("a", "=", 1), Condition("b", "=", 2))
        )

    def test_parentheses_override(self):
        statement = parse_dgsql(
            "SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)"
        )
        assert statement.where.operator == "and"
        assert statement.where.operands[1].operator == "or"

    def test_in_list(self):
        statement = parse_dgsql("SELECT * FROM t WHERE band IN ('a', 'b')")
        assert statement.where == Condition("band", "in", ("a", "b"))

    def test_in_with_null_rejected(self):
        with pytest.raises(ParseError, match="NULL inside"):
            parse_dgsql("SELECT * FROM t WHERE band IN ('a', NULL)")

    def test_between(self):
        statement = parse_dgsql("SELECT * FROM t WHERE age BETWEEN 40 AND 60")
        assert statement.where == Condition("age", "between", (40, 60))

    def test_between_null_rejected(self):
        with pytest.raises(ParseError):
            parse_dgsql("SELECT * FROM t WHERE age BETWEEN NULL AND 60")

    def test_having_requires_group_by(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_dgsql("SELECT COUNT(*) FROM t HAVING n > 1")

    def test_having_parsed(self):
        statement = parse_dgsql(
            "SELECT sex, COUNT(*) AS n FROM t GROUP BY sex HAVING n >= 2"
        )
        assert statement.having == Condition("n", ">=", 2)


class TestExecution:
    def test_or(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits WHERE age < 40 OR age > 80"
        )
        assert result.column("vid").to_list() == [4, 5]

    def test_nested_parentheses(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits WHERE sex = 'F' AND (age < 50 OR age > 80)"
        )
        assert result.column("vid").to_list() == [2, 5]

    def test_in(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits WHERE band IN ('<40', '>=80')"
        )
        assert result.column("vid").to_list() == [4, 5]

    def test_between_inclusive(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits WHERE age BETWEEN 45 AND 62"
        )
        assert result.column("vid").to_list() == [1, 2, 6]

    def test_between_skips_nulls(self, executor):
        result = executor.execute(
            "SELECT vid FROM visits WHERE fbg BETWEEN 0 AND 100"
        )
        assert 6 not in result.column("vid").to_list()

    def test_having_filters_groups(self, executor):
        result = executor.execute(
            "SELECT band, COUNT(*) AS n FROM visits GROUP BY band "
            "HAVING n >= 2 ORDER BY band"
        )
        assert result.column("band").to_list() == ["40-60", "60-80"]

    def test_having_with_aggregate_alias(self, executor):
        result = executor.execute(
            "SELECT sex, AVG(fbg) AS mean_fbg FROM visits GROUP BY sex "
            "HAVING mean_fbg > 6.5"
        )
        assert result.column("sex").to_list() == ["F"]

    def test_learn_with_where_scopes_training(self, executor):
        # train only on the younger half; classes come from that subset
        summary = executor.execute(
            "LEARN young PREDICTING sex FROM visits USING age, fbg "
            "WHERE age < 60"
        )
        assert summary.row(0)["rows"] == 3

    def test_combined_everything(self, executor):
        result = executor.execute(
            "SELECT band, COUNT(*) AS n FROM visits "
            "WHERE sex IN ('F', 'M') AND (age BETWEEN 40 AND 90 OR age < 39) "
            "GROUP BY band HAVING n >= 1 ORDER BY n DESC LIMIT 2"
        )
        assert result.num_rows == 2
        counts = result.column("n").to_list()
        assert counts == sorted(counts, reverse=True)
