"""Scenario specs: validation, content addressing, the default matrix."""

import pytest

from repro.errors import ReproError, StorageError
from repro.scenarios.spec import FaultSpec, ScenarioSpec, default_matrix


class TestFaultSpec:
    def test_unknown_point_rejected_at_construction(self):
        with pytest.raises(StorageError, match="unknown fault point"):
            FaultSpec("wal.comit", mode="kill")  # typo'd on purpose

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown fault mode"):
            FaultSpec("wal.commit", mode="explode")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ReproError, match="scope"):
            FaultSpec("wal.commit", scope="sometimes")

    def test_every_hit_kill_rejected(self):
        # an every-hit crash can never converge: recovery re-runs the
        # boundary and dies again, forever
        with pytest.raises(ReproError, match="unfinishable"):
            FaultSpec("wal.commit", mode="kill", nth=0)
        with pytest.raises(ReproError, match="unfinishable"):
            FaultSpec("wal.commit", mode="short", nth=0)

    def test_to_rule_round_trips_fields(self):
        rule = FaultSpec(
            "serving.scan", mode="slow", nth=0, delay_s=0.01
        ).to_rule()
        assert rule.point == "serving.scan"
        assert rule.mode == "slow"
        assert rule.nth == 0
        assert rule.delay_s == 0.01


class TestScenarioSpec:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="disease profile"):
            ScenarioSpec(name="x", profile="plague")

    def test_dirty_rate_bounds(self):
        with pytest.raises(ReproError, match="dirty_rate"):
            ScenarioSpec(name="x", dirty_rate=1.5)

    def test_crash_style_validated(self):
        with pytest.raises(ReproError, match="crash style"):
            ScenarioSpec(name="x", crash_style="shrug")

    def test_scenario_id_is_stable(self):
        a = ScenarioSpec(name="x", seed=3)
        b = ScenarioSpec(name="x", seed=3)
        assert a.scenario_id == b.scenario_id
        assert a.slug == f"x-{a.scenario_id}"

    def test_scenario_id_tracks_content(self):
        base = ScenarioSpec(name="x", seed=3)
        assert base.scenario_id != ScenarioSpec(name="x", seed=4).scenario_id
        assert base.scenario_id != ScenarioSpec(
            name="x", seed=3, faults=(FaultSpec("wal.commit"),)
        ).scenario_id

    def test_json_round_trip(self):
        spec = ScenarioSpec(
            name="rt", profile="hypertension", dirty_rate=0.2,
            faults=(FaultSpec("wal.commit", mode="kill", nth=2,
                              scope="first_attempt"),),
            crash_style="die", storage=True,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.scenario_id == spec.scenario_id

    def test_first_attempt_rules_drop_on_retry(self):
        spec = ScenarioSpec(
            name="x",
            faults=(
                FaultSpec("wal.commit", mode="kill", scope="first_attempt"),
                FaultSpec("serving.scan", mode="slow", nth=0),
            ),
        )
        assert [r.point for r in spec.rules_for_attempt(1)] == [
            "wal.commit", "serving.scan"
        ]
        assert [r.point for r in spec.rules_for_attempt(2)] == ["serving.scan"]


class TestDefaultMatrix:
    def test_shape(self):
        matrix = default_matrix()
        assert len(matrix) == 12
        assert {s.profile for s in matrix} == {
            "discri", "hypertension", "can_progression"
        }
        assert {s.plan for s in matrix} == {"kill-mid-loop", "flaky-deps"}
        assert {s.regime for s in matrix} == {"small-clean", "mid-dirty"}

    def test_ids_unique(self):
        matrix = default_matrix()
        assert len({s.scenario_id for s in matrix}) == len(matrix)

    def test_has_die_style_kill_scenarios(self):
        die = [s for s in default_matrix() if s.crash_style == "die"]
        assert die, "the matrix must exercise real worker death"
        for spec in die:
            kills = [f for f in spec.faults if f.mode == "kill"]
            assert kills and all(f.scope == "first_attempt" for f in kills)
            assert spec.retries >= 1  # the recovery attempt must exist

    def test_dirty_regime_is_dirty_and_stored(self):
        for spec in default_matrix():
            if spec.regime == "mid-dirty":
                assert spec.dirty_rate > 0
                assert spec.storage
