"""Single-scenario runner: clean-twin parity, recovery, invariants."""

import json

import pytest

from repro.scenarios.runner import build_batch, build_cohort, run_scenario
from repro.scenarios.spec import FaultSpec, ScenarioSpec
from repro.storage import faults


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t", profile="discri", patients=16, batch_patients=5, seed=11,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestInputs:
    def test_cohort_and_batch_are_deterministic(self):
        spec = _spec(dirty_rate=0.2)
        a_src = build_cohort(spec)
        b_src = build_cohort(spec)
        assert a_src.to_rows() == b_src.to_rows()
        assert build_batch(spec, a_src).to_rows() == (
            build_batch(spec, b_src).to_rows()
        )

    def test_dirty_rows_hit_distinct_patients(self):
        spec = _spec(batch_patients=8, dirty_rate=0.3)
        batch = build_batch(spec, build_cohort(spec))
        dirty = [
            row for row in batch.to_rows() if row["visit_date"] is None
        ]
        assert dirty
        patients = [row["patient_id"] for row in dirty]
        # one per patient: null-dated twins would collapse in ETL dedup
        assert len(patients) == len(set(patients))

    def test_batch_ids_offset_past_cohort(self):
        spec = _spec()
        source = build_cohort(spec)
        batch = build_batch(spec, source)
        assert min(batch.column("visit_id").to_list()) > max(
            source.column("visit_id").to_list()
        )


class TestCleanScenario:
    def test_no_faults_all_invariants_hold(self, tmp_path):
        result = run_scenario(_spec(), tmp_path)
        assert result["status"] == "ok"
        assert result["violations"] == []
        assert result["recoveries"] == 0
        partition = result["partition"]
        assert partition["flat_gain"] + partition["quarantine_gain"] == (
            partition["batch_rows"]
        )

    def test_dirty_batch_partitions_exactly(self, tmp_path):
        result = run_scenario(_spec(dirty_rate=0.25), tmp_path)
        assert result["status"] == "ok"
        assert result["partition"]["quarantine_gain"] > 0

    def test_events_emitted_in_phase_order(self, tmp_path):
        events = []
        run_scenario(_spec(), tmp_path, emit=events.append)
        phases = [e["phase"] for e in events if e["event"] == "phase"]
        assert phases.index("fold") < phases.index("ingest")
        assert phases.index("ingest") < phases.index("checkpoint.final")
        assert [e for e in events if e["event"] == "result"]


class TestKillRecover:
    def test_in_process_crash_recovers_and_matches_oracle(self, tmp_path):
        spec = _spec(
            faults=(FaultSpec("wal.commit", mode="kill", nth=4),),
            crash_style="recover",
        )
        result = run_scenario(spec, tmp_path)
        assert result["status"] == "ok"
        assert result["recoveries"] >= 1
        assert result["invariants"]["answers_match"]["ok"]
        assert result["invariants"]["recovered_serves"]["ok"]

    def test_retry_attempt_recovers_durable_state(self, tmp_path):
        """Attempt 2 after a first-attempt crash resumes from disk."""
        spec = _spec(
            faults=(FaultSpec(
                "wal.commit", mode="kill", nth=4, scope="first_attempt"
            ),),
            crash_style="recover",
        )
        first = run_scenario(spec, tmp_path, attempt=1)
        assert first["recoveries"] >= 1
        # the durable root now exists; attempt 2 must recover, not rebuild,
        # and still match the oracle on the strict checkpoints
        second = run_scenario(spec, tmp_path, attempt=2)
        assert second["status"] == "ok"
        assert second["invariants"]["answers_match"]["detail"]["compared"] == [
            "ingest", "final"
        ]
        assert (tmp_path / "baseline.json").exists()


class TestDegradation:
    def test_fired_permanent_fault_must_surface(self, tmp_path):
        spec = _spec(
            lattice=True,
            faults=(FaultSpec(
                "lattice.delta_merge", mode="permanent", nth=1
            ),),
        )
        result = run_scenario(spec, tmp_path)
        assert result["status"] == "ok"
        detail = result["invariants"]["degradation_surfaced"]["detail"]
        assert detail["fired_permanent"] == ["lattice.delta_merge"]
        assert detail["flagged"]

    def test_transient_fault_heals_silently(self, tmp_path):
        spec = _spec(
            faults=(FaultSpec("ingest.oltp", mode="transient", nth=1),),
        )
        result = run_scenario(spec, tmp_path)
        assert result["status"] == "ok"
        assert result["fault_hits"]["ingest.oltp"] >= 1


class TestResultRecord:
    def test_result_is_json_serialisable(self, tmp_path):
        result = run_scenario(_spec(), tmp_path)
        assert json.loads(json.dumps(result)) == result
        for key in ("scenario_id", "name", "profile", "plan", "regime",
                    "loop_s", "fault_hits", "invariants"):
            assert key in result
