"""Fleet runner: crash isolation, retries, deadlines, ledger resume."""

import json

import pytest

from repro.scenarios.fleet import run_fleet
from repro.scenarios.ledger import SweepLedger
from repro.scenarios.spec import FaultSpec, ScenarioSpec


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="fleet", profile="discri", patients=14, batch_patients=4,
        seed=23,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.mark.slow
class TestCrashIsolation:
    def test_worker_death_is_retried_and_recovered(self, tmp_path):
        """A kill-style fault takes the worker down with it; the sweep
        survives, retries, and attempt 2 recovers from the durable root."""
        spec = _spec(
            name="die",
            faults=(FaultSpec(
                "wal.commit", mode="kill", nth=4, scope="first_attempt"
            ),),
            crash_style="die",
            retries=1,
        )
        records = run_fleet([spec], tmp_path)
        record = records[spec.slug]
        assert record["status"] == "ok"
        assert record["crashed_attempts"] == 1
        assert record["attempts"] == 2
        # the crash left a mark in the event log before dying
        events_path = tmp_path / spec.slug / "events.jsonl"
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        assert any(e.get("event") == "result" for e in events)

    def test_crash_with_no_retries_is_a_terminal_outcome(self, tmp_path):
        spec = _spec(
            name="die-hard",
            faults=(FaultSpec("wal.commit", mode="kill", nth=4),),
            crash_style="die",
            retries=0,
        )
        records = run_fleet([spec], tmp_path)
        assert records[spec.slug]["status"] == "crashed"
        assert SweepLedger(tmp_path).outcome(spec) == "crashed"

    def test_crashed_scenario_does_not_poison_neighbours(self, tmp_path):
        doomed = _spec(
            name="doomed",
            faults=(FaultSpec("wal.commit", mode="kill", nth=4),),
            crash_style="die",
            retries=0,
        )
        fine = _spec(name="fine")
        records = run_fleet([doomed, fine], tmp_path)
        assert records[doomed.slug]["status"] == "crashed"
        assert records[fine.slug]["status"] == "ok"


@pytest.mark.slow
class TestDeadlines:
    def test_deadline_exceeded_becomes_timeout(self, tmp_path):
        spec = _spec(name="stuck", deadline_s=0.05, retries=0)
        records = run_fleet([spec], tmp_path)
        assert records[spec.slug]["status"] == "timeout"
        assert records[spec.slug]["timeout_attempts"] == 1


@pytest.mark.slow
class TestResume:
    def test_second_sweep_skips_settled_scenarios(self, tmp_path):
        specs = [_spec(name="a"), _spec(name="b", seed=29)]
        first = run_fleet(specs, tmp_path)
        assert all(r["status"] == "ok" for r in first.values())

        second = run_fleet(specs, tmp_path)
        assert all(r.get("resumed") for r in second.values())

    def test_failed_scenario_is_re_run(self, tmp_path):
        spec = _spec(name="flip")
        run_fleet([spec], tmp_path)
        # forge a failure; the next sweep must re-execute just this cell
        ledger = SweepLedger(tmp_path)
        forged = dict(ledger.result(spec), status="error")
        ledger.record(spec, forged)
        records = run_fleet([spec], tmp_path)
        assert not records[spec.slug].get("resumed")
        assert records[spec.slug]["status"] == "ok"

    def test_fresh_ignores_prior_results(self, tmp_path):
        spec = _spec(name="redo")
        run_fleet([spec], tmp_path)
        records = run_fleet([spec], tmp_path, fresh=True)
        assert not records[spec.slug].get("resumed")
        assert records[spec.slug]["status"] == "ok"


class TestLedger:
    def test_pending_partitions_by_outcome(self, tmp_path):
        ledger = SweepLedger(tmp_path)
        done, failed = _spec(name="done"), _spec(name="failed")
        ledger.prepare(done)
        ledger.prepare(failed)
        ledger.record(done, {"status": "ok"})
        ledger.record(failed, {"status": "crashed"})
        pending = ledger.pending([done, failed])
        assert [s.name for s in pending] == ["failed"]
        assert len(ledger.pending([done, failed], fresh=True)) == 2

    def test_spec_json_is_pinned_once(self, tmp_path):
        ledger = SweepLedger(tmp_path)
        spec = _spec(name="pin")
        ledger.prepare(spec)
        pinned = json.loads(
            (ledger.scenario_dir(spec) / "spec.json").read_text()
        )
        assert pinned["scenario_id"] == spec.scenario_id
        assert ScenarioSpec.from_json(pinned) == spec

    def test_corrupt_result_reads_as_unsettled(self, tmp_path):
        ledger = SweepLedger(tmp_path)
        spec = _spec(name="corrupt")
        ledger.prepare(spec)
        (ledger.scenario_dir(spec) / "result.json").write_text("{oops")
        assert ledger.result(spec) is None
        assert ledger.outcome(spec) is None
        assert ledger.pending([spec]) == [spec]
