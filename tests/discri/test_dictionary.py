"""Tests for the data-dictionary generator."""

from repro.discri.attributes import ATTRIBUTE_GROUPS, catalog
from repro.discri.dictionary import generate_data_dictionary


def test_every_attribute_listed():
    text = generate_data_dictionary()
    for spec in catalog():
        assert f"`{spec.name}`" in text


def test_group_headings_present():
    text = generate_data_dictionary()
    for group in ATTRIBUTE_GROUPS:
        assert f"## {group}" in text


def test_total_count_stated():
    assert "**273**" in generate_data_dictionary()


def test_cohort_statistics_included(cohort):
    text = generate_data_dictionary(cohort)
    assert "| nulls | distinct |" in text
    # the hand-grip row shows substantial missingness
    for line in text.splitlines():
        if "`ewing_handgrip_dbp_rise`" in line:
            null_cell = line.split("|")[4].strip()
            assert null_cell.endswith("%")
            assert float(null_cell.rstrip("%")) > 5
            break
    else:  # pragma: no cover
        raise AssertionError("hand-grip row missing")


def test_written_to_disk(tmp_path):
    path = tmp_path / "dictionary.md"
    text = generate_data_dictionary(path=path)
    assert path.read_text(encoding="utf-8") == text
