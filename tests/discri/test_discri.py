"""Tests for the synthetic DiScRi cohort: catalogue, schemes, generator."""

import pytest

from repro.discri.attributes import ATTRIBUTE_GROUPS, catalog, specs_by_group
from repro.discri.generator import DiScRiGenerator
from repro.discri.phenomena import PhenomenaConfig
from repro.discri.schemes import (
    AGE_BAND_5_SCHEME,
    AGE_BAND_10_SCHEME,
    AGE_SCHEME,
    FBG_SCHEME,
    HT_YEARS_SCHEME,
    LYING_DBP_SCHEME,
    TABLE1_SCHEMES,
)


class TestCatalogue:
    def test_exactly_273_attributes(self):
        """The paper reports 'data on 273 attributes'."""
        assert len(catalog()) == 273

    def test_no_duplicate_names(self):
        names = [spec.name for spec in catalog()]
        assert len(names) == len(set(names))

    def test_every_group_populated(self):
        grouped = specs_by_group()
        assert set(grouped) == set(ATTRIBUTE_GROUPS)
        assert all(len(specs) > 0 for specs in grouped.values())

    def test_special_attributes_cover_planted_phenomena(self):
        specials = {spec.name for spec in catalog() if spec.is_special()}
        for required in (
            "fbg", "diabetes_status", "diagnostic_ht_years",
            "reflex_knee_left", "reflex_ankle_left",
            "ewing_handgrip_dbp_rise", "can_status", "gender", "age",
        ):
            assert required in specials


class TestTable1Schemes:
    """The four rows of paper Table I, transcribed exactly."""

    def test_age(self):
        assert AGE_SCHEME.labels == ["<40", "40-60", "60-80", ">=80"]
        assert AGE_SCHEME.assign(39.9) == "<40"
        assert AGE_SCHEME.assign(80) == ">=80"

    def test_ht_years(self):
        assert HT_YEARS_SCHEME.labels == ["<2", "2-5", "5-10", "10-20", ">=20"]
        assert HT_YEARS_SCHEME.assign(7) == "5-10"

    def test_fbg(self):
        assert FBG_SCHEME.labels == ["very good", "high", "preDiabetic", "Diabetic"]
        assert FBG_SCHEME.assign(5.4) == "very good"
        assert FBG_SCHEME.assign(5.5) == "high"
        assert FBG_SCHEME.assign(6.1) == "preDiabetic"
        assert FBG_SCHEME.assign(7.0) == "Diabetic"

    def test_lying_dbp(self):
        assert LYING_DBP_SCHEME.labels == [
            "low", "normal", "high normal", "hypertension"
        ]
        assert LYING_DBP_SCHEME.assign(59) == "low"
        assert LYING_DBP_SCHEME.assign(95) == "hypertension"

    def test_table1_keys(self):
        assert set(TABLE1_SCHEMES) == {
            "age", "diagnostic_ht_years", "fbg", "lying_dbp_avg"
        }

    def test_age_hierarchy_nests(self):
        """Table-I bands, 10-year bands and 5-year bands nest cleanly."""
        cuts_coarse = set(AGE_SCHEME.cut_points)
        cuts_10 = set(AGE_BAND_10_SCHEME.cut_points)
        cuts_5 = set(AGE_BAND_5_SCHEME.cut_points)
        assert cuts_coarse <= cuts_10 <= cuts_5


class TestPhenomenaConfig:
    def test_defaults_validate(self):
        PhenomenaConfig().validate()

    def test_bad_probability_caught(self):
        config = PhenomenaConfig()
        config.handgrip_missing_base = 1.5
        with pytest.raises(ValueError):
            config.validate()

    def test_ht_mix_must_sum_to_one(self):
        config = PhenomenaConfig()
        config.ht_years_mix["<40"] = {"<2": 0.5, "2-5": 0.1, "5-10": 0.1,
                                      "10-20": 0.1, ">=20": 0.1}
        with pytest.raises(ValueError, match="sums"):
            config.validate()

    def test_fig5_contrasts_planted(self):
        prevalence = PhenomenaConfig().diabetes_prevalence
        assert prevalence[("70-75", "M")] > prevalence[("70-75", "F")]
        assert prevalence[("75-80", "F")] > prevalence[("75-80", "M")]
        assert prevalence[("80-85", "F")] < prevalence[("75-80", "F")] / 2

    def test_fig6_dip_planted(self):
        mix = PhenomenaConfig().ht_years_mix
        assert mix["70-75"]["5-10"] < mix["65-70"]["5-10"] / 2


class TestGenerator:
    def test_deterministic(self):
        a = DiScRiGenerator(n_patients=30, seed=5).generate()
        b = DiScRiGenerator(n_patients=30, seed=5).generate()
        assert a.equals(b)

    def test_seed_changes_output(self):
        a = DiScRiGenerator(n_patients=30, seed=5).generate()
        b = DiScRiGenerator(n_patients=30, seed=6).generate()
        assert not a.equals(b)

    def test_shape_matches_paper_scale(self, cohort):
        """~2500 attendances of ~900 patients — scaled to the fixture size."""
        patients = cohort.column("patient_id").n_unique()
        assert patients == 250
        assert 2.0 <= cohort.num_rows / patients <= 3.6
        # 273 attributes + patient_id, visit_id, visit_date + develops flag
        assert len(cohort.column_names) == 277

    def test_visit_ids_unique(self, cohort):
        assert cohort.column("visit_id").n_unique() == cohort.num_rows

    def test_visits_ordered_in_time_per_patient(self, cohort):
        by_patient = {}
        for row in cohort.select(["patient_id", "visit_id", "visit_date"]).iter_rows():
            by_patient.setdefault(row["patient_id"], []).append(
                (row["visit_id"], row["visit_date"])
            )
        for visits in by_patient.values():
            visits.sort()
            dates = [d for __, d in visits]
            assert dates == sorted(dates)

    def test_fbg_consistent_with_diabetes_status(self, cohort):
        diabetic_fbg = [
            row["fbg"]
            for row in cohort.select(["fbg", "diabetes_status"]).iter_rows()
            if row["diabetes_status"] == "yes" and row["fbg"] is not None
        ]
        normal_fbg = [
            row["fbg"]
            for row in cohort.select(["fbg", "diabetes_status"]).iter_rows()
            if row["diabetes_status"] == "no" and row["fbg"] is not None
        ]
        assert sum(diabetic_fbg) / len(diabetic_fbg) > sum(normal_fbg) / len(normal_fbg) + 1.5

    def test_stage_never_regresses(self, cohort):
        rows = cohort.select(
            ["patient_id", "visit_date", "diabetes_status"]
        ).to_rows()
        rows.sort(key=lambda r: (r["patient_id"], r["visit_date"]))
        seen_diabetic = {}
        for row in rows:
            pid = row["patient_id"]
            if seen_diabetic.get(pid):
                assert row["diabetes_status"] == "yes"
            if row["diabetes_status"] == "yes":
                seen_diabetic[pid] = True

    def test_handgrip_missing_for_arthritis(self, cohort):
        rows = cohort.select(
            ["arthritis", "ewing_handgrip_dbp_rise"]
        ).to_rows()
        arthritic = [r for r in rows if r["arthritis"] == "yes"]
        healthy = [r for r in rows if r["arthritis"] == "no"]
        missing_arthritic = sum(
            1 for r in arthritic if r["ewing_handgrip_dbp_rise"] is None
        ) / len(arthritic)
        missing_healthy = sum(
            1 for r in healthy if r["ewing_handgrip_dbp_rise"] is None
        ) / len(healthy)
        assert missing_arthritic > 0.6
        assert missing_arthritic > missing_healthy + 0.3

    def test_can_depresses_ewing_battery(self, cohort):
        rows = cohort.select(["can_status", "ewing_hr_deep_breathing"]).to_rows()
        can = [r["ewing_hr_deep_breathing"] for r in rows if r["can_status"] == "yes"]
        no_can = [r["ewing_hr_deep_breathing"] for r in rows if r["can_status"] == "no"]
        assert sum(can) / len(can) < sum(no_can) / len(no_can) - 4

    def test_missingness_injected(self, cohort):
        null_fractions = [
            cohort.column(name).null_count / cohort.num_rows
            for name in ("crp", "chol_total", "education_level")
        ]
        assert all(0.0 < fraction < 0.1 for fraction in null_fractions)

    def test_bad_patient_count_rejected(self):
        with pytest.raises(ValueError):
            DiScRiGenerator(n_patients=0)
