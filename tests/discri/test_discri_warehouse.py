"""Tests for the Fig 3 warehouse build over the synthetic cohort."""

import pytest

from repro.olap.cube import Cube


class TestBuild:
    def test_fig3_dimensions_present(self, built):
        """The eight dimensions of paper Fig 3 (by our naming)."""
        assert set(built.warehouse.dimension_names) == {
            "personal", "conditions", "bloods", "limbs",
            "exercise", "pressure", "ecg", "cardinality",
        }

    def test_integrity(self, built):
        assert built.warehouse.schema.check_integrity() == []

    def test_etl_audit_covers_table1(self, built):
        audit = "\n".join(str(entry) for entry in built.etl_result.audit)
        for scheme in ("'Age'", "'FBG'", "'DiagnosticHTYears'", "'LyingDBPAverage'"):
            assert scheme in audit

    def test_age_drill_hierarchy(self, built):
        conditions = built.warehouse.schema.dimension("conditions")
        hierarchy = conditions.hierarchies["age_drill"]
        assert hierarchy.levels == ["age_band", "age_band10", "age_band5"]

    def test_fact_count_matches_visits(self, built, cohort):
        assert built.warehouse.schema.fact.num_rows == cohort.num_rows

    def test_transformed_has_bands_and_cardinality(self, built):
        table = built.transformed
        for column in ("age_band", "age_band5", "fbg_band", "ht_years_band",
                       "reflex_knees_ankles", "visit_number", "visit_year"):
            assert column in table


class TestCardinalityDimension:
    def test_distinguishes_patients_from_records(self, built, cohort, cube):
        """Paper §V.B: facts count records; the cardinality dimension counts
        patients."""
        records = cube.grand_total()["records"]
        patients = cube.grand_total(
            {"patients": ("cardinality.patient_id", "nunique")}
        )["patients"]
        assert records == cohort.num_rows
        assert patients == cohort.column("patient_id").n_unique()
        assert patients < records

    def test_visit_number_matches_attendance_order(self, built):
        rows = built.transformed.select(
            ["patient_id", "visit_date", "visit_number"]
        ).to_rows()
        rows.sort(key=lambda r: (r["patient_id"], r["visit_date"]))
        previous = {}
        for row in rows:
            pid = row["patient_id"]
            assert row["visit_number"] == previous.get(pid, 0) + 1
            previous[pid] = row["visit_number"]


class TestCubeOverCohort:
    def test_fbg_band_consistent_with_diabetes_measure(self, cube):
        table = cube.aggregate(["bloods.fbg_band"], {"mean_fbg": ("fbg", "mean")})
        by_band = {row["bloods.fbg_band"]: row["mean_fbg"] for row in table.to_rows()}
        assert by_band["very good"] < by_band["high"] < by_band["preDiabetic"] < by_band["Diabetic"]

    def test_reflex_derivation(self, built):
        for row in built.transformed.head(200).iter_rows():
            knee_absent = "absent" in (
                row["reflex_knee_left"], row["reflex_knee_right"]
            )
            ankle_absent = "absent" in (
                row["reflex_ankle_left"], row["reflex_ankle_right"]
            )
            expected = "absent" if (knee_absent and ankle_absent) else "present"
            assert row["reflex_knees_ankles"] == expected

    def test_ewing_risk_categories(self, built):
        values = set(
            built.transformed.column("ewing_risk").to_list()
        ) - {None}
        assert values <= {"normal", "early", "definite"}
        assert "normal" in values
