"""Disease profiles: the cohort-variant axis of the scenario sweep."""

import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.phenomena import (
    DISEASE_PROFILES,
    PhenomenaConfig,
    profile_config,
)


class TestRegistry:
    def test_registered_names(self):
        assert DISEASE_PROFILES == ("discri", "hypertension", "can_progression")

    def test_unknown_profile_raises_with_roster(self):
        with pytest.raises(ValueError, match="hypertension"):
            profile_config("gout")

    def test_every_profile_validates(self):
        for name in DISEASE_PROFILES:
            profile_config(name)  # validate() runs inside

    def test_default_profile_is_paper_faithful(self):
        assert profile_config("discri") == PhenomenaConfig()


class TestProfileShapes:
    def test_hypertension_profile_shifts_prevalence_long(self):
        default = PhenomenaConfig()
        shifted = profile_config("hypertension")
        assert shifted.ht_base_rate > default.ht_base_rate
        assert shifted.ht_age_slope > default.ht_age_slope
        for mix in shifted.ht_years_mix.values():
            assert mix[">=20"] > 0.1  # long-established diagnoses dominate

    def test_can_progression_profile_accelerates(self):
        default = PhenomenaConfig()
        fast = profile_config("can_progression")
        assert fast.progression_pre_to_diabetic > default.progression_pre_to_diabetic
        for stage, rate in fast.can_rate.items():
            assert rate >= default.can_rate[stage]


class TestGeneratorIntegration:
    def test_unknown_profile_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown disease profile"):
            DiScRiGenerator(n_patients=5, profile="plague")

    def test_default_profile_reproduces_legacy_cohort(self):
        """`profile=\"discri\"` must be byte-identical to the pre-profile
        constructor so existing seeds keep reproducing."""
        legacy = DiScRiGenerator(n_patients=40, seed=7).generate()
        explicit = DiScRiGenerator(n_patients=40, seed=7, profile="discri").generate()
        assert legacy.to_rows() == explicit.to_rows()

    def test_profiles_produce_distinct_cohorts(self):
        base = DiScRiGenerator(n_patients=120, seed=7).generate()
        ht = DiScRiGenerator(n_patients=120, seed=7, profile="hypertension").generate()
        assert base.to_rows() != ht.to_rows()
        # planted prevalence should be visibly higher under the HT profile
        def ht_rate(table):
            rows = table.to_rows()
            hits = sum(1 for r in rows if r["hypertension"] == "yes")
            return hits / len(rows)
        assert ht_rate(ht) > ht_rate(base)

    def test_explicit_config_beats_profile(self):
        config = PhenomenaConfig(ht_base_rate=0.01, ht_age_slope=0.0)
        gen = DiScRiGenerator(
            n_patients=10, seed=7, config=config, profile="hypertension"
        )
        assert gen.config is config
