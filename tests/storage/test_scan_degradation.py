"""Processes→serial scan fallback: counted, warned once, answers intact."""

import warnings

import numpy as np
import pytest

from repro import obs
from repro.storage.columnar import PartitionedStore, PartitioningSpec, StorageConfig
from repro.storage.columnar import executor
from repro.storage.columnar.executor import ScanMode, degraded_count, run_scan
from repro.tabular import Table

WARN_KEY = "storage.scan.procs_degraded"


@pytest.fixture(autouse=True)
def _fresh_warning():
    obs.reset_warn_once(WARN_KEY)
    yield
    obs.reset_warn_once(WARN_KEY)


@pytest.fixture()
def segments():
    rng = np.random.default_rng(11)
    table = Table.from_columns(
        {
            "patient_id": [int(v) for v in rng.integers(1, 9, 64)],
            "visit_year": [int(2006 + v) for v in rng.integers(0, 3, 64)],
        },
        schema={"patient_id": "int", "visit_year": "int"},
    )
    config = StorageConfig(
        partitioning=PartitioningSpec(
            hash_column="patient_id", hash_partitions=2, band_column="visit_year"
        )
    )
    return PartitionedStore.build(table, config).segments


def _rows_of(results):
    return [list(kept) for kept, _cols, _ms in results]


class TestForkUnavailable:
    def test_counts_warns_once_and_matches_serial(self, segments, monkeypatch):
        monkeypatch.setattr(executor, "_fork_available", lambda: False)
        survivors = list(range(len(segments)))
        mode = ScanMode(name="processes", workers=2)
        before = degraded_count()

        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            got = run_scan(segments, survivors, None, mode)
        assert degraded_count() == before + 1

        serial = run_scan(segments, survivors, None, ScanMode(name="serial", workers=1))
        assert _rows_of(got) == _rows_of(serial)

        # the warning is one-shot per process; the counter is not
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_scan(segments, survivors, None, mode)
        assert degraded_count() == before + 2


class TestPoolFailure:
    def test_broken_pool_degrades_with_warning(self, segments, monkeypatch):
        import multiprocessing

        class _BrokenContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no subprocesses for you")

        monkeypatch.setattr(executor, "_fork_available", lambda: True)
        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method: _BrokenContext()
        )
        survivors = list(range(len(segments)))
        before = degraded_count()

        with pytest.warns(RuntimeWarning, match="fork pool failed"):
            got = run_scan(
                segments, survivors, None, ScanMode(name="processes", workers=2)
            )
        assert degraded_count() == before + 1

        serial = run_scan(segments, survivors, None, ScanMode(name="serial", workers=1))
        assert _rows_of(got) == _rows_of(serial)
        # the publish/clear protocol must not leak segments on the failure path
        assert executor._FORK_STATE["segments"] is None
