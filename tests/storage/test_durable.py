"""Tests for the durable file primitives (atomic writes, framing)."""

import datetime as dt
import struct

import pytest

from repro.errors import ChecksumError, InjectedFault
from repro.storage import faults
from repro.storage.durable import (
    FRAME_OVERHEAD,
    atomic_write_bytes,
    atomic_write_json,
    crc32_hex,
    encode_frame,
    json_decode_value,
    json_encode_value,
    scan_frames,
    verify_digest,
)
from repro.storage.faults import FaultPlan, FaultRule

# synthetic atomic-write point used below ("p" fires "p.rename" too)
faults.register_point("p")
faults.register_point("p.rename")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_during_temp_write_preserves_old_file(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"old")
        plan = FaultPlan([FaultRule("p", mode="kill")])
        with faults.injected(plan):
            with pytest.raises(faults.SimulatedCrash):
                atomic_write_bytes(target, b"new", point="p")
        assert target.read_bytes() == b"old"

    def test_kill_before_rename_preserves_old_file(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"old")
        plan = FaultPlan([FaultRule("p.rename", mode="kill")])
        with faults.injected(plan):
            with pytest.raises(faults.SimulatedCrash):
                atomic_write_bytes(target, b"new", point="p")
        # the temp file is complete but the target was never replaced
        assert target.read_bytes() == b"old"
        assert (tmp_path / "f.bin.tmp").read_bytes() == b"new"

    def test_error_fault_is_an_exception_not_a_crash(self, tmp_path):
        target = tmp_path / "f.bin"
        plan = FaultPlan([FaultRule("p", mode="error")])
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                atomic_write_bytes(target, b"x", point="p")
        assert not target.exists()

    def test_json_helper(self, tmp_path):
        target = tmp_path / "f.json"
        atomic_write_json(target, {"a": 1})
        assert target.read_bytes() == b'{"a": 1}'


class TestFraming:
    def _stream(self, payloads, start_seq=1):
        out = b""
        for i, payload in enumerate(payloads):
            out += encode_frame(payload, start_seq + i)
        return out

    def test_round_trip(self):
        data = self._stream([b"alpha", b"", b"gamma"])
        scan = scan_frames(data)
        assert [f.payload for f in scan.frames] == [b"alpha", b"", b"gamma"]
        assert [f.seq for f in scan.frames] == [1, 2, 3]
        assert scan.valid_end == len(data)
        assert not scan.torn and scan.corrupt_at is None

    @pytest.mark.parametrize("cut", range(1, FRAME_OVERHEAD + 5))
    def test_torn_tail_at_every_cut(self, cut):
        data = self._stream([b"alpha", b"beta-beta"])
        cut_data = data[:-cut]
        scan = scan_frames(cut_data)
        assert scan.torn
        assert scan.corrupt_at is None
        # everything before the torn frame survives
        intact = [f.payload for f in scan.frames]
        assert intact in ([b"alpha"], [b"alpha", b"beta-beta"][:1])

    def test_corrupt_final_frame_is_torn_not_corrupt(self):
        data = bytearray(self._stream([b"alpha", b"beta"]))
        data[-2] ^= 0xFF  # damage inside the last frame's payload
        scan = scan_frames(bytes(data))
        assert scan.torn and scan.corrupt_at is None
        assert [f.payload for f in scan.frames] == [b"alpha"]

    def test_corrupt_middle_frame_is_flagged(self):
        frames = [b"alpha", b"beta", b"gamma"]
        data = bytearray(self._stream(frames))
        # flip a byte inside the second frame's payload
        offset = len(encode_frame(b"alpha", 1)) + FRAME_OVERHEAD
        data[offset] ^= 0xFF
        scan = scan_frames(bytes(data))
        assert scan.corrupt_at == len(encode_frame(b"alpha", 1))
        assert [f.payload for f in scan.frames] == [b"alpha"]

    def test_seq_is_checksummed(self):
        data = bytearray(encode_frame(b"x", 7) + encode_frame(b"y", 8))
        # tamper with the first frame's sequence number field
        struct.pack_into("<Q", data, 8, 99)
        scan = scan_frames(bytes(data))
        assert scan.corrupt_at == 0


class TestDigests:
    def test_verify_digest_ok(self, tmp_path):
        target = tmp_path / "d.bin"
        target.write_bytes(b"payload")
        assert verify_digest(target, crc32_hex(b"payload")) == b"payload"

    def test_verify_digest_mismatch(self, tmp_path):
        target = tmp_path / "d.bin"
        target.write_bytes(b"payload!")
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            verify_digest(target, crc32_hex(b"payload"))


class TestJsonValues:
    def test_date_round_trip(self):
        day = dt.date(2013, 4, 8)
        encoded = json_encode_value(day)
        assert encoded == {"__date__": "2013-04-08"}
        assert json_decode_value(encoded) == day

    def test_plain_values_untouched(self):
        for value in (1, 1.5, "2013-04-08", None, True):
            assert json_decode_value(json_encode_value(value)) == value
