"""Tests for the storage engine: DDL, CRUD, transactions, constraints."""

import pytest

from repro.errors import (
    IntegrityError,
    StorageError,
    TableExistsError,
    TableNotFoundError,
    TransactionError,
)
from repro.storage.engine import StorageEngine, replay_into
from repro.storage.wal import WriteAheadLog


@pytest.fixture()
def engine():
    db = StorageEngine()
    db.create_table(
        "patients", {"pid": "int", "sex": "str"}, primary_key="pid"
    )
    db.create_table(
        "visits",
        {"vid": "int", "pid": "int", "fbg": "float"},
        primary_key="vid",
        foreign_keys={"pid": ("patients", "pid")},
    )
    with db.transaction():
        db.insert("patients", {"pid": 1, "sex": "F"})
        db.insert("patients", {"pid": 2, "sex": "M"})
        db.insert("visits", {"vid": 10, "pid": 1, "fbg": 6.2})
    return db


class TestDDL:
    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(TableExistsError):
            engine.create_table("patients", {"x": "int"})

    def test_unknown_table_lists_known(self, engine):
        with pytest.raises(TableNotFoundError, match="patients"):
            engine.scan("nope")

    def test_drop_table(self, engine):
        engine.drop_table("visits")
        assert "visits" not in engine.table_names()

    def test_add_column_reads_null(self, engine):
        engine.add_column("patients", "town", "str")
        assert engine.scan("patients").row(0)["town"] is None

    def test_add_column_bumps_version(self, engine):
        before = engine.catalog.get("patients").version
        engine.add_column("patients", "town", "str")
        assert engine.catalog.get("patients").version == before + 1


class TestCRUD:
    def test_insert_and_scan(self, engine):
        assert engine.row_count("patients") == 2
        assert engine.scan("patients").column("sex").to_list() == ["F", "M"]

    def test_insert_coerces_types(self, engine):
        with engine.transaction():
            engine.insert("visits", {"vid": 11, "pid": 2, "fbg": 5})
        assert engine.get_by_pk("visits", 11)["fbg"] == 5.0

    def test_insert_unknown_column_rejected(self, engine):
        with pytest.raises(StorageError, match="unknown columns"):
            with engine.transaction():
                engine.insert("patients", {"pid": 3, "zzz": 1})

    def test_update(self, engine):
        with engine.transaction():
            engine.update("visits", 0, {"fbg": 7.7})
        assert engine.get_by_pk("visits", 10)["fbg"] == 7.7

    def test_delete(self, engine):
        with engine.transaction():
            engine.delete("visits", 0)
        assert engine.row_count("visits") == 0

    def test_delete_missing_row(self, engine):
        with pytest.raises(StorageError, match="not found"):
            with engine.transaction():
                engine.delete("visits", 99)

    def test_mutation_outside_transaction_rejected(self, engine):
        with pytest.raises(TransactionError):
            engine.insert("patients", {"pid": 9, "sex": "F"})


class TestConstraints:
    def test_pk_duplicate_rejected(self, engine):
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            with engine.transaction():
                engine.insert("patients", {"pid": 1, "sex": "M"})

    def test_pk_null_rejected(self, engine):
        with pytest.raises(IntegrityError, match="not be null"):
            with engine.transaction():
                engine.insert("patients", {"pid": None, "sex": "F"})

    def test_fk_violation_rejected(self, engine):
        with pytest.raises(IntegrityError, match="no match"):
            with engine.transaction():
                engine.insert("visits", {"vid": 12, "pid": 99, "fbg": 5.0})

    def test_fk_null_allowed(self, engine):
        with engine.transaction():
            engine.insert("visits", {"vid": 12, "pid": None, "fbg": 5.0})
        assert engine.row_count("visits") == 2

    def test_not_null_constraint(self):
        db = StorageEngine()
        db.create_table(
            "t", {"a": "int", "b": "str"}, primary_key="a", not_null={"b"}
        )
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.insert("t", {"a": 1, "b": None})


class TestTransactions:
    def test_rollback_restores_all_mutations(self, engine):
        with pytest.raises(IntegrityError):
            with engine.transaction():
                engine.insert("patients", {"pid": 3, "sex": "F"})
                engine.update("patients", 0, {"sex": "X"})
                engine.delete("visits", 0)
                engine.insert("visits", {"vid": 13, "pid": 77, "fbg": 1.0})
        assert engine.row_count("patients") == 2
        assert engine.get_by_pk("patients", 1)["sex"] == "F"
        assert engine.row_count("visits") == 1

    def test_rollback_restores_indexes(self, engine):
        with pytest.raises(IntegrityError):
            with engine.transaction():
                engine.insert("patients", {"pid": 3, "sex": "F"})
                engine.insert("patients", {"pid": 3, "sex": "F"})
        assert engine.get_by_pk("patients", 3) is None
        with engine.transaction():
            engine.insert("patients", {"pid": 3, "sex": "F"})
        assert engine.get_by_pk("patients", 3) is not None

    def test_nested_transaction_rejected(self, engine):
        with pytest.raises(TransactionError):
            with engine.transaction():
                with engine.transaction():
                    pass

    def test_replay_reproduces_state(self, engine):
        with engine.transaction():
            engine.insert("patients", {"pid": 5, "sex": "M"})
        fresh = StorageEngine()
        fresh.create_table("patients", {"pid": "int", "sex": "str"}, primary_key="pid")
        fresh.create_table(
            "visits", {"vid": "int", "pid": "int", "fbg": "float"}, primary_key="vid"
        )
        replay_into(fresh, engine.wal)
        assert fresh.row_count("patients") == engine.row_count("patients")
        assert fresh.scan("visits").equals(engine.scan("visits"))

    def test_rolled_back_mutations_not_replayed(self, engine):
        try:
            with engine.transaction():
                engine.insert("patients", {"pid": 7, "sex": "F"})
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        fresh = StorageEngine()
        fresh.create_table("patients", {"pid": "int", "sex": "str"}, primary_key="pid")
        fresh.create_table(
            "visits", {"vid": "int", "pid": "int", "fbg": "float"}, primary_key="vid"
        )
        replay_into(fresh, engine.wal)
        assert fresh.get_by_pk("patients", 7) is None


class TestLookups:
    def test_get_by_pk(self, engine):
        assert engine.get_by_pk("patients", 2)["sex"] == "M"
        assert engine.get_by_pk("patients", 99) is None

    def test_date_columns_decode_on_read(self):
        import datetime as dt

        db = StorageEngine()
        db.create_table("t", {"k": "int", "when": "date"}, primary_key="k")
        with db.transaction():
            db.insert("t", {"k": 1, "when": dt.date(2013, 4, 8)})
        assert db.get_by_pk("t", 1)["when"] == dt.date(2013, 4, 8)
        assert db.find("t", "when", dt.date(2013, 4, 8))[0]["k"] == 1
        rows = db.find_range(
            "t", "when", low=dt.date(2013, 1, 1), high=dt.date(2014, 1, 1)
        )
        assert rows[0]["when"] == dt.date(2013, 4, 8)
        # scan agrees with the point lookup
        assert db.scan("t").row(0)["when"] == dt.date(2013, 4, 8)

    def test_find_unknown_column(self, engine):
        with pytest.raises(StorageError, match="unknown column"):
            engine.find("patients", "zzz", 1)

    def test_get_by_pk_requires_pk(self):
        db = StorageEngine()
        db.create_table("t", {"a": "int"})
        with pytest.raises(StorageError, match="no primary key"):
            db.get_by_pk("t", 1)

    def test_find_without_index(self, engine):
        assert len(engine.find("patients", "sex", "F")) == 1

    def test_find_with_index(self, engine):
        engine.create_index("patients", "sex")
        assert len(engine.find("patients", "sex", "F")) == 1

    def test_index_maintained_by_mutations(self, engine):
        engine.create_index("visits", "pid")
        with engine.transaction():
            engine.insert("visits", {"vid": 20, "pid": 1, "fbg": 5.5})
            engine.update("visits", 0, {"pid": 2})
        assert {r["vid"] for r in engine.find("visits", "pid", 1)} == {20}
        assert {r["vid"] for r in engine.find("visits", "pid", 2)} == {10}

    def test_find_range_sorted_index(self, engine):
        engine.create_index("visits", "fbg", kind="sorted")
        with engine.transaction():
            engine.insert("visits", {"vid": 21, "pid": 1, "fbg": 8.0})
            engine.insert("visits", {"vid": 22, "pid": 1, "fbg": 4.0})
        rows = engine.find_range("visits", "fbg", low=5.0, high=7.0)
        assert [r["vid"] for r in rows] == [10]

    def test_find_range_without_index_falls_back(self, engine):
        rows = engine.find_range("visits", "fbg", low=6.0)
        assert len(rows) == 1

    def test_duplicate_index_rejected(self, engine):
        engine.create_index("patients", "sex")
        with pytest.raises(StorageError, match="already exists"):
            engine.create_index("patients", "sex")

    def test_index_unknown_column(self, engine):
        with pytest.raises(StorageError, match="unknown column"):
            engine.create_index("patients", "zzz")
