"""Storage-suite fixtures."""

import pytest

from repro.tabular import SCALAR_KERNELS_ENV


@pytest.fixture(params=["vector", "scalar"])
def kernel_mode(request, monkeypatch):
    """Run a test under both kernel paths (vectorised and scalar oracle)."""
    if request.param == "scalar":
        monkeypatch.setenv(SCALAR_KERNELS_ENV, "1")
    else:
        monkeypatch.delenv(SCALAR_KERNELS_ENV, raising=False)
    return request.param
