"""Property suite: partition pruning ≡ full scan, encodings round-trip.

Two invariants the partitioned store must never violate, searched with
hypothesis:

* a pruned, partition-fanned scan is **byte-identical** to filtering the
  flat view — for random tables and random predicate trees, on both
  kernel paths (vectorised and scalar oracle);
* every encoding decodes back to the exact bytes it was given —
  including nulls, empty columns, and date payloads.
"""

import datetime as dt
import os
from contextlib import contextmanager

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.storage.columnar import PartitionedStore, PartitioningSpec, StorageConfig
from repro.storage.columnar.encodings import encode_column
from repro.tabular import SCALAR_KERNELS_ENV, Table, col
from repro.tabular.column import Column


@contextmanager
def scalar_kernels():
    previous = os.environ.get(SCALAR_KERNELS_ENV)
    os.environ[SCALAR_KERNELS_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SCALAR_KERNELS_ENV, None)
        else:
            os.environ[SCALAR_KERNELS_ENV] = previous


def columns_byte_equal(a: Column, b: Column) -> bool:
    if a.dtype is not b.dtype or a.valid.tobytes() != b.valid.tobytes():
        return False
    if a.dtype.value == "str":
        return a.to_list() == b.to_list()
    return a.data.tobytes() == b.data.tobytes()


def tables_byte_equal(a: Table, b: Table) -> bool:
    return a.column_names == b.column_names and all(
        columns_byte_equal(a.column(n), b.column(n)) for n in a.column_names
    )


# ---------------------------------------------------------------- tables

maybe_int = st.one_of(st.none(), st.integers(-50, 50))
maybe_float = st.one_of(
    st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)
)
maybe_str = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd", ""]))
years = st.one_of(st.none(), st.integers(2005, 2012))


@st.composite
def cohort_tables(draw):
    n = draw(st.integers(1, 40))

    def column(values):
        return draw(st.lists(values, min_size=n, max_size=n))

    return Table.from_columns(
        {
            "patient_id": column(st.integers(1, 12)),
            "visit_year": column(years),
            "gender": column(maybe_str),
            "hba1c": column(maybe_float),
        },
        schema={
            "patient_id": "int",
            "visit_year": "int",
            "gender": "str",
            "hba1c": "float",
        },
    )


# ------------------------------------------------------------ predicates


@st.composite
def predicates(draw, depth=2):
    kind = draw(
        st.sampled_from(
            ["cmp_year", "cmp_float", "eq_str", "isin", "is_null"]
            + (["and", "or", "not"] if depth > 0 else [])
        )
    )
    if kind == "cmp_year":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=="]))
        value = draw(st.integers(2004, 2013))
        c = col("visit_year")
        return {
            "<": c < value,
            "<=": c <= value,
            ">": c > value,
            ">=": c >= value,
            "==": c == value,
        }[op]
    if kind == "cmp_float":
        value = draw(st.floats(-5, 15, allow_nan=False))
        return col("hba1c") > value if draw(st.booleans()) else col("hba1c") <= value
    if kind == "eq_str":
        return col("gender") == draw(st.sampled_from(["a", "b", "c", "zz", ""]))
    if kind == "isin":
        return col("patient_id").isin(
            draw(st.lists(st.integers(0, 13), min_size=0, max_size=4))
        )
    if kind == "is_null":
        name = draw(st.sampled_from(["visit_year", "hba1c", "gender"]))
        return col(name).is_null()
    left = draw(predicates(depth=depth - 1))
    if kind == "not":
        return ~left
    right = draw(predicates(depth=depth - 1))
    return (left & right) if kind == "and" else (left | right)


CONFIG = StorageConfig(
    partitioning=PartitioningSpec(
        hash_column="patient_id", hash_partitions=3, band_column="visit_year"
    )
)


@given(cohort_tables(), predicates())
@settings(max_examples=60, deadline=None)
def test_pruned_scan_byte_equals_full_scan(table, predicate):
    store = PartitionedStore.build(table, CONFIG)
    expected = table.filter(predicate)
    got, stats = store.scan_filter(predicate)
    assert tables_byte_equal(got, expected), predicate.describe()
    assert stats.segments_scanned + stats.segments_pruned == stats.segments_total


@given(cohort_tables(), predicates())
@settings(max_examples=30, deadline=None)
def test_pruned_scan_byte_equals_full_scan_scalar_kernels(table, predicate):
    store = PartitionedStore.build(table, CONFIG)
    with scalar_kernels():
        expected = table.filter(predicate)
        got, _ = store.scan_filter(predicate)
    assert tables_byte_equal(got, expected), predicate.describe()


@given(cohort_tables(), predicates())
@settings(max_examples=30, deadline=None)
def test_unpartitioned_store_still_exact(table, predicate):
    # partitioning=None → one segment per build; pruning degenerates but
    # the scan contract (byte parity, stats bookkeeping) must hold
    store = PartitionedStore.build(table, StorageConfig(partitioning=None))
    got, stats = store.scan_filter(predicate)
    assert tables_byte_equal(got, table.filter(predicate))
    assert stats.segments_total == len(store.segments)


# ---------------------------------------------------------- round trips

encoding_names = st.sampled_from(["auto", "plain", "dict", "rle"])


@given(st.lists(maybe_int, max_size=60), encoding_names)
@settings(max_examples=60, deadline=None)
def test_int_encoding_round_trip(values, encoding):
    column = Column.from_values(values, dtype="int")
    assert columns_byte_equal(column, encode_column(column, encoding).decode())


@given(st.lists(maybe_float, max_size=60), st.sampled_from(["auto", "plain", "rle"]))
@settings(max_examples=60, deadline=None)
def test_float_encoding_round_trip(values, encoding):
    column = Column.from_values(values, dtype="float")
    assert columns_byte_equal(column, encode_column(column, encoding).decode())


@given(st.lists(maybe_str, max_size=60), encoding_names)
@settings(max_examples=60, deadline=None)
def test_str_encoding_round_trip(values, encoding):
    column = Column.from_values(values, dtype="str")
    assert columns_byte_equal(column, encode_column(column, encoding).decode())


@given(
    st.lists(
        st.one_of(st.none(), st.dates(dt.date(2000, 1, 1), dt.date(2020, 12, 31))),
        max_size=60,
    ),
    encoding_names,
)
@settings(max_examples=60, deadline=None)
def test_date_encoding_round_trip(values, encoding):
    column = Column.from_values(values, dtype="date")
    decoded = encode_column(column, encoding).decode()
    assert columns_byte_equal(column, decoded)
    assert decoded.to_list() == values


@given(st.lists(st.one_of(st.none(), st.booleans()), max_size=60), encoding_names)
@settings(max_examples=40, deadline=None)
def test_bool_encoding_round_trip(values, encoding):
    column = Column.from_values(values, dtype="bool")
    assert columns_byte_equal(column, encode_column(column, encoding).decode())
