"""Partitioned store: pruning, parity, append/compact, executors."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import SchemaMismatchError
from repro.storage.columnar import (
    PartitionedStore,
    PartitioningSpec,
    StorageConfig,
    ZoneMap,
)
from repro.tabular import Table, col


def make_table(n=200, seed=11, year_base=2005):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        {
            "patient_id": [int(v) for v in rng.integers(1, 40, n)],
            "visit_year": [int(year_base + v) for v in rng.integers(0, 6, n)],
            "gender": [["F", "M"][int(v)] for v in rng.integers(0, 2, n)],
            "hba1c": [
                None if rng.random() < 0.1 else float(round(4 + 8 * rng.random(), 2))
                for _ in range(n)
            ],
            "visit_date": [
                dt.date(int(year_base + rng.integers(0, 6)), 1 + int(rng.integers(0, 12)), 1)
                for _ in range(n)
            ],
        },
        schema={
            "patient_id": "int",
            "visit_year": "int",
            "gender": "str",
            "hba1c": "float",
            "visit_date": "date",
        },
    )


SPEC = PartitioningSpec(
    hash_column="patient_id", hash_partitions=4, band_column="visit_year"
)
CONFIG = StorageConfig(partitioning=SPEC)

PREDICATES = [
    col("visit_year") >= 2008,
    (col("visit_year") == 2006) & (col("gender") == "F"),
    col("hba1c").is_null(),
    (col("hba1c") > 9.0) | (col("visit_year") < 2006),
    col("patient_id").isin([3, 7, 11]),
    ~(col("gender") == "M"),
]


def assert_tables_byte_equal(a: Table, b: Table):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        assert ca.dtype is cb.dtype
        assert ca.valid.tobytes() == cb.valid.tobytes()
        if ca.dtype.value == "str":
            assert ca.to_list() == cb.to_list()
        else:
            assert ca.data.tobytes() == cb.data.tobytes()


@pytest.fixture(scope="module")
def store():
    return PartitionedStore.build(make_table(), CONFIG)


class TestBuild:
    def test_round_trip_to_table(self, store):
        assert_tables_byte_equal(store.to_table(), make_table())

    def test_segments_cover_all_rows_once(self, store):
        index = np.concatenate([s.row_index for s in store.segments])
        assert sorted(index.tolist()) == list(range(make_table().num_rows))

    def test_partition_keys_are_band_bucket(self, store):
        for segment in store.segments:
            band, bucket = segment.key
            assert 0 <= bucket < SPEC.hash_partitions
            years = [
                y
                for y in segment.table().column("visit_year").to_list()
                if y is not None
            ]
            assert all(y == band for y in years)

    def test_encoded_smaller_than_decoded(self, store):
        assert store.nbytes < store.decoded_nbytes()


class TestScanParity:
    @pytest.mark.parametrize("predicate", PREDICATES, ids=[p.describe() for p in PREDICATES])
    def test_pruned_scan_byte_equals_flat_filter(self, store, predicate, kernel_mode):
        flat = make_table()
        expected = flat.filter(predicate)
        got, stats = store.scan_filter(predicate)
        assert_tables_byte_equal(got, expected)
        assert stats.segments_scanned + stats.segments_pruned == stats.segments_total

    def test_none_predicate_scans_everything(self, store):
        table, stats = store.scan_filter(None)
        assert_tables_byte_equal(table, make_table())
        assert stats.segments_pruned == 0

    def test_band_predicate_prunes(self, store):
        _, stats = store.scan_filter(col("visit_year") == 2006)
        assert stats.segments_pruned > 0
        assert stats.rows_scanned < make_table().num_rows

    def test_stats_contract_fields(self, store):
        _, stats = store.scan_filter(col("visit_year") >= 2008)
        payload = stats.to_dict()
        for key in ("partitions_scanned", "partitions_pruned", "segments_total"):
            assert key in payload
        assert payload["partitions"], "expected per-partition detail"
        entry = payload["partitions"][0]
        for key in ("segment_id", "band", "bucket", "est_rows", "actual_rows", "ms"):
            assert key in entry

    def test_scan_iterator_yields_only_survivors(self, store):
        predicate = col("visit_year") == 2007
        chunks = list(store.scan(predicate))
        assert 0 < len(chunks) < len(store.segments)
        total = sum(segment.num_rows for segment, _ in chunks)
        assert total < make_table().num_rows


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_executor_parity(self, store, executor):
        predicate = (col("visit_year") >= 2006) & (col("gender") == "F")
        expected = make_table().filter(predicate)
        got, stats = store.scan_filter(predicate, executor=executor)
        assert_tables_byte_equal(got, expected)
        assert stats.executor == executor

    def test_process_executor_parity(self, store):
        predicate = col("hba1c") > 8.0
        expected = make_table().filter(predicate)
        got, stats = store.scan_filter(predicate, executor="processes", procs=2)
        assert_tables_byte_equal(got, expected)
        # forked pool when the platform has fork; degraded serial otherwise
        assert stats.executor in ("processes", "serial")

    def test_env_opt_in(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_PROCS", "2")
        got, stats = store.scan_filter(col("visit_year") >= 2008)
        assert_tables_byte_equal(got, make_table().filter(col("visit_year") >= 2008))
        assert stats.executor in ("processes", "serial")


class TestAppendCompact:
    def test_append_then_scan_matches_concat(self, store):
        delta = make_table(n=60, seed=99)
        appended = store.append(delta)
        combined = Table.concat_all([make_table(), delta])
        assert_tables_byte_equal(appended.to_table(), combined)
        # original store untouched (immutability)
        assert store.num_rows == make_table().num_rows
        assert appended.generation == store.generation + 1

    def test_append_shares_existing_segments(self, store):
        appended = store.append(make_table(n=30, seed=5))
        shared = set(id(s) for s in store.segments) & set(
            id(s) for s in appended.segments
        )
        assert len(shared) == len(store.segments)

    def test_append_schema_drift_rejected(self, store):
        bad = Table.from_columns({"x": [1, 2]}, schema={"x": "int"})
        with pytest.raises(SchemaMismatchError):
            store.append(bad)

    def test_append_empty_delta_is_identity(self, store):
        empty = make_table().filter(col("visit_year") > 9999)
        appended = store.append(empty)
        assert appended.num_rows == store.num_rows

    def test_compact_merges_and_preserves_bytes(self, store):
        appended = store.append(make_table(n=60, seed=99))
        compacted = appended.compact()
        assert compacted.partition_count() <= appended.partition_count()
        assert len(compacted.segments) <= len(appended.segments)
        assert_tables_byte_equal(compacted.to_table(), appended.to_table())

    def test_compact_preserves_pruned_answers(self, store):
        appended = store.append(make_table(n=60, seed=99))
        compacted = appended.compact()
        for predicate in PREDICATES:
            a, _ = appended.scan_filter(predicate)
            c, _ = compacted.scan_filter(predicate)
            assert_tables_byte_equal(a, c)


class TestZoneMaps:
    def test_empty_table_never_matches(self):
        empty = make_table().filter(col("visit_year") > 9999)
        zones = ZoneMap.from_table(empty)
        assert not zones.may_match(col("visit_year") == 2006)

    def test_range_pruning_is_conservative(self, store):
        # zone says maybe → scanning must find every actual match; zone
        # says no → flat filter of that segment must be empty
        predicate = col("hba1c") > 11.5
        for segment in store.segments:
            table = segment.table()
            actual = table.filter(predicate).num_rows
            if not segment.zones.may_match(predicate):
                assert actual == 0

    def test_unknown_expression_shape_never_prunes(self, store):
        # NOT is conservative: never pruned even when provably empty
        predicate = ~(col("visit_year") >= 1900)
        _, stats = store.scan_filter(predicate)
        assert stats.segments_pruned == 0
