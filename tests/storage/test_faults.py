"""Tests for the fault-injection layer itself."""

import pytest

from repro.errors import InjectedFault, StorageError
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash, plan_from_env

# synthetic points used throughout this module (arm-time validation would
# otherwise reject them as typos)
for _point in ("p", "q", "x", "other"):
    faults.register_point(_point)


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


class TestModes:
    def test_error_fires_on_nth_hit_only(self):
        plan = faults.install(FaultPlan([FaultRule("p", mode="error", nth=3)]))
        assert faults.before_write("p", b"a") == b"a"
        assert faults.before_write("p", b"b") == b"b"
        with pytest.raises(InjectedFault):
            faults.before_write("p", b"c")
        # after the nth hit the point behaves normally again
        assert faults.before_write("p", b"d") == b"d"
        assert plan.hits("p") == 4

    def test_kill_raises_simulated_crash(self):
        faults.install(FaultPlan([FaultRule("p", mode="kill")]))
        with pytest.raises(SimulatedCrash) as info:
            faults.before_write("p", b"data")
        assert info.value.point == "p"

    def test_kill_is_not_an_ordinary_exception(self):
        faults.install(FaultPlan([FaultRule("p", mode="kill")]))
        with pytest.raises(SimulatedCrash):
            try:
                faults.before_write("p", b"data")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must escape `except Exception`")

    def test_short_truncates_then_crashes(self):
        faults.install(FaultPlan([FaultRule("p", mode="short", keep_fraction=0.5)]))
        data = faults.before_write("p", b"0123456789")
        assert data == b"01234"
        with pytest.raises(SimulatedCrash):
            faults.after_write("p")
        # the pending crash is delivered exactly once
        faults.after_write("p")

    def test_flip_corrupts_silently(self):
        faults.install(FaultPlan([FaultRule("p", mode="flip")]))
        data = faults.before_write("p", b"\x00\x00\x00\x00")
        assert data != b"\x00\x00\x00\x00"
        assert len(data) == 4
        faults.after_write("p")  # no crash

    def test_unmatched_points_pass_through(self):
        faults.install(FaultPlan([FaultRule("other", mode="kill")]))
        assert faults.before_write("p", b"x") == b"x"

    def test_no_plan_is_a_noop(self):
        assert faults.before_write("anything", b"x") == b"x"
        faults.after_write("anything")
        faults.fire("anything")

    def test_injected_context_manager_disarms(self):
        with faults.injected([FaultRule("p", mode="error")]):
            assert faults.active() is not None
        assert faults.active() is None

    def test_bad_mode_rejected(self):
        with pytest.raises(StorageError, match="unknown fault mode"):
            FaultRule("p", mode="explode")

    def test_bad_nth_rejected(self):
        with pytest.raises(StorageError, match="nth"):
            FaultRule("p", nth=-1)

    def test_nth_zero_fires_on_every_hit(self):
        rule = FaultRule("p", nth=0)
        assert all(rule.matches("p", count) for count in (1, 2, 7))

    def test_every_hit_parses_from_env(self):
        plan = plan_from_env("p:error@0,q:slow@*")
        assert plan.rules == [
            FaultRule("p", mode="error", nth=0),
            FaultRule("q", mode="slow", nth=0),
        ]


class TestEnvParsing:
    def test_empty_is_none(self):
        assert plan_from_env("") is None
        assert plan_from_env("   ") is None

    def test_single_rule_defaults(self):
        plan = plan_from_env("wal.commit")
        assert plan.rules == [FaultRule("wal.commit", mode="error", nth=1)]

    def test_full_grammar(self):
        plan = plan_from_env("wal.commit:kill@2, snapshot.manifest:short ;p:flip@5")
        assert plan.rules == [
            FaultRule("wal.commit", mode="kill", nth=2),
            FaultRule("snapshot.manifest", mode="short", nth=1),
            FaultRule("p", mode="flip", nth=5),
        ]

    def test_bad_nth_rejected(self):
        with pytest.raises(StorageError, match="occurrence"):
            plan_from_env("p:kill@soon")

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "x:error@7")
        plan = plan_from_env()
        assert plan.rules == [FaultRule("x", mode="error", nth=7)]


class TestIngestFaultModes:
    def test_transient_raises_typed_error(self):
        from repro.errors import TransientIngestError

        faults.install(FaultPlan([FaultRule("p", mode="transient")]))
        with pytest.raises(TransientIngestError, match="transient"):
            faults.fire("p")
        faults.fire("p")  # only the nth hit fires

    def test_permanent_raises_typed_error(self):
        from repro.errors import PermanentIngestError

        faults.install(FaultPlan([FaultRule("p", mode="permanent")]))
        with pytest.raises(PermanentIngestError, match="permanent"):
            faults.fire("p")

    def test_env_grammar_accepts_new_modes(self):
        plan = plan_from_env("ingest.oltp:transient@2,ingest.lattice:permanent")
        assert plan.rules == [
            FaultRule("ingest.oltp", mode="transient", nth=2),
            FaultRule("ingest.lattice", mode="permanent", nth=1),
        ]


class TestArmTimeValidation:
    def test_install_rejects_unknown_point(self):
        plan = FaultPlan([FaultRule("wal.comit", mode="kill")])  # typo'd
        with pytest.raises(StorageError, match="unknown fault point"):
            faults.install(plan)
        # nothing was armed: a subsequent fire is a no-op
        faults.fire("wal.commit")

    def test_plan_from_env_rejects_unknown_point(self):
        with pytest.raises(StorageError, match="unknown fault point"):
            plan_from_env("storage.compactoin:kill@1")

    def test_error_names_the_offender_and_the_remedy(self):
        with pytest.raises(StorageError) as info:
            faults.validate_points(["definitely.not.a.point"])
        message = str(info.value)
        assert "definitely.not.a.point" in message
        assert "register_point" in message

    def test_register_point_legalises_a_new_boundary(self):
        name = faults.register_point("test.custom.boundary")
        assert name in faults.known_points()
        faults.install(FaultPlan([FaultRule(name, mode="error", nth=1)]))
        with pytest.raises(InjectedFault):
            faults.fire(name)

    def test_register_point_rejects_empty(self):
        with pytest.raises(StorageError, match="empty"):
            faults.register_point("   ")

    def test_known_points_cover_rename_halves(self):
        points = faults.known_points()
        assert "wal.commit" in points
        assert "storage.compaction.manifest" in points
        assert "storage.compaction.manifest.rename" in points
