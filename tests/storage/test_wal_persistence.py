"""Tests for the write-ahead log and snapshots (incl. failure injection)."""

import datetime as dt
import json

import pytest

from repro.errors import StorageError, WALCorruptionError
from repro.storage.engine import StorageEngine, replay_into
from repro.storage.persistence import load_snapshot, save_snapshot
from repro.storage.wal import HEADER_SIZE, LogEntry, WriteAheadLog


class TestWAL:
    def test_commit_marks_entries(self):
        wal = WriteAheadLog()
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        assert list(wal.committed_entries()) == []
        wal.commit(txn)
        assert len(list(wal.committed_entries())) == 1

    def test_rollback_discards(self):
        wal = WriteAheadLog()
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.rollback(txn)
        assert len(wal) == 0

    def test_unknown_op_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(StorageError):
            wal.append(1, "upsert", "t", {})

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1, "when": "2013-04-08"})
        wal.commit(txn)
        loaded = WriteAheadLog.load(path)
        entries = list(loaded.committed_entries())
        assert entries[0].payload["a"] == 1
        assert loaded.begin() == txn + 1

    def test_truncate(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.commit(txn)
        wal.truncate()
        assert len(WriteAheadLog.load(path)) == 0

    def test_truncate_preserves_sequence_numbers(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.commit(txn)
        watermark = wal.last_seq
        wal.truncate()
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 2})
        wal.commit(txn)
        loaded = WriteAheadLog.load(path)
        entries = list(loaded.committed_entries())
        # records written after a checkpoint always sort after it
        assert [e.seq > watermark for e in entries] == [True]

    def test_dates_round_trip_as_dates(self, tmp_path):
        """Regression: ``default=str`` used to replay dates as strings."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        day = dt.date(2013, 4, 8)
        wal.append(txn, "insert", "t", {"vid": 1, "when": day, "note": "x"})
        wal.commit(txn)
        loaded = WriteAheadLog.load(path)
        payload = next(loaded.committed_entries()).payload
        assert payload["when"] == day
        assert isinstance(payload["when"], dt.date)
        assert payload["note"] == "x"

    def test_replayed_dates_match_engine_state(self, tmp_path):
        """End to end: a replayed date column equals the original rows."""
        wal_path = tmp_path / "wal.log"
        db = StorageEngine(WriteAheadLog(wal_path))
        db.create_table("v", {"vid": "int", "when": "date"}, primary_key="vid")
        with db.transaction():
            db.insert("v", {"vid": 1, "when": dt.date(2010, 3, 1)})
        db.wal.close()
        recovered = StorageEngine()
        recovered.create_table(
            "v", {"vid": "int", "when": "date"}, primary_key="vid"
        )
        replay_into(recovered, WriteAheadLog.load(wal_path))
        assert recovered.scan("v").to_rows() == db.scan("v").to_rows()
        assert recovered.get_by_pk("v", 1)["when"] == dt.date(2010, 3, 1)

    def test_torn_tail_is_truncated_in_place(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for value in (1, 2):
            txn = wal.begin()
            wal.append(txn, "insert", "t", {"a": value})
            wal.commit(txn)
        wal.close()
        intact = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x99\x07torn")
        loaded = WriteAheadLog.load(path)
        assert len(list(loaded.committed_entries())) == 2
        # the repair is physical: the file shrinks back to the valid prefix
        assert path.stat().st_size == intact

    def test_mid_log_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for value in (1, 2):
            txn = wal.begin()
            wal.append(txn, "insert", "t", {"a": value})
            wal.commit(txn)
        wal.close()
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE + 20] ^= 0xFF  # inside the first record
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError, match="refusing"):
            WriteAheadLog.load(path)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"\x00not a wal at all")
        with pytest.raises(WALCorruptionError, match="magic"):
            WriteAheadLog.load(path)

    def test_uncommitted_disk_entries_are_ignored_on_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.commit(txn)
        orphan = wal.begin()
        wal.append(orphan, "insert", "t", {"a": 2})  # never committed
        wal.close()
        loaded = WriteAheadLog.load(path)
        assert [e.payload["a"] for e in loaded.committed_entries()] == [1]
        assert len(loaded) == 2  # the orphan is visible, just not committed


class TestLegacyWALFormat:
    """Version-1 logs (JSON lines) load and upgrade transparently."""

    def _write_v1(self, path, entries):
        lines = [
            json.dumps(
                {
                    "txn": txn,
                    "op": op,
                    "table": table,
                    "payload": payload,
                    "committed": committed,
                },
                default=str,
            )
            for txn, op, table, payload, committed in entries
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_v1_log_loads(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_v1(
            path,
            [
                (1, "insert", "t", {"a": 1, "when": "2013-04-08"}, True),
                (2, "insert", "t", {"a": 2}, False),
            ],
        )
        wal = WriteAheadLog.load(path)
        committed = list(wal.committed_entries())
        assert len(committed) == 1 and committed[0].payload["a"] == 1
        assert len(wal) == 2
        assert wal.begin() == 3

    def test_v1_log_is_upgraded_in_place(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_v1(path, [(1, "insert", "t", {"a": 1}, True)])
        WriteAheadLog.load(path)
        # the file is now in the framed format and loads through it
        assert path.read_bytes().startswith(b"RWAL2")
        again = WriteAheadLog.load(path)
        assert [e.payload["a"] for e in again.committed_entries()] == [1]

    def test_v1_stringified_dates_still_replay_into_date_columns(self, tmp_path):
        """The historical lossy encoding coerces back through the schema."""
        path = tmp_path / "wal.log"
        self._write_v1(
            path, [(1, "insert", "v", {"vid": 1, "when": "2010-03-01"}, True)]
        )
        engine = StorageEngine()
        engine.create_table(
            "v", {"vid": "int", "when": "date"}, primary_key="vid"
        )
        replay_into(engine, WriteAheadLog.load(path))
        assert engine.get_by_pk("v", 1)["when"] == dt.date(2010, 3, 1)

    def test_appending_after_upgrade_continues_the_log(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_v1(path, [(1, "insert", "t", {"a": 1}, True)])
        wal = WriteAheadLog.load(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 2})
        wal.commit(txn)
        wal.close()
        loaded = WriteAheadLog.load(path)
        assert [e.payload["a"] for e in loaded.committed_entries()] == [1, 2]


@pytest.fixture()
def populated():
    db = StorageEngine()
    db.create_table(
        "visits",
        {"vid": "int", "pid": "int", "fbg": "float", "when": "date"},
        primary_key="vid",
    )
    db.create_index("visits", "pid")
    with db.transaction():
        db.insert("visits", {"vid": 1, "pid": 7, "fbg": 6.1, "when": dt.date(2010, 3, 1)})
        db.insert("visits", {"vid": 2, "pid": 7, "fbg": None, "when": dt.date(2011, 3, 1)})
    return db


class TestSnapshots:
    def test_round_trip_values_and_dates(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.scan("visits").equals(populated.scan("visits"))

    def test_indexes_rebuilt(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert len(loaded.find("visits", "pid", 7)) == 2

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no snapshot"):
            load_snapshot(tmp_path / "absent")

    def test_schema_metadata_preserved(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.catalog.get("visits").primary_key == "vid"


class TestCrashRecovery:
    def test_snapshot_plus_wal_replay(self, tmp_path):
        """Simulated crash: snapshot at T0, WAL through T1, process dies.

        Recovery = load snapshot schema, replay the full WAL onto empty
        tables; the result matches the pre-crash state.
        """
        wal_path = tmp_path / "wal.log"
        db = StorageEngine(WriteAheadLog(wal_path))
        db.create_table("t", {"a": "int", "b": "str"}, primary_key="a")
        with db.transaction():
            db.insert("t", {"a": 1, "b": "x"})
        with db.transaction():
            db.insert("t", {"a": 2, "b": "y"})
            db.update("t", 0, {"b": "x2"})
        # uncommitted work lost in the crash
        try:
            with db.transaction():
                db.insert("t", {"a": 3, "b": "z"})
                raise RuntimeError("power loss mid-transaction")
        except RuntimeError:
            pass
        pre_crash = db.scan("t").to_rows()

        recovered = StorageEngine()
        recovered.create_table("t", {"a": "int", "b": "str"}, primary_key="a")
        replay_into(recovered, WriteAheadLog.load(wal_path))
        assert recovered.scan("t").to_rows() == pre_crash
        assert recovered.get_by_pk("t", 3) is None
