"""Tests for the write-ahead log and snapshots (incl. failure injection)."""

import datetime as dt

import pytest

from repro.errors import StorageError
from repro.storage.engine import StorageEngine, replay_into
from repro.storage.persistence import load_snapshot, save_snapshot
from repro.storage.wal import WriteAheadLog


class TestWAL:
    def test_commit_marks_entries(self):
        wal = WriteAheadLog()
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        assert list(wal.committed_entries()) == []
        wal.commit(txn)
        assert len(list(wal.committed_entries())) == 1

    def test_rollback_discards(self):
        wal = WriteAheadLog()
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.rollback(txn)
        assert len(wal) == 0

    def test_unknown_op_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(StorageError):
            wal.append(1, "upsert", "t", {})

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1, "when": "2013-04-08"})
        wal.commit(txn)
        loaded = WriteAheadLog.load(path)
        entries = list(loaded.committed_entries())
        assert entries[0].payload["a"] == 1
        assert loaded.begin() == txn + 1

    def test_truncate(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.append(txn, "insert", "t", {"a": 1})
        wal.commit(txn)
        wal.truncate()
        assert len(WriteAheadLog.load(path)) == 0


@pytest.fixture()
def populated():
    db = StorageEngine()
    db.create_table(
        "visits",
        {"vid": "int", "pid": "int", "fbg": "float", "when": "date"},
        primary_key="vid",
    )
    db.create_index("visits", "pid")
    with db.transaction():
        db.insert("visits", {"vid": 1, "pid": 7, "fbg": 6.1, "when": dt.date(2010, 3, 1)})
        db.insert("visits", {"vid": 2, "pid": 7, "fbg": None, "when": dt.date(2011, 3, 1)})
    return db


class TestSnapshots:
    def test_round_trip_values_and_dates(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.scan("visits").equals(populated.scan("visits"))

    def test_indexes_rebuilt(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert len(loaded.find("visits", "pid", 7)) == 2

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no snapshot"):
            load_snapshot(tmp_path / "absent")

    def test_schema_metadata_preserved(self, populated, tmp_path):
        save_snapshot(populated, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.catalog.get("visits").primary_key == "vid"


class TestCrashRecovery:
    def test_snapshot_plus_wal_replay(self, tmp_path):
        """Simulated crash: snapshot at T0, WAL through T1, process dies.

        Recovery = load snapshot schema, replay the full WAL onto empty
        tables; the result matches the pre-crash state.
        """
        wal_path = tmp_path / "wal.log"
        db = StorageEngine(WriteAheadLog(wal_path))
        db.create_table("t", {"a": "int", "b": "str"}, primary_key="a")
        with db.transaction():
            db.insert("t", {"a": 1, "b": "x"})
        with db.transaction():
            db.insert("t", {"a": 2, "b": "y"})
            db.update("t", 0, {"b": "x2"})
        # uncommitted work lost in the crash
        try:
            with db.transaction():
                db.insert("t", {"a": 3, "b": "z"})
                raise RuntimeError("power loss mid-transaction")
        except RuntimeError:
            pass
        pre_crash = db.scan("t").to_rows()

        recovered = StorageEngine()
        recovered.create_table("t", {"a": "int", "b": "str"}, primary_key="a")
        replay_into(recovered, WriteAheadLog.load(wal_path))
        assert recovered.scan("t").to_rows() == pre_crash
        assert recovered.get_by_pk("t", 3) is None
