"""Tests for the system catalog."""

import pytest

from repro.errors import StorageError, TableExistsError, TableNotFoundError
from repro.storage.catalog import Catalog
from repro.tabular.dtypes import DType


@pytest.fixture()
def cat():
    c = Catalog()
    c.create("patients", {"pid": "int", "sex": "str"}, primary_key="pid")
    return c


def test_create_coerces_dtypes(cat):
    assert cat.get("patients").schema["pid"] is DType.INT


def test_duplicate_rejected(cat):
    with pytest.raises(TableExistsError):
        cat.create("patients", {"x": "int"})


def test_missing_lists_known(cat):
    with pytest.raises(TableNotFoundError, match="patients"):
        cat.get("ghost")


def test_empty_schema_rejected(cat):
    with pytest.raises(StorageError, match="no columns"):
        cat.create("t", {})


def test_pk_must_be_a_column(cat):
    with pytest.raises(StorageError, match="primary key"):
        cat.create("t", {"a": "int"}, primary_key="b")


def test_not_null_must_be_columns(cat):
    with pytest.raises(StorageError, match="not-null"):
        cat.create("t", {"a": "int"}, not_null={"b"})


def test_fk_must_reference_known_column(cat):
    with pytest.raises(StorageError, match="unknown column"):
        cat.create(
            "visits", {"vid": "int", "pid": "int"},
            foreign_keys={"pid": ("patients", "zzz")},
        )


def test_fk_local_column_checked(cat):
    with pytest.raises(StorageError, match="foreign key column"):
        cat.create(
            "visits", {"vid": "int"},
            foreign_keys={"pid": ("patients", "pid")},
        )


def test_drop(cat):
    cat.drop("patients")
    assert cat.names() == []


def test_add_column_versioning(cat):
    meta = cat.add_column("patients", "town", "str")
    assert meta.version == 2
    with pytest.raises(StorageError, match="already exists"):
        cat.add_column("patients", "town", "str")
