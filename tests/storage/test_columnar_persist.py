"""Durable segment persistence: generations, checksums, crash recovery."""

import numpy as np
import pytest

from repro.errors import ChecksumError, PersistenceError
from repro.storage import faults
from repro.storage.columnar import PartitionedStore, PartitioningSpec, StorageConfig
from repro.storage.columnar.persist import (
    COMPACTION_POINT,
    MANIFEST_NAME,
    SEGMENT_WRITE_POINT,
    discard_uncommitted,
    load_store,
    save_store,
)
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.tabular import Table, col


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


def make_table(n=120, seed=3):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        {
            "patient_id": [int(v) for v in rng.integers(1, 25, n)],
            "visit_year": [int(2006 + v) for v in rng.integers(0, 4, n)],
            "gender": [["F", "M"][int(v)] for v in rng.integers(0, 2, n)],
            "hba1c": [
                None if rng.random() < 0.1 else float(round(5 + 6 * rng.random(), 2))
                for _ in range(n)
            ],
        },
        schema={
            "patient_id": "int",
            "visit_year": "int",
            "gender": "str",
            "hba1c": "float",
        },
    )


CONFIG = StorageConfig(
    partitioning=PartitioningSpec(
        hash_column="patient_id", hash_partitions=4, band_column="visit_year"
    )
)


def assert_tables_byte_equal(a: Table, b: Table):
    assert a.column_names == b.column_names
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        assert ca.valid.tobytes() == cb.valid.tobytes()
        if ca.dtype.value == "str":
            assert ca.to_list() == cb.to_list()
        else:
            assert ca.data.tobytes() == cb.data.tobytes()


@pytest.fixture()
def store():
    return PartitionedStore.build(make_table(), CONFIG)


class TestRoundTrip:
    def test_save_load_byte_identical(self, store, tmp_path):
        save_store(store, tmp_path)
        loaded = load_store(tmp_path, CONFIG)
        assert loaded.generation == store.generation
        assert len(loaded.segments) == len(store.segments)
        assert_tables_byte_equal(loaded.to_table(), store.to_table())

    def test_loaded_store_prunes_identically(self, store, tmp_path):
        save_store(store, tmp_path)
        loaded = load_store(tmp_path, CONFIG)
        predicate = col("visit_year") >= 2008
        a, sa = store.scan_filter(predicate)
        b, sb = loaded.scan_filter(predicate)
        assert_tables_byte_equal(a, b)
        assert sa.segments_pruned == sb.segments_pruned

    def test_generations_accumulate_and_prune(self, store, tmp_path):
        save_store(store, tmp_path)
        second = store.append(make_table(n=40, seed=9))
        save_store(second, tmp_path)
        third = second.compact()
        save_store(third, tmp_path)
        gens = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("gen-"))
        assert len(gens) == 2  # KEEP_GENERATIONS
        assert load_store(tmp_path, CONFIG).generation == third.generation

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_store(tmp_path)


class TestCorruption:
    def test_flipped_segment_bytes_detected(self, store, tmp_path):
        gen_dir = save_store(store, tmp_path)
        victim = next(gen_dir.glob("*.seg"))
        payload = bytearray(victim.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        victim.write_bytes(bytes(payload))
        with pytest.raises(ChecksumError):
            load_store(tmp_path, CONFIG)

    def test_injected_flip_at_segment_write_detected(self, store, tmp_path):
        faults.install(FaultPlan([FaultRule(SEGMENT_WRITE_POINT, mode="flip", nth=2)]))
        save_store(store, tmp_path)
        faults.uninstall()
        with pytest.raises(ChecksumError):
            load_store(tmp_path, CONFIG)


class TestCrashRecovery:
    def test_kill_mid_compaction_serves_old_generation(self, store, tmp_path):
        """The fault-matrix boundary: kill at storage.compaction →
        recovery discards the half-written generation and serves the
        previous one, byte-identical."""
        save_store(store, tmp_path)
        before = (tmp_path / MANIFEST_NAME).read_bytes()

        compacted = store.append(make_table(n=40, seed=9)).compact()
        faults.install(FaultPlan([FaultRule(COMPACTION_POINT, mode="kill")]))
        with pytest.raises(SimulatedCrash):
            save_store(compacted, tmp_path)
        faults.uninstall()

        # the swap never happened: manifest untouched, old store loads
        assert (tmp_path / MANIFEST_NAME).read_bytes() == before
        removed = discard_uncommitted(tmp_path)
        assert removed, "expected the half-written generation to be swept"
        recovered = load_store(tmp_path, CONFIG)
        assert recovered.generation == store.generation
        assert_tables_byte_equal(recovered.to_table(), store.to_table())

    def test_kill_mid_segment_write_recovers(self, store, tmp_path):
        save_store(store, tmp_path)
        faults.install(FaultPlan([FaultRule(SEGMENT_WRITE_POINT, mode="kill", nth=3)]))
        with pytest.raises(SimulatedCrash):
            save_store(store.compact(), tmp_path)
        faults.uninstall()
        discard_uncommitted(tmp_path)
        recovered = load_store(tmp_path, CONFIG)
        assert_tables_byte_equal(recovered.to_table(), store.to_table())

    def test_discard_uncommitted_noop_on_clean_store(self, store, tmp_path):
        save_store(store, tmp_path)
        assert discard_uncommitted(tmp_path) == []
        load_store(tmp_path, CONFIG)

    def test_recovery_after_crash_then_retry_commits(self, store, tmp_path):
        save_store(store, tmp_path)
        compacted = store.compact()
        faults.install(FaultPlan([FaultRule(COMPACTION_POINT, mode="kill")]))
        with pytest.raises(SimulatedCrash):
            save_store(compacted, tmp_path)
        faults.uninstall()
        discard_uncommitted(tmp_path)
        save_store(compacted, tmp_path)  # the retry succeeds cleanly
        assert load_store(tmp_path, CONFIG).generation == compacted.generation


class TestTornWrites:
    """Recovery from writes that stopped partway through a byte stream.

    A kill between syscalls leaves whole files missing; a torn write
    leaves a file that *exists* but holds a prefix of the payload.  Both
    must be invisible after ``discard_uncommitted`` + ``load_store``.
    """

    def test_torn_segment_write_serves_previous_generation(self, store, tmp_path):
        save_store(store, tmp_path)
        manifest_before = (tmp_path / MANIFEST_NAME).read_bytes()

        faults.install(FaultPlan([
            FaultRule(SEGMENT_WRITE_POINT, mode="short", nth=2, keep_fraction=0.4)
        ]))
        with pytest.raises(SimulatedCrash):
            save_store(store.compact(), tmp_path)
        faults.uninstall()

        # the torn write really left a truncated temp file behind
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers, "expected a torn .tmp file from the short write"

        discard_uncommitted(tmp_path)
        assert not list(tmp_path.rglob("*.tmp"))
        assert (tmp_path / MANIFEST_NAME).read_bytes() == manifest_before
        recovered = load_store(tmp_path, CONFIG)
        assert recovered.generation == store.generation
        assert_tables_byte_equal(recovered.to_table(), store.to_table())

    def test_manually_truncated_uncommitted_segment_swept(self, store, tmp_path):
        """Crash after segments landed, then the filesystem tore one of
        them (power loss truncation): the sweep must still drop the whole
        uncommitted generation."""
        save_store(store, tmp_path)
        faults.install(FaultPlan([FaultRule(COMPACTION_POINT, mode="kill")]))
        with pytest.raises(SimulatedCrash):
            save_store(store.compact(), tmp_path)
        faults.uninstall()

        live = (tmp_path / MANIFEST_NAME).read_bytes()
        gen_dirs = sorted(p for p in tmp_path.iterdir() if p.name.startswith("gen-"))
        torn = next(iter(sorted(gen_dirs[-1].glob("*.seg"))))
        torn.write_bytes(torn.read_bytes()[: torn.stat().st_size // 2])

        removed = discard_uncommitted(tmp_path)
        assert gen_dirs[-1].name in removed
        assert (tmp_path / MANIFEST_NAME).read_bytes() == live
        recovered = load_store(tmp_path, CONFIG)
        assert_tables_byte_equal(recovered.to_table(), store.to_table())

    def test_kill_mid_manifest_rename_serves_previous_generation(self, store, tmp_path):
        """Crash between writing MANIFEST.json.tmp and the rename: the
        complete-but-unrenamed manifest must never become visible."""
        save_store(store, tmp_path)
        manifest_before = (tmp_path / MANIFEST_NAME).read_bytes()

        compacted = store.append(make_table(n=30, seed=17)).compact()
        faults.install(FaultPlan([
            FaultRule(COMPACTION_POINT + ".manifest.rename", mode="kill")
        ]))
        with pytest.raises(SimulatedCrash):
            save_store(compacted, tmp_path)
        faults.uninstall()

        # a complete manifest candidate is sitting beside the live one
        assert (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        assert (tmp_path / MANIFEST_NAME).read_bytes() == manifest_before

        discard_uncommitted(tmp_path)
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        recovered = load_store(tmp_path, CONFIG)
        assert recovered.generation == store.generation
        assert_tables_byte_equal(recovered.to_table(), store.to_table())

    def test_torn_manifest_write_serves_previous_generation(self, store, tmp_path):
        save_store(store, tmp_path)
        manifest_before = (tmp_path / MANIFEST_NAME).read_bytes()

        faults.install(FaultPlan([
            FaultRule(COMPACTION_POINT + ".manifest", mode="short", keep_fraction=0.3)
        ]))
        with pytest.raises(SimulatedCrash):
            save_store(store.compact(), tmp_path)
        faults.uninstall()

        discard_uncommitted(tmp_path)
        assert (tmp_path / MANIFEST_NAME).read_bytes() == manifest_before
        assert_tables_byte_equal(
            load_store(tmp_path, CONFIG).to_table(), store.to_table()
        )

    def test_retry_after_torn_manifest_commits(self, store, tmp_path):
        save_store(store, tmp_path)
        compacted = store.compact()
        faults.install(FaultPlan([
            FaultRule(COMPACTION_POINT + ".manifest.rename", mode="kill")
        ]))
        with pytest.raises(SimulatedCrash):
            save_store(compacted, tmp_path)
        faults.uninstall()
        discard_uncommitted(tmp_path)
        save_store(compacted, tmp_path)
        assert load_store(tmp_path, CONFIG).generation == compacted.generation
