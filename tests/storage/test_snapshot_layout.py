"""Snapshot generations, manifests, filename sanitisation, legacy layout."""

import json

import pytest

from repro.errors import ChecksumError, SnapshotError, StorageError
from repro.storage.engine import StorageEngine
from repro.storage.persistence import (
    load_generation,
    load_snapshot,
    save_snapshot,
    table_filename,
)


def _engine_with(*names: str) -> StorageEngine:
    db = StorageEngine()
    for i, name in enumerate(names):
        db.create_table(name, {"k": "int"}, primary_key="k")
        with db.transaction():
            db.insert(name, {"k": i})
    return db


class TestGenerations:
    def test_saves_accumulate_then_prune(self, tmp_path):
        db = _engine_with("t")
        first = save_snapshot(db, tmp_path)
        assert first.name == "gen-00000001"
        second = save_snapshot(db, tmp_path)
        third = save_snapshot(db, tmp_path)
        # keep=2: the oldest generation is pruned
        names = sorted(d.name for d in tmp_path.glob("gen-*"))
        assert names == [second.name, third.name]

    def test_load_prefers_newest(self, tmp_path):
        db = _engine_with("t")
        save_snapshot(db, tmp_path)
        with db.transaction():
            db.insert("t", {"k": 100})
        save_snapshot(db, tmp_path)
        loaded = load_snapshot(tmp_path)
        assert loaded.row_count("t") == 2

    def test_manifest_records_digests_for_every_file(self, tmp_path):
        db = _engine_with("alpha", "beta")
        gen = save_snapshot(db, tmp_path)
        manifest = json.loads((gen / "MANIFEST.json").read_text())
        files = set(manifest["files"])
        on_disk = {p.name for p in gen.iterdir()} - {"MANIFEST.json"}
        assert files == on_disk

    def test_tampered_table_file_fails_load(self, tmp_path):
        db = _engine_with("t")
        gen = save_snapshot(db, tmp_path)
        victim = gen / table_filename("t")
        victim.write_text(victim.read_text().replace('"k": 0', '"k": 7'))
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            load_generation(gen)

    def test_missing_manifest_is_incomplete(self, tmp_path):
        db = _engine_with("t")
        gen = save_snapshot(db, tmp_path)
        (gen / "MANIFEST.json").unlink()
        with pytest.raises(SnapshotError, match="incomplete"):
            load_generation(gen)

    def test_no_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no snapshot"):
            load_snapshot(tmp_path / "absent")


class TestNameSanitisation:
    def test_reserved_names_do_not_collide_with_metadata_files(self, tmp_path):
        db = _engine_with("catalog", "MANIFEST")
        gen = save_snapshot(db, tmp_path)
        loaded = load_snapshot(tmp_path)
        assert loaded.table_names() == ["MANIFEST", "catalog"]
        assert loaded.row_count("catalog") == 1
        # metadata files are untouched by the table data
        catalog = json.loads((gen / "catalog.json").read_text())
        assert set(catalog) == {"catalog", "MANIFEST"}

    def test_path_separators_cannot_escape_the_snapshot_dir(self, tmp_path):
        db = _engine_with("../evil", "a/b", "c\\d")
        gen = save_snapshot(db, tmp_path / "snaps")
        # every file landed inside the generation directory
        outside = [
            p for p in tmp_path.rglob("*")
            if p.is_file() and gen not in p.parents
        ]
        assert outside == []
        loaded = load_snapshot(tmp_path / "snaps")
        assert loaded.table_names() == sorted(["../evil", "a/b", "c\\d"])

    def test_unicode_and_spaces_round_trip(self, tmp_path):
        names = ["weird name", "ünïcode", "pct%20already"]
        db = _engine_with(*names)
        save_snapshot(db, tmp_path)
        assert load_snapshot(tmp_path).table_names() == sorted(names)

    def test_casefold_collision_rejected(self, tmp_path):
        db = _engine_with("visits", "VISITS")
        with pytest.raises(StorageError, match="collide"):
            save_snapshot(db, tmp_path)

    def test_empty_table_name_rejected(self):
        with pytest.raises(StorageError, match="empty name"):
            table_filename("")


class TestLegacyFlatLayout:
    """Format-1 snapshots (flat dir, bare <table>.json) must still load."""

    def _write_legacy(self, root):
        root.mkdir(parents=True)
        catalog = {
            "visits": {
                "schema": {"vid": "int", "when": "date"},
                "primary_key": "vid",
                "not_null": [],
                "version": 1,
                "foreign_keys": {},
                "indexes": ["when"],
            }
        }
        (root / "catalog.json").write_text(json.dumps(catalog))
        rows = {
            "0": {"vid": 1, "when": {"__date__": "2010-03-01"}},
            "1": {"vid": 2, "when": None},
        }
        (root / "visits.json").write_text(json.dumps(rows))

    def test_loads_via_compatibility_path(self, tmp_path):
        self._write_legacy(tmp_path / "old")
        loaded = load_snapshot(tmp_path / "old")
        assert loaded.row_count("visits") == 2
        import datetime as dt

        assert loaded.get_by_pk("visits", 1)["when"] == dt.date(2010, 3, 1)
        # the legacy index declaration is rebuilt
        assert len(loaded.find("visits", "when", dt.date(2010, 3, 1))) == 1

    def test_new_saves_upgrade_to_generations(self, tmp_path):
        self._write_legacy(tmp_path / "old")
        loaded = load_snapshot(tmp_path / "old")
        save_snapshot(loaded, tmp_path / "old")
        # generations now take precedence over the flat files
        assert (tmp_path / "old" / "gen-00000001").is_dir()
        again = load_snapshot(tmp_path / "old")
        assert again.row_count("visits") == 2
