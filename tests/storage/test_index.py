"""Tests for hash and sorted indexes."""

from repro.storage.index import (
    HashIndex,
    SortedIndex,
    build_hash_index,
    build_sorted_index,
)


class TestHashIndex:
    def test_add_lookup(self):
        index = HashIndex("c")
        index.add("a", 0)
        index.add("a", 1)
        index.add("b", 2)
        assert index.lookup("a") == {0, 1}
        assert index.lookup("b") == {2}
        assert index.lookup("z") == set()

    def test_nulls_never_indexed(self):
        index = HashIndex("c")
        index.add(None, 0)
        assert index.lookup(None) == set()
        assert len(index) == 0

    def test_remove(self):
        index = HashIndex("c")
        index.add("a", 0)
        index.remove("a", 0)
        assert index.lookup("a") == set()
        index.remove("a", 0)  # idempotent

    def test_distinct_values(self):
        index = build_hash_index("c", ["x", "y", "x", None])
        assert sorted(index.distinct_values()) == ["x", "y"]

    def test_lookup_returns_copy(self):
        index = HashIndex("c")
        index.add("a", 0)
        result = index.lookup("a")
        result.add(99)
        assert index.lookup("a") == {0}


class TestSortedIndex:
    def test_range_inclusive(self):
        index = build_sorted_index("c", [5, 1, 3, 4, 2])
        assert sorted(index.range(low=2, high=4)) == [2, 3, 4]  # row ids of 3,4,2

    def test_range_exclusive_bounds(self):
        index = build_sorted_index("c", [1, 2, 3])
        assert index.range(low=1, high=3, include_low=False, include_high=False) == [1]

    def test_open_ended(self):
        index = build_sorted_index("c", [10, 20, 30])
        assert sorted(index.range(low=20)) == [1, 2]
        assert sorted(index.range(high=20)) == [0, 1]
        assert sorted(index.range()) == [0, 1, 2]

    def test_lookup_equality(self):
        index = build_sorted_index("c", [7, 7, 8])
        assert index.lookup(7) == {0, 1}

    def test_remove_specific_pair(self):
        index = SortedIndex("c")
        index.add(5, 0)
        index.add(5, 1)
        index.remove(5, 0)
        assert index.lookup(5) == {1}

    def test_min_max(self):
        index = build_sorted_index("c", [4, 9, 1])
        assert index.min_key() == 1
        assert index.max_key() == 9
        assert SortedIndex("c").min_key() is None

    def test_nulls_skipped(self):
        index = build_sorted_index("c", [None, 2, None])
        assert len(index) == 1
