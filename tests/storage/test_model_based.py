"""Model-based testing of the storage engine (hypothesis stateful).

The engine is compared against a plain-dict reference model through random
sequences of inserts, updates, deletes and aborted transactions.  Any
divergence — including index corruption after rollback — fails the run.

A second machine (:class:`DurableEngineModel`) runs the same mutations on
a file-backed engine and adds two rules: *checkpoint* (snapshot + WAL
truncation) and *crash* (throw the live engine away and recover from disk
alone).  The reference model never crashes, so the invariants prove that
checkpoints and recovery are transparent at any point in any history.
"""

import shutil
import tempfile
from pathlib import Path

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import IntegrityError
from repro.storage.engine import StorageEngine
from repro.storage.persistence import checkpoint, recover
from repro.storage.wal import WriteAheadLog

_KEYS = st.integers(1, 25)
_VALUES = st.sampled_from(["a", "b", "c", None])


class EngineModel(RuleBasedStateMachine):
    """Random single-row transactions vs a dict reference."""

    def __init__(self):
        super().__init__()
        self.engine = StorageEngine()
        self.engine.create_table(
            "t", {"k": "int", "v": "str"}, primary_key="k"
        )
        self.engine.create_index("t", "v")
        self.model: dict[int, str | None] = {}
        self.row_ids: dict[int, int] = {}

    keys = Bundle("keys")

    @rule(target=keys, key=_KEYS, value=_VALUES)
    def insert(self, key, value):
        if key in self.model:
            # duplicate pk must be rejected and leave no trace
            try:
                with self.engine.transaction():
                    self.engine.insert("t", {"k": key, "v": value})
                raise AssertionError("duplicate primary key accepted")
            except IntegrityError:
                pass
            return key
        with self.engine.transaction():
            row_id = self.engine.insert("t", {"k": key, "v": value})
        self.model[key] = value
        self.row_ids[key] = row_id
        return key

    @rule(key=keys, value=_VALUES)
    def update(self, key, value):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.update("t", self.row_ids[key], {"v": value})
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.delete("t", self.row_ids[key])
        del self.model[key]
        del self.row_ids[key]

    @rule(key=_KEYS, value=_VALUES)
    def aborted_transaction(self, key, value):
        """A transaction that mutates then fails must change nothing."""
        try:
            with self.engine.transaction():
                if key in self.model:
                    self.engine.update("t", self.row_ids[key], {"v": value})
                else:
                    self.engine.insert("t", {"k": key, "v": value})
                raise RuntimeError("abort")
        except RuntimeError:
            pass

    @invariant()
    def rows_match_model(self):
        rows = {row["k"]: row["v"] for row in self.engine.scan("t").to_rows()}
        assert rows == self.model

    @invariant()
    def pk_index_matches_model(self):
        for key, value in self.model.items():
            row = self.engine.get_by_pk("t", key)
            assert row is not None and row["v"] == value
        assert self.engine.get_by_pk("t", 999) is None

    @invariant()
    def secondary_index_matches_model(self):
        for value in ("a", "b", "c"):
            expected = sorted(k for k, v in self.model.items() if v == value)
            found = sorted(row["k"] for row in self.engine.find("t", "v", value))
            assert found == expected


EngineModel.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestEngineModel = EngineModel.TestCase


class DurableEngineModel(RuleBasedStateMachine):
    """The same random transactions, now with checkpoints and crashes.

    The engine is file-backed; at any step the machine may checkpoint
    (snapshot + WAL truncate) or "crash" — drop the live engine and
    recover purely from the snapshot generations plus the WAL.  The
    dict reference never crashes, so every divergence is a durability
    bug.
    """

    def __init__(self):
        super().__init__()
        self.workdir = Path(tempfile.mkdtemp(prefix="durable-model-"))
        self.wal_path = self.workdir / "wal.log"
        self.snap_root = self.workdir / "snaps"
        self.engine = StorageEngine(WriteAheadLog(self.wal_path))
        self.engine.create_table(
            "t", {"k": "int", "v": "str"}, primary_key="k"
        )
        self.engine.create_index("t", "v")
        checkpoint(self.engine, self.snap_root)
        self.model: dict[int, str | None] = {}

    keys = Bundle("keys")

    def _row_id(self, key):
        return next(iter(self.engine._tables["t"].pk_index.lookup(key)))

    @rule(target=keys, key=_KEYS, value=_VALUES)
    def insert(self, key, value):
        if key in self.model:
            try:
                with self.engine.transaction():
                    self.engine.insert("t", {"k": key, "v": value})
                raise AssertionError("duplicate primary key accepted")
            except IntegrityError:
                pass
            return key
        with self.engine.transaction():
            self.engine.insert("t", {"k": key, "v": value})
        self.model[key] = value
        return key

    @rule(key=keys, value=_VALUES)
    def update(self, key, value):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.update("t", self._row_id(key), {"v": value})
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.delete("t", self._row_id(key))
        del self.model[key]

    @rule(key=_KEYS, value=_VALUES)
    def aborted_transaction(self, key, value):
        try:
            with self.engine.transaction():
                if key in self.model:
                    self.engine.update("t", self._row_id(key), {"v": value})
                else:
                    self.engine.insert("t", {"k": key, "v": value})
                raise RuntimeError("abort")
        except RuntimeError:
            pass

    @rule()
    def take_checkpoint(self):
        checkpoint(self.engine, self.snap_root)

    @rule()
    def crash_and_recover(self):
        self.engine.wal.close()
        self.engine = recover(self.snap_root, self.wal_path)

    @invariant()
    def rows_match_model(self):
        rows = {row["k"]: row["v"] for row in self.engine.scan("t").to_rows()}
        assert rows == self.model

    @invariant()
    def indexes_match_model(self):
        for key, value in self.model.items():
            row = self.engine.get_by_pk("t", key)
            assert row is not None and row["v"] == value
        for value in ("a", "b", "c"):
            expected = sorted(k for k, v in self.model.items() if v == value)
            found = sorted(row["k"] for row in self.engine.find("t", "v", value))
            assert found == expected

    def teardown(self):
        shutil.rmtree(self.workdir, ignore_errors=True)


DurableEngineModel.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestDurableEngineModel = DurableEngineModel.TestCase
