"""Model-based testing of the storage engine (hypothesis stateful).

The engine is compared against a plain-dict reference model through random
sequences of inserts, updates, deletes and aborted transactions.  Any
divergence — including index corruption after rollback — fails the run.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import IntegrityError
from repro.storage.engine import StorageEngine

_KEYS = st.integers(1, 25)
_VALUES = st.sampled_from(["a", "b", "c", None])


class EngineModel(RuleBasedStateMachine):
    """Random single-row transactions vs a dict reference."""

    def __init__(self):
        super().__init__()
        self.engine = StorageEngine()
        self.engine.create_table(
            "t", {"k": "int", "v": "str"}, primary_key="k"
        )
        self.engine.create_index("t", "v")
        self.model: dict[int, str | None] = {}
        self.row_ids: dict[int, int] = {}

    keys = Bundle("keys")

    @rule(target=keys, key=_KEYS, value=_VALUES)
    def insert(self, key, value):
        if key in self.model:
            # duplicate pk must be rejected and leave no trace
            try:
                with self.engine.transaction():
                    self.engine.insert("t", {"k": key, "v": value})
                raise AssertionError("duplicate primary key accepted")
            except IntegrityError:
                pass
            return key
        with self.engine.transaction():
            row_id = self.engine.insert("t", {"k": key, "v": value})
        self.model[key] = value
        self.row_ids[key] = row_id
        return key

    @rule(key=keys, value=_VALUES)
    def update(self, key, value):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.update("t", self.row_ids[key], {"v": value})
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key not in self.model:
            return
        with self.engine.transaction():
            self.engine.delete("t", self.row_ids[key])
        del self.model[key]
        del self.row_ids[key]

    @rule(key=_KEYS, value=_VALUES)
    def aborted_transaction(self, key, value):
        """A transaction that mutates then fails must change nothing."""
        try:
            with self.engine.transaction():
                if key in self.model:
                    self.engine.update("t", self.row_ids[key], {"v": value})
                else:
                    self.engine.insert("t", {"k": key, "v": value})
                raise RuntimeError("abort")
        except RuntimeError:
            pass

    @invariant()
    def rows_match_model(self):
        rows = {row["k"]: row["v"] for row in self.engine.scan("t").to_rows()}
        assert rows == self.model

    @invariant()
    def pk_index_matches_model(self):
        for key, value in self.model.items():
            row = self.engine.get_by_pk("t", key)
            assert row is not None and row["v"] == value
        assert self.engine.get_by_pk("t", 999) is None

    @invariant()
    def secondary_index_matches_model(self):
        for value in ("a", "b", "c"):
            expected = sorted(k for k, v in self.model.items() if v == value)
            found = sorted(row["k"] for row in self.engine.find("t", "v", value))
            assert found == expected


EngineModel.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestEngineModel = EngineModel.TestCase
