"""Crash-recovery property suite: kill the process at every write boundary.

A scripted workload (transactions, an abort, a mid-stream checkpoint)
runs with a fault plan that simulates ``kill -9`` at the Nth hit of each
named write boundary — WAL append, commit mark, fsync, snapshot temp
write, rename, manifest write, WAL truncation.  After every crash,
:func:`repro.storage.recover` must rebuild exactly the committed prefix:
every transaction whose ``commit()`` returned, nothing from transactions
in flight (with one honest exception: a crash *after* the commit record
reached the OS but before the application saw the acknowledgement may
surface the in-flight transaction — real databases have the same
ambiguity, and the table below pins which boundaries allow it).

A hypothesis test extends this to arbitrary histories and arbitrary
byte-level torn tails of the WAL file.
"""

import datetime as dt
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SnapshotError, WALCorruptionError
from repro.storage import faults
from repro.storage.engine import StorageEngine
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.storage.persistence import checkpoint, recover, save_snapshot
from repro.storage.wal import HEADER_SIZE, WriteAheadLog

SCHEMA = {"k": "int", "v": "str", "d": "date"}


def _fresh_store(root: Path):
    """Engine with a file WAL and an initial schema checkpoint."""
    wal = WriteAheadLog(root / "wal.log")
    db = StorageEngine(wal)
    db.create_table("t", SCHEMA, primary_key="k")
    db.create_index("t", "v")
    checkpoint(db, root / "snaps")
    return db


def _rows_by_key(engine: StorageEngine) -> dict:
    return {
        row["k"]: (row["v"], row["d"]) for row in engine.scan("t").to_rows()
    }


class _Workload:
    """Scripted transactions with a reference model of committed state.

    ``committed`` is the model after the last acknowledged commit;
    ``inflight`` additionally includes the transaction currently being
    committed (for boundaries where the commit record may be durable
    even though the crash pre-empted the acknowledgement).
    """

    def __init__(self, db: StorageEngine, root: Path):
        self.db = db
        self.root = root
        self.committed: dict = {}
        self.inflight: dict = {}

    def _txn(self, mutate) -> None:
        nxt = dict(self.committed)
        self.inflight = mutate_model(nxt, mutate)
        with self.db.transaction():
            apply_ops(self.db, mutate)
        self.committed = self.inflight

    def run(self) -> None:
        day = dt.date(2013, 4, 8)
        self._txn([("insert", 1, "a", day),
                   ("insert", 2, "b", day),
                   ("insert", 3, "c", None)])
        self._txn([("update", 2, "b2"),
                   ("delete", 3),
                   ("insert", 4, "d", day.replace(year=2014))])
        # an aborted transaction must leave no trace at any boundary
        try:
            with self.db.transaction():
                apply_ops(self.db, [("insert", 9, "ghost", None)])
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        checkpoint(self.db, self.root / "snaps")
        self._txn([("insert", 5, "e", None),
                   ("update", 1, "a2")])
        self._txn([("delete", 2)])


def mutate_model(model: dict, ops) -> dict:
    for op in ops:
        if op[0] == "insert":
            _, k, v, d = op
            model[k] = (v, d)
        elif op[0] == "update":
            _, k, v = op
            model[k] = (v, model[k][1])
        elif op[0] == "delete":
            model.pop(op[1])
    return model


def apply_ops(db: StorageEngine, ops) -> None:
    for op in ops:
        if op[0] == "insert":
            _, k, v, d = op
            db.insert("t", {"k": k, "v": v, "d": d})
        elif op[0] == "update":
            _, k, v = op
            row_id = next(iter(db._tables["t"].pk_index.lookup(k)))
            db.update("t", row_id, {"v": v})
        elif op[0] == "delete":
            row_id = next(iter(db._tables["t"].pk_index.lookup(op[1])))
            db.delete("t", row_id)


def _count_hits(tmp_path: Path) -> dict[str, int]:
    """Dry-run the workload under an empty plan to count each boundary."""
    root = tmp_path / "dry"
    root.mkdir()
    db = _fresh_store(root)
    with faults.injected(FaultPlan([])) as plan:
        _Workload(db, root).run()
        return dict(plan._counts)


#: every write boundary the workload crosses, with the recovery guarantee
#: at that boundary: "acked" = exactly the acknowledged commits; "either"
#: = acked, or acked plus the one transaction whose commit record was
#: already handed to the OS when the crash hit.
BOUNDARIES = [
    ("wal.append", "kill", "acked"),
    ("wal.append", "short", "acked"),
    ("wal.commit", "kill", "acked"),
    ("wal.commit", "short", "acked"),
    ("wal.sync", "kill", "either"),
    ("snapshot.data", "kill", "acked"),
    ("snapshot.data", "short", "acked"),
    ("snapshot.data.rename", "kill", "acked"),
    ("snapshot.manifest", "kill", "acked"),
    ("snapshot.manifest", "short", "acked"),
    ("snapshot.manifest.rename", "kill", "acked"),
    ("wal.truncate", "kill", "acked"),
    ("wal.truncate.rename", "kill", "acked"),
]


_hits_cache: dict[str, int] = {}


@pytest.fixture(scope="module")
def boundary_hits(tmp_path_factory) -> dict[str, int]:
    if not _hits_cache:
        _hits_cache.update(_count_hits(tmp_path_factory.mktemp("dryrun")))
    return _hits_cache


@pytest.mark.parametrize("point,mode,guarantee", BOUNDARIES)
def test_kill_at_every_write_boundary(
    tmp_path, boundary_hits, point, mode, guarantee
):
    """Crash at the Nth hit of each boundary, for every N the workload hits."""
    total = boundary_hits.get(point, 0)
    assert total > 0, f"workload never crosses boundary {point!r}"
    for nth in range(1, total + 1):
        root = tmp_path / f"{mode}-{nth}"
        root.mkdir()
        db = _fresh_store(root)
        workload = _Workload(db, root)
        plan = FaultPlan([FaultRule(point, mode=mode, nth=nth)])
        with faults.injected(plan):
            with pytest.raises(SimulatedCrash):
                workload.run()

        recovered = recover(root / "snaps", root / "wal.log")
        state = _rows_by_key(recovered)
        if guarantee == "acked":
            assert state == workload.committed, (
                f"{point}:{mode}@{nth}: recovered {state} "
                f"!= committed {workload.committed}"
            )
        else:
            assert state in (workload.committed, workload.inflight), (
                f"{point}:{mode}@{nth}: recovered {state} is neither the "
                f"acked nor the in-flight state"
            )
        # the ghost row from the aborted transaction never survives
        assert 9 not in state
        # the recovered engine is fully operational: indexes answer
        # queries and new transactions both log and checkpoint cleanly
        for key, (value, day) in state.items():
            row = recovered.get_by_pk("t", key)
            assert row is not None and row["v"] == value and row["d"] == day
        with recovered.transaction():
            recovered.insert("t", {"k": 77, "v": "post", "d": None})
        checkpoint(recovered, root / "snaps")
        again = recover(root / "snaps", root / "wal.log")
        assert _rows_by_key(again) == {**state, 77: ("post", None)}


def test_workload_without_faults_recovers_final_state(tmp_path):
    db = _fresh_store(tmp_path)
    workload = _Workload(db, tmp_path)
    workload.run()
    db.wal.close()
    recovered = recover(tmp_path / "snaps", tmp_path / "wal.log")
    assert _rows_by_key(recovered) == workload.committed


def test_bit_flip_in_wal_is_reported_not_repaired(tmp_path):
    """Silent mid-log corruption must raise, never silently drop data."""
    db = _fresh_store(tmp_path)
    plan = FaultPlan([FaultRule("wal.append", mode="flip", nth=1)])
    with faults.injected(plan):
        with db.transaction():
            db.insert("t", {"k": 1, "v": "x", "d": None})
    with db.transaction():  # valid data lands after the corrupted record
        db.insert("t", {"k": 2, "v": "y", "d": None})
    db.wal.close()
    with pytest.raises(WALCorruptionError, match="corrupt"):
        WriteAheadLog.load(tmp_path / "wal.log")


def test_recover_without_any_valid_generation_raises(tmp_path):
    (tmp_path / "snaps" / "gen-00000001").mkdir(parents=True)
    with pytest.raises(SnapshotError, match="no recoverable snapshot"):
        recover(tmp_path / "snaps")


def test_recover_falls_back_past_corrupt_generation(tmp_path):
    db = _fresh_store(tmp_path)
    with db.transaction():
        db.insert("t", {"k": 1, "v": "x", "d": None})
    save_snapshot(db, tmp_path / "snaps")
    generations = sorted((tmp_path / "snaps").glob("gen-*"))
    # vandalise the newest generation's data file
    newest = generations[-1]
    victim = next(newest.glob("table_*.json"))
    victim.write_bytes(b'{"truncated')
    db.wal.close()
    recovered = recover(tmp_path / "snaps", tmp_path / "wal.log")
    # older generation (schema only) + full WAL replay = committed state
    assert _rows_by_key(recovered) == {1: ("x", None)}


# ----------------------------------------------------------------------
# Hypothesis: arbitrary histories, arbitrary torn tails
# ----------------------------------------------------------------------

_KEYS = st.integers(1, 8)
_VALUES = st.text("abc", min_size=0, max_size=3)
_DATES = st.one_of(
    st.none(), st.dates(dt.date(2000, 1, 1), dt.date(2020, 12, 31))
)
_OPS = st.one_of(
    st.tuples(st.just("put"), _KEYS, _VALUES, _DATES),
    st.tuples(st.just("drop"), _KEYS),
)
_HISTORIES = st.lists(
    st.lists(_OPS, min_size=1, max_size=4), min_size=1, max_size=8
)


def _apply_defensive(db: StorageEngine, model: dict, ops) -> dict:
    """Interpret ops so they are always valid against the current state."""
    model = dict(model)
    for op in ops:
        if op[0] == "put":
            _, k, v, d = op
            if k in model:
                row_id = next(iter(db._tables["t"].pk_index.lookup(k)))
                db.update("t", row_id, {"v": v, "d": d})
            else:
                db.insert("t", {"k": k, "v": v, "d": d})
            model[k] = (v, d)
        else:
            _, k = op
            if k in model:
                row_id = next(iter(db._tables["t"].pk_index.lookup(k)))
                db.delete("t", row_id)
                del model[k]
    return model


@settings(max_examples=60, deadline=None)
@given(history=_HISTORIES, data=st.data())
def test_torn_tail_recovers_exactly_the_committed_prefix(history, data):
    """For any history and any byte-level truncation of the WAL, recovery
    yields exactly the transactions whose commit record survived the cut."""
    workdir = Path(tempfile.mkdtemp(prefix="torn-"))
    try:
        root = workdir / "snaps"
        wal_path = workdir / "wal.log"
        db = _fresh_store(workdir)
        model: dict = {}
        # model snapshots keyed by the WAL size after each commit
        commits: list[tuple[int, dict]] = [
            (wal_path.stat().st_size, dict(model))
        ]
        for ops in history:
            with db.transaction():
                model = _apply_defensive(db, model, ops)
            commits.append((wal_path.stat().st_size, dict(model)))
        db.wal.close()

        full_size = wal_path.stat().st_size
        cut = data.draw(
            st.integers(HEADER_SIZE, full_size), label="cut offset"
        )
        with open(wal_path, "r+b") as handle:
            handle.truncate(cut)

        expected = {}
        for size, snapshot in commits:
            if size <= cut:
                expected = snapshot
        recovered = recover(root, wal_path)
        assert _rows_by_key(recovered) == expected
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(max_examples=25, deadline=None)
@given(history=_HISTORIES)
def test_replay_equals_live_state(history):
    """Baseline property: with no damage, replay reproduces the live state."""
    workdir = Path(tempfile.mkdtemp(prefix="replay-"))
    try:
        wal_path = workdir / "wal.log"
        db = _fresh_store(workdir)
        model: dict = {}
        for ops in history:
            with db.transaction():
                model = _apply_defensive(db, model, ops)
        db.wal.close()
        recovered = recover(workdir / "snaps", wal_path)
        assert _rows_by_key(recovered) == _rows_by_key(db) == model
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
