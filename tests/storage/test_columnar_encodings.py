"""Encoded-column round trips: dict, RLE, plain, auto selection."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import StorageError
from repro.tabular.column import Column
from repro.tabular.dtypes import DType
from repro.storage.columnar.encodings import (
    DictColumn,
    PlainColumn,
    RLEColumn,
    choose_encoding,
    column_nbytes,
    encode_column,
    resolve_encodings,
)


def assert_bytes_equal(original: Column, decoded: Column):
    """Exact round-trip contract: data + validity bytes identical."""
    assert decoded.dtype is original.dtype
    assert decoded.valid.tobytes() == original.valid.tobytes()
    if original.dtype is DType.STR:
        assert decoded.to_list() == original.to_list()
    else:
        assert decoded.data.tobytes() == original.data.tobytes()


CASES = [
    ("int", [1, 1, 1, 2, None, 2, 3, None, 3, 3]),
    ("float", [1.5, 1.5, None, 2.25, 2.25, 2.25, None, 0.0]),
    ("str", ["a", "a", None, "b", "b", "c", None, "a"]),
    ("bool", [True, True, False, None, False, False, True]),
    (
        "date",
        [dt.date(2010, 1, 1), dt.date(2010, 1, 1), None, dt.date(2011, 6, 2)],
    ),
]


class TestRoundTrips:
    @pytest.mark.parametrize("dtype,values", CASES)
    def test_plain(self, dtype, values):
        column = Column.from_values(values, dtype=dtype)
        encoded = PlainColumn.from_column(column)
        assert encoded.encoding == "plain"
        assert_bytes_equal(column, encoded.decode())

    @pytest.mark.parametrize("dtype,values", CASES)
    def test_rle(self, dtype, values):
        column = Column.from_values(values, dtype=dtype)
        encoded = RLEColumn.from_column(column)
        assert encoded.encoding == "rle"
        assert_bytes_equal(column, encoded.decode())

    @pytest.mark.parametrize(
        "dtype,values", [c for c in CASES if c[0] != "float"]
    )
    def test_dict(self, dtype, values):
        column = Column.from_values(values, dtype=dtype)
        encoded = DictColumn.from_column(column)
        assert encoded.encoding == "dict"
        assert_bytes_equal(column, encoded.decode())

    @pytest.mark.parametrize("dtype", ["int", "float", "str", "bool", "date"])
    def test_all_null(self, dtype):
        column = Column.nulls(dtype, 7)
        for encoding in ("plain", "rle") + (("dict",) if dtype != "float" else ()):
            assert_bytes_equal(column, encode_column(column, encoding).decode())

    @pytest.mark.parametrize("dtype", ["int", "str"])
    def test_empty(self, dtype):
        column = Column.from_values([], dtype=dtype)
        for encoding in ("plain", "rle", "dict", "auto"):
            decoded = encode_column(column, encoding).decode()
            assert len(decoded) == 0
            assert decoded.dtype is column.dtype


class TestDictEncoding:
    def test_distinct_hint_counts_non_null_uniques(self):
        column = Column.from_values(["a", "b", "a", None, "c"], dtype="str")
        assert DictColumn.from_column(column).n_distinct() == 3

    def test_codes_use_smallest_width(self):
        column = Column.from_values([1, 2, 1, 2], dtype="int")
        assert DictColumn.from_column(column).codes.dtype == np.uint8

    def test_float_dict_request_degrades_to_rle(self):
        # NaN identity makes float dictionaries unsound; auto never picks
        # them and an explicit request silently falls back
        column = Column.from_values([1.0, 1.0, None], dtype="float")
        encoded = encode_column(column, "dict")
        assert encoded.encoding != "dict"
        assert_bytes_equal(column, encoded.decode())


class TestRLEEncoding:
    def test_null_runs_merge(self):
        column = Column.from_values([None, None, None, 5, 5], dtype="int")
        encoded = RLEColumn.from_column(column)
        assert len(encoded.lengths) == 2

    def test_compresses_constant_column(self):
        column = Column.from_values([9] * 1000, dtype="int")
        encoded = RLEColumn.from_column(column)
        assert encoded.nbytes < column_nbytes(column) / 10

    def test_signed_zero_runs_stay_distinct(self):
        # -0.0 == 0.0 by value; a value-equality run merge would decode
        # both slots as the first run value and drop the sign bit
        column = Column.from_values([0.0, -0.0, -0.0, 0.0], dtype="float")
        encoded = RLEColumn.from_column(column)
        assert len(encoded.lengths) == 3
        assert_bytes_equal(column, encoded.decode())


class TestAutoSelection:
    def test_runs_pick_rle(self):
        column = Column.from_values([1] * 50 + [2] * 50, dtype="int")
        assert choose_encoding(column) == "rle"

    def test_low_cardinality_strings_pick_dict(self):
        # interleaved so runs are short; 3 distinct values out of 60
        column = Column.from_values([f"s{i % 3}" for i in range(60)], dtype="str")
        assert choose_encoding(column) == "dict"

    def test_high_cardinality_floats_pick_plain(self):
        column = Column.from_values(
            [float(i) * 1.5 for i in range(100)], dtype="float"
        )
        assert choose_encoding(column) == "plain"

    def test_auto_round_trips(self):
        for dtype, values in CASES:
            column = Column.from_values(values, dtype=dtype)
            assert_bytes_equal(column, encode_column(column, "auto").decode())


class TestResolveEncodings:
    def test_string_spec_applies_to_all(self):
        resolved = resolve_encodings("rle", ["a", "b"])
        assert resolved == {"a": "rle", "b": "rle"}

    def test_mapping_spec_fills_missing_with_auto(self):
        resolved = resolve_encodings({"a": "dict"}, ["a", "b"])
        assert resolved == {"a": "dict", "b": "auto"}

    def test_unknown_encoding_rejected(self):
        with pytest.raises(StorageError):
            resolve_encodings("zstd", ["a"])
