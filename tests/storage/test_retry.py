"""Retry-with-backoff at named ingest boundaries."""

import random

import pytest

from repro.errors import (
    InjectedFault,
    PermanentIngestError,
    TransientIngestError,
)
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.storage.retry import RetryPolicy, with_retry

# synthetic point installed by the plans below
faults.register_point("p")


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


def _no_sleep():
    delays = []
    return delays, delays.append


class TestRetryPolicy:
    def test_backoff_sequence_is_exponential_and_capped(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=0.01, multiplier=2.0,
            max_delay_s=0.05, jitter=0.0,
        )
        assert [policy.delay(n) for n in range(1, 6)] == [
            0.01, 0.02, 0.04, 0.05, 0.05
        ]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.delay(1, rng)
            assert 0.01 <= delay <= 0.015

    def test_zero_attempts_rejected(self):
        with pytest.raises(PermanentIngestError):
            RetryPolicy(attempts=0)


class TestWithRetry:
    def test_first_try_success_is_free(self):
        calls = []
        result = with_retry("p", lambda: calls.append(1) or 42,
                            sleep=lambda s: pytest.fail("must not sleep"))
        assert result == 42 and calls == [1]

    def test_transient_failures_retry_then_succeed(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientIngestError("not yet")
            return "ok"

        delays, sleep = _no_sleep()
        retried = []
        result = with_retry(
            "p", flaky,
            policy=RetryPolicy(attempts=3, jitter=0.0),
            sleep=sleep,
            on_retry=lambda point, n, exc, d: retried.append((point, n)),
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert retried == [("p", 1), ("p", 2)]
        assert delays == [0.01, 0.02]  # base * multiplier**(n-1)

    def test_exhaustion_raises_permanent_chained_to_last(self):
        def always():
            raise TransientIngestError("still down")

        _, sleep = _no_sleep()
        with pytest.raises(PermanentIngestError, match="after 2 attempts") as info:
            with_retry("p", always, policy=RetryPolicy(attempts=2), sleep=sleep)
        assert isinstance(info.value.__cause__, TransientIngestError)

    def test_permanent_error_is_never_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise PermanentIngestError("gone")

        with pytest.raises(PermanentIngestError, match="gone"):
            with_retry("p", fatal, sleep=lambda s: None)
        assert calls == [1]

    def test_injected_fault_counts_as_transient(self):
        """Existing REPRO_FAULTS error-mode profiles drive the retry path."""
        faults.install(FaultPlan([FaultRule("p", mode="error", nth=1)]))
        _, sleep = _no_sleep()
        result = with_retry("p", lambda: "ok", sleep=sleep)
        assert result == "ok"

    def test_injected_transient_mode_drives_retries(self):
        faults.install(FaultPlan([FaultRule("p", mode="transient", nth=1)]))
        calls = []
        _, sleep = _no_sleep()
        result = with_retry("p", lambda: calls.append(1) or len(calls),
                            sleep=sleep)
        assert result == 1  # attempt 1 injected-transient, attempt 2 clean

    def test_simulated_crash_escapes_retry(self):
        faults.install(FaultPlan([FaultRule("p", mode="kill", nth=1)]))
        with pytest.raises(SimulatedCrash):
            with_retry("p", lambda: "ok", sleep=lambda s: None)

    def test_custom_transient_types(self):
        def flaky():
            raise InjectedFault("x")

        # InjectedFault excluded from the transient set -> propagates raw
        with pytest.raises(InjectedFault):
            with_retry(
                "p", flaky,
                policy=RetryPolicy(attempts=2),
                transient=(TransientIngestError,),
                sleep=lambda s: None,
            )
