"""Null-cohort control: with the planted effects switched off, the
discovery machinery must NOT reproduce the paper's findings.

This is the negative control for the reproduction: if Fig 5's gender
split or the reflex+glucose interaction appeared on a cohort generated
*without* those effects, our 'reproduction' would be an artefact of the
analysis pipeline rather than of the data.
"""

import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.phenomena import PhenomenaConfig
from repro.discri.warehouse import build_discri_warehouse
from repro.mining.awsum import AWSumClassifier
from repro.olap.cube import Cube


def _null_config() -> PhenomenaConfig:
    config = PhenomenaConfig()
    # flat age/gender prevalence: no Fig 5 structure
    config.diabetes_prevalence = {
        key: 0.25 for key in config.diabetes_prevalence
    }
    # uniform HT-duration mix: no Fig 6 dip
    flat_mix = {"<2": 0.2, "2-5": 0.2, "5-10": 0.2, "10-20": 0.2, ">=20": 0.2}
    config.ht_years_mix = {band: dict(flat_mix) for band in config.ht_years_mix}
    # reflexes independent of glycaemic stage: no §II interaction
    config.reflex_absent_rate = {
        "normal": 0.15,
        "preDiabetic_developer": 0.15,
        "preDiabetic_stable": 0.15,
        "Diabetic": 0.15,
    }
    return config


@pytest.fixture(scope="module")
def null_built():
    generator = DiScRiGenerator(
        n_patients=900, seed=42, config=_null_config()
    )
    return build_discri_warehouse(generator.generate())


@pytest.fixture(scope="module")
def null_cube(null_built):
    return Cube(null_built.warehouse)


def test_no_systematic_gender_reversal(null_cube):
    """Without the planted prevalence there is no strong 70-75 male /
    75-80 female contrast (ratios stay near the cohort's F/M mix)."""
    grid = (
        null_cube.query().rows("age_band5").columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
    )
    f_70 = grid.value(("70-75",), ("F",)) or 0
    m_70 = grid.value(("70-75",), ("M",)) or 0
    f_75 = grid.value(("75-80",), ("F",)) or 0
    m_75 = grid.value(("75-80",), ("M",)) or 0
    # the planted cohort shows M/F ~ 1.2x in 70-75 AND F/M ~ 2.4x in 75-80;
    # the null cohort must not show both contrasts simultaneously
    male_dominates_70 = m_70 > f_70 * 1.2
    female_dominates_75 = f_75 > m_75 * 2.0
    assert not (male_dominates_70 and female_dominates_75)


def test_no_ht_duration_dip(null_cube):
    grid = (
        null_cube.query().rows("age_band5").columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes")
        .execute()
    )

    def share(band: str) -> float:
        cells = [
            grid.value((band,), (c,)) or 0
            for c in ("<2", "2-5", "5-10", "10-20", ">=20")
        ]
        total = sum(cells)
        return cells[2] / total if total else 0.0

    reference = (share("60-65") + share("65-70")) / 2
    # planted cohort: 70s share < 0.75 * reference; null cohort: no such dip
    assert share("70-75") > reference * 0.75


def test_reflex_glucose_interaction_absent(null_built):
    rows = [
        row for row in null_built.transformed.to_rows()
        if row["diabetes_status"] == "no"
    ]
    model = AWSumClassifier(min_support=15).fit(
        rows, "develops_diabetes",
        ["fbg_band", "reflex_knees_ankles", "exercise_frequency"],
    )
    reflex_glucose = [
        inter for inter in model.interaction_influences(top=50)
        if {inter.first.attribute, inter.second.attribute}
        == {"fbg_band", "reflex_knees_ankles"}
        and "absent" in (str(inter.first.value), str(inter.second.value))
        and any(
            v in ("high", "preDiabetic")
            for v in (str(inter.first.value), str(inter.second.value))
        )
    ]
    # in the planted cohort surprise is ~+0.6; here it must be modest
    for inter in reflex_glucose:
        assert abs(inter.surprise) < 0.45


def test_null_cohort_still_valid_data(null_built):
    """The control cohort remains structurally sound (the ETL/warehouse
    path does not depend on the planted effects)."""
    assert null_built.warehouse.schema.check_integrity() == []
    assert null_built.warehouse.schema.fact.num_rows > 2000
