"""MDX integration on the session cohort: the queries a scientist writes."""

import pytest

from repro.olap.mdx.evaluator import execute_mdx


class TestReportingQueries:
    def test_fig4_shape(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[conditions].[age_band].MEMBERS ON ROWS FROM discri "
            "WHERE [personal].[family_history_diabetes].[yes]",
        )
        assert grid.grand_total() > 0

    def test_topcount_age_bands_by_patients(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {DISTINCTCOUNT([cardinality].[patient_id])} ON COLUMNS, "
            "TOPCOUNT([conditions].[age_band5].MEMBERS, 3, "
            "DISTINCTCOUNT([cardinality].[patient_id])) ON ROWS FROM discri",
        )
        counts = [
            grid.value(key, ("distinctcount_patient_id",))
            for key in grid.row_keys
        ]
        assert len(counts) == 3
        assert counts == sorted(counts, reverse=True)

    def test_filter_thin_bands_away(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "FILTER([conditions].[age_band5].MEMBERS, "
            "[Measures].[records] >= 50) ON ROWS FROM discri",
        )
        for key in grid.row_keys:
            assert grid.value(key, ("records",)) >= 50

    def test_children_drill_from_coarse_band(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[conditions].[age_band10].[70-80].CHILDREN ON ROWS FROM discri "
            "WHERE [conditions].[diabetes_status].[yes]",
        )
        assert set(grid.row_keys) <= {("70-75",), ("75-80",)}

    def test_non_empty_with_measures(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records], [Measures].[fbg]} ON COLUMNS, "
            "NON EMPTY [conditions].[ht_years_band].MEMBERS ON ROWS "
            "FROM discri WHERE [conditions].[hypertension].[yes]",
        )
        for key in grid.row_keys:
            assert grid.value(key, ("records",)) is not None

    def test_order_by_mean_fbg(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[fbg]} ON COLUMNS, "
            "ORDER([bloods].[fbg_band].MEMBERS, [Measures].[fbg], DESC) "
            "ON ROWS FROM discri",
        )
        means = [grid.value(key, ("fbg",)) for key in grid.row_keys]
        assert means == sorted(means, reverse=True)
        assert grid.row_keys[0] == ("Diabetic",)

    def test_mdx_totals_match_builder_totals(self, cube):
        mdx_grid = execute_mdx(
            cube,
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[bloods].[fbg_band].MEMBERS ON ROWS FROM discri",
        )
        builder_grid = (
            cube.query().rows("fbg_band").columns("gender")
            .count_records().execute()
        )
        assert mdx_grid.grand_total() == builder_grid.grand_total()
