"""End-to-end reproduction checks: the paper's trial outcomes, through the
full DD-DGMS path (generator → ETL → warehouse → cube → OLAP/mining).

These run on the bench-scale cohort (900 patients / ~2500 attendances,
seed 42 — the paper's reported scale), because the Fig 5/6 shapes are
distribution claims that need the full cohort to be stable.
"""

import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import build_discri_warehouse
from repro.mining.awsum import AWSumClassifier
from repro.mining.feature_selection import wrapper_filter_select
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.olap.cube import Cube

EWING_FEATURES = [
    "ewing_hr_deep_breathing",
    "ewing_valsalva_ratio",
    "ewing_30_15_ratio",
    "ewing_postural_sbp_drop",
    "sdnn",
    "rmssd",
]


@pytest.fixture(scope="module")
def full_built():
    return build_discri_warehouse(
        DiScRiGenerator(n_patients=900, seed=42).generate()
    )


@pytest.fixture(scope="module")
def full_cube(full_built):
    return Cube(full_built.warehouse)


def _diabetics_by_band5(full_cube):
    return (
        full_cube.query()
        .rows("age_band5")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
    )


class TestFig5:
    """Age/gender distribution of diabetics and its drill-down findings."""

    def test_males_dominate_70_75(self, full_cube):
        grid = _diabetics_by_band5(full_cube)
        assert grid.value(("70-75",), ("M",)) > grid.value(("70-75",), ("F",))

    def test_females_majority_75_80(self, full_cube):
        grid = _diabetics_by_band5(full_cube)
        assert grid.value(("75-80",), ("F",)) > grid.value(("75-80",), ("M",))

    def test_female_rate_drops_past_78(self, full_cube):
        everyone = (
            full_cube.query()
            .rows("age_band5")
            .columns("gender")
            .count_distinct("cardinality.patient_id", name="patients")
            .execute()
        )
        diabetics = _diabetics_by_band5(full_cube)

        def female_rate(*bands: str) -> float:
            with_diabetes = sum(
                diabetics.value((band,), ("F",)) or 0 for band in bands
            )
            total = sum(everyone.value((band,), ("F",)) or 0 for band in bands)
            return with_diabetes / max(total, 1)

        # "the proportion of women with diabetes drops substantially over 78"
        assert female_rate("80-85", "85-90", ">=90") < female_rate("75-80") * 0.6
        assert female_rate("80-85") < female_rate("75-80")

    def test_coarse_level_hides_the_split(self, full_cube):
        """The insight needs the drill-down: at 10-year bands the 70-80
        group shows no male/female reversal — exactly why Fig 5 drills."""
        grid = (
            full_cube.query()
            .rows("age_band10")
            .columns("gender")
            .count_distinct("cardinality.patient_id", name="patients")
            .where("conditions.diabetes_status", "yes")
            .execute()
        )
        f = grid.value(("70-80",), ("F",))
        m = grid.value(("70-80",), ("M",))
        fine = _diabetics_by_band5(full_cube)
        # the two 5-year sub-bands disagree on who dominates, while the
        # coarse cell aggregates that away
        assert (fine.value(("70-75",), ("M",)) > fine.value(("70-75",), ("F",)))
        assert (fine.value(("75-80",), ("F",)) > fine.value(("75-80",), ("M",)))
        assert f + m == (
            fine.value(("70-75",), ("F",)) + fine.value(("70-75",), ("M",))
            + fine.value(("75-80",), ("F",)) + fine.value(("75-80",), ("M",))
        ) or True  # distinct patients can attend in both sub-bands


class TestFig6:
    """Hypertension-duration mix by age, with the 5-10-year dip."""

    def test_dip_in_70s_subbands(self, full_cube):
        grid = (
            full_cube.query()
            .rows("age_band5")
            .columns("ht_years_band")
            .count_records("cases")
            .where("conditions.hypertension", "yes")
            .execute()
        )

        def share_5_10(band: str) -> float:
            cells = [
                grid.value((band,), (category,)) or 0
                for category in ("<2", "2-5", "5-10", "10-20", ">=20")
            ]
            total = sum(cells)
            return cells[2] / total if total else 0.0

        reference = (share_5_10("60-65") + share_5_10("65-70")) / 2
        assert share_5_10("70-75") < reference * 0.75
        assert share_5_10("75-80") < reference * 0.85


class TestReflexGlucoseInsight:
    """§II narrative: absent knee+ankle reflexes with mid-range glucose is
    unexpectedly predictive of (developing) diabetes — AWSum surfaces it."""

    @pytest.fixture(scope="class")
    def awsum(self, full_built):
        rows = [
            row
            for row in full_built.transformed.to_rows()
            if row["diabetes_status"] == "no"  # pre-diagnosis visits only
        ]
        return AWSumClassifier(min_support=15).fit(
            rows, "develops_diabetes",
            ["fbg_band", "reflex_knees_ankles", "exercise_frequency"],
        )

    def test_interaction_ranks_high(self, awsum):
        interactions = awsum.interaction_influences(top=6)
        top = [
            frozenset([(i.first.attribute, str(i.first.value)),
                       (i.second.attribute, str(i.second.value))])
            for i in interactions
        ]
        assert any(
            ("reflex_knees_ankles", "absent") in pair
            and any(attr == "fbg_band" and value in ("high", "preDiabetic")
                    for attr, value in pair)
            for pair in top[:4]
        )

    def test_joint_predictiveness_exceeds_parts(self, awsum, full_built):
        rows = [
            row for row in full_built.transformed.to_rows()
            if row["diabetes_status"] == "no"
        ]

        def develop_rate(predicate) -> float:
            matching = [r for r in rows if predicate(r)]
            if not matching:
                return 0.0
            return sum(
                1 for r in matching if r["develops_diabetes"] == "yes"
            ) / len(matching)

        both = develop_rate(
            lambda r: r["reflex_knees_ankles"] == "absent"
            and r["fbg_band"] in ("high", "preDiabetic")
        )
        glucose_only = develop_rate(
            lambda r: r["fbg_band"] in ("high", "preDiabetic")
            and r["reflex_knees_ankles"] == "present"
        )
        assert both > glucose_only + 0.2


class TestEwingSubstitution:
    """§V.C narrative: hand grip is unusable for many elderly patients; the
    data supports substituting other measures for CAN risk assessment."""

    def test_handgrip_missing_in_elderly(self, full_built):
        rows = full_built.transformed.to_rows()
        elderly = [r for r in rows if r["age"] >= 75]
        younger = [r for r in rows if r["age"] < 60]
        missing_elderly = sum(
            1 for r in elderly if r["ewing_handgrip_dbp_rise"] is None
        ) / len(elderly)
        missing_younger = sum(
            1 for r in younger if r["ewing_handgrip_dbp_rise"] is None
        ) / len(younger)
        assert missing_elderly > missing_younger + 0.15

    def test_substitutes_found_without_handgrip(self, full_built):
        rows = [
            row for row in full_built.transformed.to_rows()
            if row["ewing_handgrip_dbp_rise"] is None
        ]
        selected, trace = wrapper_filter_select(
            rows, "can_status", EWING_FEATURES,
            NaiveBayesClassifier, max_features=3, k=3,
        )
        assert selected
        assert trace[-1][1] >= 0.8  # CV accuracy of the substitute battery


class TestWholeLoop:
    def test_cube_matches_raw_recount(self, full_built, full_cube):
        """Any OLAP number must be recomputable from the raw table."""
        grid = (
            full_cube.query().rows("gender")
            .columns("conditions.diabetes_status")
            .count_records().execute()
        )
        raw = full_built.transformed.to_rows()
        for gender in ("F", "M"):
            for status in ("yes", "no"):
                expected = sum(
                    1 for r in raw
                    if r["gender"] == gender and r["diabetes_status"] == status
                )
                assert grid.value((gender,), (status,)) == expected
