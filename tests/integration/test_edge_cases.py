"""Edge-case and failure-injection integration tests."""

import pytest

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.errors import OptimizationError, ReproError
from repro.olap.cube import Cube
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import StarSchema


class TestTinyCohorts:
    def test_single_patient_system(self):
        system = DDDGMS(DiScRiGenerator(n_patients=1, seed=8).generate())
        grid = system.olap().rows("gender").count_records().execute()
        assert grid.grand_total() == system.source.num_rows

    def test_minimal_cohort_full_pipeline(self):
        system = DDDGMS(DiScRiGenerator(n_patients=5, seed=8).generate())
        assert system.warehouse.schema.check_integrity() == []
        assert system.cube.flat.num_rows == system.source.num_rows


class TestEmptyWarehouse:
    @pytest.fixture()
    def empty_cube(self):
        personal = Dimension("p", {"g": "str"})
        fact = FactTable("f", ["p"], [Measure.of("v")])
        return Cube(StarSchema("empty", fact, [personal]))

    def test_aggregate_on_empty_facts(self, empty_cube):
        result = empty_cube.aggregate(["p.g"])
        assert result.num_rows == 0

    def test_grand_total_on_empty(self, empty_cube):
        assert empty_cube.grand_total()["records"] == 0

    def test_level_members_empty(self, empty_cube):
        assert empty_cube.level_members("p.g") == []

    def test_query_builder_on_empty(self, empty_cube):
        grid = empty_cube.query().rows("p.g").count_records().execute()
        assert grid.row_keys == []

    def test_optimal_aggregate_on_empty_raises(self, empty_cube):
        from repro.optimize.consistency import find_optimal_aggregate

        with pytest.raises(OptimizationError):
            find_optimal_aggregate(empty_cube, ["p.g"], "v")


class TestConfigFailureInjection:
    def test_invalid_phenomena_rejected_at_construction(self):
        from repro.discri.phenomena import PhenomenaConfig

        config = PhenomenaConfig()
        config.progression_pre_to_diabetic = 1.7
        with pytest.raises(ValueError):
            DiScRiGenerator(n_patients=5, config=config)

    def test_etl_survives_fully_null_optional_columns(self):
        """An attribute column that is entirely null must not break the
        pipeline (clinics do skip whole panels)."""
        cohort = DiScRiGenerator(n_patients=10, seed=2).generate()
        hollow = cohort.with_column(
            "crp", [None] * cohort.num_rows, dtype="float"
        )
        system = DDDGMS(hollow)
        assert system.cube.flat.num_rows == cohort.num_rows

    def test_visualize_rejects_empty_crosstab(self):
        from repro.olap.crosstab import Crosstab
        from repro.viz.heatmap import heatmap

        empty = Crosstab(["r"], ["c"], [], [], {}, "n")
        with pytest.raises(ReproError):
            heatmap(empty)


class TestDiscoveryWorkflow:
    def test_olap_to_mining_to_kb_to_guideline(self):
        """The full §IV loop as one test: isolate a cube slice, mine it,
        record the finding, accumulate evidence, promote, draft."""
        from repro.knowledge.findings import FindingKind
        from repro.knowledge.guidelines import draft_guidelines
        from repro.mining.naive_bayes import NaiveBayesClassifier
        from repro.mining.metrics import accuracy

        system = DDDGMS(
            DiScRiGenerator(n_patients=150, seed=55).generate(),
            promotion_threshold=2.0,
        )
        # 1. isolate: elderly slice only
        rows = system.isolate_cube_slice(age_band="60-80")
        assert rows and all(row["age_band"] == "60-80" for row in rows)
        # 2. mine
        model = NaiveBayesClassifier().fit(
            rows, "diabetes_status", ["fbg_band", "bmi_band"]
        )
        fit_accuracy = accuracy(
            [row["diabetes_status"] for row in rows], model.predict_many(rows)
        )
        assert fit_accuracy > 0.8
        # 3. record + reinforce + promote
        for source in ("mining", "replication"):
            system.record_finding(
                "elderly.fbg_model", FindingKind.PREDICTION,
                "FBG band predicts diabetes in the 60-80 cohort",
                source=source, description=f"accuracy {fit_accuracy:.3f}",
                weight=1.2, tags=["elderly"],
            )
        promoted = system.knowledge_base.promote_ready()
        assert [f.key for f in promoted] == ["elderly.fbg_model"]
        # 4. draft the guideline
        guidelines = draft_guidelines(
            system.knowledge_base,
            {"Elderly screening": ("elderly", "Stage by FBG band at 60+")},
        )
        assert len(guidelines) == 1
        assert "FBG band predicts diabetes" in guidelines[0].to_text()
