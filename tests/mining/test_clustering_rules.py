"""Tests for clustering and association-rule mining."""

import random

import pytest

from repro.errors import MiningError
from repro.mining.apriori import apriori, association_rules
from repro.mining.hierarchical import AgglomerativeClustering
from repro.mining.kmeans import KMeans


@pytest.fixture(scope="module")
def two_blobs():
    rng = random.Random(4)
    rows = []
    for __ in range(60):
        rows.append({"x": rng.gauss(0, 0.5), "y": rng.gauss(0, 0.5), "blob": 0})
    for __ in range(60):
        rows.append({"x": rng.gauss(8, 0.5), "y": rng.gauss(8, 0.5), "blob": 1})
    return rows


class TestKMeans:
    def test_recovers_blobs(self, two_blobs):
        model = KMeans(2, seed=0).fit(two_blobs, ["x", "y"])
        labels_by_blob = {0: set(), 1: set()}
        for row, label in zip(two_blobs, model.labels):
            labels_by_blob[row["blob"]].add(label)
        assert labels_by_blob[0] != labels_by_blob[1]
        assert all(len(s) == 1 for s in labels_by_blob.values())

    def test_deterministic_given_seed(self, two_blobs):
        a = KMeans(2, seed=3).fit(two_blobs, ["x", "y"])
        b = KMeans(2, seed=3).fit(two_blobs, ["x", "y"])
        assert a.labels == b.labels

    def test_cluster_sizes_sum(self, two_blobs):
        model = KMeans(3, seed=1).fit(two_blobs, ["x", "y"])
        assert sum(model.cluster_sizes().values()) == len(two_blobs)

    def test_predict_assigns_nearest(self, two_blobs):
        model = KMeans(2, seed=0).fit(two_blobs, ["x", "y"])
        near_first_blob = model.predict({"x": 0.1, "y": -0.2})
        near_second_blob = model.predict({"x": 8.2, "y": 7.9})
        assert near_first_blob != near_second_blob

    def test_centroid_profiles_in_original_units(self, two_blobs):
        model = KMeans(2, seed=0).fit(two_blobs, ["x", "y"])
        xs = sorted(p["x"] for p in model.centroid_profiles())
        assert xs[0] == pytest.approx(0, abs=0.6)
        assert xs[1] == pytest.approx(8, abs=0.6)

    def test_null_rejected(self):
        with pytest.raises(MiningError, match="null"):
            KMeans(1).fit([{"x": None}], ["x"])

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(MiningError):
            KMeans(5).fit([{"x": 1.0}], ["x"])

    def test_inertia_nonnegative_and_decreasing_in_k(self, two_blobs):
        inertia_2 = KMeans(2, seed=0).fit(two_blobs, ["x", "y"]).inertia
        inertia_4 = KMeans(4, seed=0).fit(two_blobs, ["x", "y"]).inertia
        assert 0 <= inertia_4 <= inertia_2 + 1e-9


class TestAgglomerative:
    def test_recovers_blobs(self, two_blobs):
        sample = two_blobs[:30] + two_blobs[60:90]
        model = AgglomerativeClustering(2).fit(sample, ["x", "y"])
        first_half = set(model.labels[:30])
        second_half = set(model.labels[30:])
        assert first_half.isdisjoint(second_half)

    def test_linkages(self, two_blobs):
        sample = two_blobs[:20] + two_blobs[60:80]
        for linkage in ("average", "complete", "single"):
            model = AgglomerativeClustering(2, linkage=linkage).fit(
                sample, ["x", "y"]
            )
            assert len(set(model.labels)) == 2

    def test_merge_journal_length(self, two_blobs):
        sample = two_blobs[:10]
        model = AgglomerativeClustering(2).fit(sample, ["x", "y"])
        assert len(model.merges) == len(sample) - 2

    def test_bad_linkage(self):
        with pytest.raises(MiningError):
            AgglomerativeClustering(2, linkage="ward")


@pytest.fixture(scope="module")
def basket_rows():
    rng = random.Random(9)
    rows = []
    for __ in range(200):
        diabetic = rng.random() < 0.4
        rows.append(
            {
                "fbg_band": "high" if diabetic or rng.random() < 0.15 else "ok",
                "reflex": "absent" if diabetic and rng.random() < 0.7 else "present",
                "diabetes": "yes" if diabetic else "no",
            }
        )
    return rows


class TestApriori:
    def test_support_monotonicity(self, basket_rows):
        frequent = apriori(basket_rows, min_support=0.1)
        for itemset, support in frequent.items():
            for item in itemset:
                assert frequent[frozenset([item])] >= support - 1e-12

    def test_min_support_respected(self, basket_rows):
        frequent = apriori(basket_rows, min_support=0.3)
        assert all(s >= 0.3 for s in frequent.values())

    def test_nulls_excluded(self):
        rows = [{"a": "x", "b": None}, {"a": "x", "b": "y"}]
        frequent = apriori(rows, min_support=0.4)
        assert frozenset([("b", "y")]) in frequent
        assert not any(("b", None) in itemset for itemset in frequent)

    def test_empty_rejected(self):
        with pytest.raises(MiningError):
            apriori([], 0.1)

    def test_bad_support(self, basket_rows):
        with pytest.raises(MiningError):
            apriori(basket_rows, min_support=0.0)


class TestAssociationRules:
    def test_finds_planted_rule(self, basket_rows):
        rules = association_rules(basket_rows, min_support=0.15, min_confidence=0.6)
        rendered = [rule.render() for rule in rules]
        assert any(
            "reflex=absent" in text and "diabetes=yes" in text for text in rendered
        )

    def test_confidence_floor(self, basket_rows):
        rules = association_rules(basket_rows, min_support=0.1, min_confidence=0.8)
        assert all(rule.confidence >= 0.8 for rule in rules)

    def test_sorted_by_lift(self, basket_rows):
        rules = association_rules(basket_rows, min_support=0.1, min_confidence=0.5)
        lifts = [rule.lift for rule in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_confidence_consistent_with_supports(self, basket_rows):
        rules = association_rules(basket_rows, min_support=0.1, min_confidence=0.5)
        frequent = apriori(basket_rows, min_support=0.1)
        for rule in rules[:10]:
            joint = frequent[rule.antecedent | rule.consequent]
            assert rule.confidence == pytest.approx(
                joint / frequent[rule.antecedent]
            )
