"""Tests for metrics and validation utilities."""

import math

import pytest

from repro.errors import MiningError
from repro.mining.metrics import ConfusionMatrix, accuracy, entropy, f1_score, gini
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.validation import cross_validate, stratified_k_fold, train_test_split


class TestImpurity:
    def test_entropy_pure_is_zero(self):
        assert entropy(["a", "a", "a"]) == 0.0

    def test_entropy_uniform_binary_is_one(self):
        assert entropy(["a", "b"]) == pytest.approx(1.0)

    def test_entropy_empty(self):
        assert entropy([]) == 0.0

    def test_gini_bounds(self):
        assert gini(["a", "a"]) == 0.0
        assert gini(["a", "b"]) == pytest.approx(0.5)


class TestConfusionMatrix:
    @pytest.fixture()
    def matrix(self):
        actual = ["y", "y", "y", "n", "n", "n"]
        predicted = ["y", "y", "n", "n", "n", "y"]
        return ConfusionMatrix(actual, predicted)

    def test_counts(self, matrix):
        assert matrix.count("y", "y") == 2
        assert matrix.count("y", "n") == 1

    def test_accuracy(self, matrix):
        assert matrix.accuracy() == pytest.approx(4 / 6)

    def test_precision_recall_f1(self, matrix):
        assert matrix.precision("y") == pytest.approx(2 / 3)
        assert matrix.recall("y") == pytest.approx(2 / 3)
        assert matrix.f1("y") == pytest.approx(2 / 3)

    def test_class_never_predicted(self):
        matrix = ConfusionMatrix(["a", "b"], ["a", "a"])
        assert matrix.precision("b") == 0.0
        assert matrix.f1("b") == 0.0

    def test_macro_f1(self, matrix):
        expected = (matrix.f1("y") + matrix.f1("n")) / 2
        assert matrix.macro_f1() == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(MiningError):
            ConfusionMatrix(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(MiningError):
            ConfusionMatrix([], [])

    def test_to_text(self, matrix):
        text = matrix.to_text()
        assert "actual" in text and "y" in text

    def test_module_level_shortcuts(self):
        assert accuracy(["a", "b"], ["a", "b"]) == 1.0
        assert f1_score(["a", "b"], ["a", "a"], "a") == pytest.approx(2 / 3)


class TestSplits:
    def test_train_test_sizes(self, clinical_rows):
        train, test = train_test_split(clinical_rows, test_fraction=0.25, seed=3)
        assert len(train) + len(test) == len(clinical_rows)
        assert len(test) == 75

    def test_split_deterministic(self, clinical_rows):
        a = train_test_split(clinical_rows, seed=5)
        b = train_test_split(clinical_rows, seed=5)
        assert a == b

    def test_bad_fraction(self, clinical_rows):
        with pytest.raises(MiningError):
            train_test_split(clinical_rows, test_fraction=1.5)

    def test_stratified_folds_partition(self, clinical_rows):
        folds = stratified_k_fold(clinical_rows, "cls", k=5, seed=1)
        assert len(folds) == 5
        total_test = sum(len(test) for __, test in folds)
        assert total_test == len(clinical_rows)

    def test_stratification_preserves_ratio(self, clinical_rows):
        overall = sum(1 for r in clinical_rows if r["cls"] == "diabetes") / len(
            clinical_rows
        )
        for __, test in stratified_k_fold(clinical_rows, "cls", k=5):
            ratio = sum(1 for r in test if r["cls"] == "diabetes") / len(test)
            assert math.isclose(ratio, overall, abs_tol=0.1)

    def test_k_too_large(self):
        with pytest.raises(MiningError):
            stratified_k_fold([{"cls": "a"}], "cls", k=2)

    def test_cross_validate_reports(self, clinical_rows, features):
        result = cross_validate(
            NaiveBayesClassifier, clinical_rows, "cls", features, k=4
        )
        assert 0.8 <= result["mean_accuracy"] <= 1.0
        assert result["min_accuracy"] <= result["mean_accuracy"] <= result["max_accuracy"]
        assert result["folds"] == 4.0
