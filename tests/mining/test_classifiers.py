"""Tests for the four generic classifiers (shared behaviours + specifics)."""

import pytest

from repro.errors import MiningError, NotFittedError
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.knn import KNNClassifier
from repro.mining.logistic import LogisticRegressionClassifier
from repro.mining.metrics import accuracy
from repro.mining.naive_bayes import NaiveBayesClassifier

ALL_CLASSIFIERS = [
    NaiveBayesClassifier,
    DecisionTreeClassifier,
    KNNClassifier,
    LogisticRegressionClassifier,
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestSharedBehaviour:
    def test_learns_separable_data(self, factory, clinical_rows, features):
        model = factory().fit(clinical_rows, "cls", features)
        predicted = model.predict_many(clinical_rows)
        assert accuracy([r["cls"] for r in clinical_rows], predicted) >= 0.85

    def test_predict_before_fit_raises(self, factory, clinical_rows):
        with pytest.raises((NotFittedError, AttributeError)):
            factory().predict(clinical_rows[0])

    def test_empty_fit_rejected(self, factory):
        with pytest.raises(MiningError):
            factory().fit([], "cls", ["a"])

    def test_no_features_rejected(self, factory, clinical_rows):
        with pytest.raises(MiningError):
            factory().fit(clinical_rows, "cls", [])

    def test_handles_missing_feature_at_predict(self, factory, clinical_rows, features):
        model = factory().fit(clinical_rows, "cls", features)
        label = model.predict({"fbg": 8.5})
        assert label in ("diabetes", "control")

    def test_unlabelled_rows_ignored_in_fit(self, factory, clinical_rows, features):
        rows = clinical_rows + [{"fbg": 6.0, "cls": None}]
        model = factory().fit(rows, "cls", features)
        assert model.predict(clinical_rows[0]) in ("diabetes", "control")


class TestNaiveBayes:
    def test_probabilities_sum_to_one(self, clinical_rows, features):
        model = NaiveBayesClassifier().fit(clinical_rows, "cls", features)
        probs = model.predict_proba(clinical_rows[0])
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_unseen_category_smoothed(self, clinical_rows, features):
        model = NaiveBayesClassifier().fit(clinical_rows, "cls", features)
        probs = model.predict_proba({"reflex": "hyperactive", "fbg": 5.0})
        assert all(0 < p < 1 for p in probs.values())

    def test_bad_smoothing(self):
        with pytest.raises(MiningError):
            NaiveBayesClassifier(smoothing=0)

    def test_all_null_target_rejected(self):
        with pytest.raises(MiningError, match="label"):
            NaiveBayesClassifier().fit([{"a": 1, "cls": None}], "cls", ["a"])


class TestDecisionTree:
    def test_splits_on_informative_feature(self, clinical_rows, features):
        model = DecisionTreeClassifier(max_depth=3).fit(
            clinical_rows, "cls", features
        )
        assert model.root.feature == "fbg"

    def test_depth_bounded(self, clinical_rows, features):
        model = DecisionTreeClassifier(max_depth=2).fit(
            clinical_rows, "cls", features
        )
        assert model.depth() <= 2

    def test_pure_node_is_leaf(self):
        rows = [{"a": 1, "cls": "x"}, {"a": 2, "cls": "x"}]
        model = DecisionTreeClassifier().fit(rows, "cls", ["a"])
        assert model.root.is_leaf

    def test_categorical_multiway_split(self):
        rows = [
            {"c": "a", "cls": "x"}, {"c": "a", "cls": "x"},
            {"c": "b", "cls": "y"}, {"c": "b", "cls": "y"},
            {"c": "d", "cls": "z"}, {"c": "d", "cls": "z"},
        ]
        model = DecisionTreeClassifier(min_samples_split=2).fit(rows, "cls", ["c"])
        assert len(model.root.children) == 3

    def test_unseen_category_falls_to_majority(self):
        rows = [
            {"c": "a", "cls": "x"}, {"c": "a", "cls": "x"}, {"c": "a", "cls": "x"},
            {"c": "b", "cls": "y"}, {"c": "b", "cls": "y"},
        ]
        model = DecisionTreeClassifier(min_samples_split=2).fit(rows, "cls", ["c"])
        assert model.predict({"c": "zz"}) == "x"

    def test_to_text_renders_rules(self, clinical_rows, features):
        model = DecisionTreeClassifier(max_depth=3).fit(clinical_rows, "cls", features)
        text = model.to_text()
        assert "fbg" in text and "->" in text

    def test_n_leaves_positive(self, clinical_rows, features):
        model = DecisionTreeClassifier().fit(clinical_rows, "cls", features)
        assert model.n_leaves() >= 2


class TestKNN:
    def test_distance_symmetric_and_bounded(self, clinical_rows, features):
        model = KNNClassifier(k=3).fit(clinical_rows, "cls", features)
        a, b = clinical_rows[0], clinical_rows[1]
        assert model.distance(a, b) == pytest.approx(model.distance(b, a))
        assert 0.0 <= model.distance(a, b) <= 1.0

    def test_self_distance_zero(self, clinical_rows, features):
        model = KNNClassifier(k=3).fit(clinical_rows, "cls", features)
        assert model.distance(clinical_rows[0], clinical_rows[0]) == 0.0

    def test_missing_value_max_distance(self, clinical_rows, features):
        model = KNNClassifier(k=3).fit(clinical_rows, "cls", features)
        gappy = dict(clinical_rows[0])
        gappy["fbg"] = None
        assert model.distance(clinical_rows[0], gappy) >= 0.25 - 1e-9

    def test_neighbours_sorted(self, clinical_rows, features):
        model = KNNClassifier(k=5).fit(clinical_rows, "cls", features)
        distances = [d for d, __ in model.neighbours(clinical_rows[0])]
        assert distances == sorted(distances)

    def test_k_validation(self):
        with pytest.raises(MiningError):
            KNNClassifier(k=0)


class TestLogistic:
    def test_binary_only(self, clinical_rows, features):
        rows = clinical_rows[:10] + [dict(clinical_rows[0], cls="third")]
        with pytest.raises(MiningError, match="binary"):
            LogisticRegressionClassifier().fit(rows, "cls", features)

    def test_informative_coefficient_positive(self, clinical_rows, features):
        model = LogisticRegressionClassifier().fit(clinical_rows, "cls", features)
        coefficients = model.coefficients()
        # classes sorted: control < diabetes, so weights point toward diabetes
        assert coefficients["fbg"] > 0.5

    def test_one_hot_encoding_names(self, clinical_rows, features):
        model = LogisticRegressionClassifier().fit(clinical_rows, "cls", features)
        assert "reflex=absent" in model.coefficients()

    def test_probabilities_complementary(self, clinical_rows, features):
        model = LogisticRegressionClassifier().fit(clinical_rows, "cls", features)
        probs = model.predict_proba(clinical_rows[0])
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_entirely_null_feature_rejected(self, clinical_rows):
        rows = [dict(r, empty=None) for r in clinical_rows]
        with pytest.raises(MiningError, match="entirely null"):
            LogisticRegressionClassifier().fit(rows, "cls", ["empty"])
