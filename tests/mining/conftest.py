"""Shared synthetic classification data for mining tests."""

import random

import pytest


@pytest.fixture(scope="module")
def clinical_rows():
    """300 rows, two well-separated classes over mixed-type features."""
    rng = random.Random(11)
    rows = []
    for __ in range(300):
        diabetic = rng.random() < 0.4
        rows.append(
            {
                "fbg": rng.gauss(7.9 if diabetic else 5.3, 0.7),
                "bmi": rng.gauss(31 if diabetic else 26, 3),
                "reflex": (
                    "absent"
                    if (diabetic and rng.random() < 0.5) or rng.random() < 0.08
                    else "present"
                ),
                "noise": rng.choice(["a", "b", "c"]),
                "cls": "diabetes" if diabetic else "control",
            }
        )
    return rows


@pytest.fixture(scope="module")
def features():
    return ["fbg", "bmi", "reflex", "noise"]
