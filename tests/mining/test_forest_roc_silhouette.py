"""Tests for the random forest, ROC analysis and silhouette scoring."""

import random

import pytest

from repro.errors import MiningError, NotFittedError
from repro.mining.kmeans import KMeans
from repro.mining.metrics import accuracy
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.random_forest import RandomForestClassifier
from repro.mining.roc import auc_score, roc_curve
from repro.mining.silhouette import (
    pick_k_by_silhouette,
    silhouette_score,
)


class TestRandomForest:
    def test_learns_separable_data(self, clinical_rows, features):
        model = RandomForestClassifier(n_trees=15, seed=1).fit(
            clinical_rows, "cls", features
        )
        predicted = model.predict_many(clinical_rows)
        assert accuracy([r["cls"] for r in clinical_rows], predicted) >= 0.9

    def test_deterministic_given_seed(self, clinical_rows, features):
        a = RandomForestClassifier(n_trees=8, seed=3).fit(
            clinical_rows, "cls", features
        )
        b = RandomForestClassifier(n_trees=8, seed=3).fit(
            clinical_rows, "cls", features
        )
        assert a.predict_many(clinical_rows[:40]) == b.predict_many(
            clinical_rows[:40]
        )

    def test_oob_accuracy_reasonable(self, clinical_rows, features):
        model = RandomForestClassifier(n_trees=20, seed=2).fit(
            clinical_rows, "cls", features
        )
        oob = model.oob_accuracy()
        assert oob is not None and oob >= 0.8

    def test_proba_sums_to_one(self, clinical_rows, features):
        model = RandomForestClassifier(n_trees=9, seed=0).fit(
            clinical_rows, "cls", features
        )
        probabilities = model.predict_proba(clinical_rows[0])
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_feature_usage_counts(self, clinical_rows, features):
        model = RandomForestClassifier(n_trees=10, seed=0).fit(
            clinical_rows, "cls", features
        )
        usage = model.feature_usage()
        assert set(usage) == set(features)
        assert sum(usage.values()) == 10 * 2  # sqrt(4) = 2 features/tree

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict({})

    def test_bad_params(self):
        with pytest.raises(MiningError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(MiningError):
            RandomForestClassifier(feature_fraction=2.0).fit(
                [{"a": 1, "cls": "x"}, {"a": 2, "cls": "y"}], "cls", ["a"]
            )


class TestRoc:
    def test_perfect_classifier_auc_one(self):
        labels = ["pos"] * 5 + ["neg"] * 5
        scores = [0.9, 0.8, 0.85, 0.95, 0.7, 0.3, 0.2, 0.1, 0.25, 0.15]
        assert auc_score(labels, scores, "pos") == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        rng = random.Random(0)
        labels = [rng.choice(["pos", "neg"]) for __ in range(2000)]
        scores = [rng.random() for __ in range(2000)]
        assert auc_score(labels, scores, "pos") == pytest.approx(0.5, abs=0.05)

    def test_inverted_classifier_auc_zero(self):
        labels = ["pos", "neg"]
        scores = [0.1, 0.9]
        assert auc_score(labels, scores, "pos") == pytest.approx(0.0)

    def test_curve_monotone(self):
        rng = random.Random(1)
        labels = [rng.choice(["p", "n"]) for __ in range(100)]
        scores = [rng.random() for __ in range(100)]
        curve = roc_curve(labels, scores, "p")
        tprs = [p.true_positive_rate for p in curve.points]
        fprs = [p.false_positive_rate for p in curve.points]
        assert tprs == sorted(tprs)
        assert fprs == sorted(fprs)
        assert tprs[-1] == 1.0 and fprs[-1] == 1.0

    def test_best_threshold_separates(self):
        labels = ["pos"] * 4 + ["neg"] * 4
        scores = [0.9, 0.8, 0.7, 0.65, 0.4, 0.3, 0.2, 0.1]
        threshold = roc_curve(labels, scores, "pos").best_threshold()
        assert 0.4 <= threshold <= 0.65

    def test_single_class_rejected(self):
        with pytest.raises(MiningError):
            roc_curve(["pos", "pos"], [0.5, 0.6], "pos")

    def test_model_scores_give_high_auc(self, clinical_rows, features):
        model = NaiveBayesClassifier().fit(clinical_rows, "cls", features)
        scores = [
            model.predict_proba(row)["diabetes"] for row in clinical_rows
        ]
        labels = [row["cls"] for row in clinical_rows]
        assert auc_score(labels, scores, "diabetes") > 0.95


class TestSilhouette:
    @pytest.fixture()
    def blobs(self):
        rng = random.Random(6)
        rows = []
        for __ in range(40):
            rows.append({"x": rng.gauss(0, 0.4), "y": rng.gauss(0, 0.4)})
        for __ in range(40):
            rows.append({"x": rng.gauss(6, 0.4), "y": rng.gauss(6, 0.4)})
        return rows

    def test_good_split_scores_high(self, blobs):
        labels = [0] * 40 + [1] * 40
        assert silhouette_score(blobs, ["x", "y"], labels) > 0.8

    def test_bad_split_scores_low(self, blobs):
        labels = [i % 2 for i in range(80)]  # splits straight through blobs
        assert silhouette_score(blobs, ["x", "y"], labels) < 0.2

    def test_pick_k_recovers_two(self, blobs):
        best, scores = pick_k_by_silhouette(blobs, ["x", "y"], k_range=(2, 3, 4))
        assert best == 2
        assert scores[2] > scores[3]

    def test_single_cluster_rejected(self, blobs):
        with pytest.raises(MiningError):
            silhouette_score(blobs, ["x", "y"], [0] * len(blobs))

    def test_kmeans_labels_compatible(self, blobs):
        model = KMeans(2, seed=0).fit(blobs, ["x", "y"])
        assert silhouette_score(blobs, ["x", "y"], model.labels) > 0.7
