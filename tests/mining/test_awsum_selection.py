"""Tests for AWSum and the wrapper-filter feature selection."""

import random

import pytest

from repro.errors import MiningError, NotFittedError
from repro.mining.awsum import AWSumClassifier
from repro.mining.feature_selection import (
    chi2_scores,
    correlation_with,
    information_gain_scores,
    wrapper_filter_select,
)
from repro.mining.metrics import accuracy
from repro.mining.naive_bayes import NaiveBayesClassifier


@pytest.fixture(scope="module")
def interaction_rows():
    """Plant the paper's reflex+mid-glucose interaction.

    Mid-range glucose alone is weakly predictive; absent reflexes alone
    moderately; the *combination* is strongly predictive of diabetes.
    """
    rng = random.Random(21)
    rows = []
    for __ in range(600):
        develops = rng.random() < 0.35
        if develops:
            band = rng.choices(["mid", "high", "ok"], [0.5, 0.35, 0.15])[0]
            reflex = "absent" if band == "mid" and rng.random() < 0.8 else (
                "absent" if rng.random() < 0.3 else "present"
            )
        else:
            band = rng.choices(["mid", "high", "ok"], [0.3, 0.1, 0.6])[0]
            reflex = "absent" if rng.random() < 0.08 else "present"
        rows.append(
            {
                "fbg_band": band,
                "reflex": reflex,
                "exercise": rng.choice(["low", "high"]),
                "develops": "yes" if develops else "no",
            }
        )
    return rows


class TestAWSum:
    def test_classifies_reasonably(self, interaction_rows):
        model = AWSumClassifier(min_support=10).fit(
            interaction_rows, "develops", ["fbg_band", "reflex"]
        )
        predicted = model.predict_many(interaction_rows)
        assert accuracy([r["develops"] for r in interaction_rows], predicted) >= 0.7

    def test_influences_bounded(self, interaction_rows):
        model = AWSumClassifier(min_support=10).fit(
            interaction_rows, "develops", ["fbg_band", "reflex", "exercise"]
        )
        for influence in model.value_influences():
            assert -1.0 <= influence.weight <= 1.0

    def test_influences_sorted_by_magnitude(self, interaction_rows):
        model = AWSumClassifier(min_support=10).fit(
            interaction_rows, "develops", ["fbg_band", "reflex"]
        )
        weights = [abs(i.weight) for i in model.value_influences()]
        assert weights == sorted(weights, reverse=True)

    def test_interaction_surfaces_reflex_glucose(self, interaction_rows):
        """The discovery mechanism of paper §II: the pair pops by surprise."""
        model = AWSumClassifier(min_support=10).fit(
            interaction_rows, "develops", ["fbg_band", "reflex", "exercise"]
        )
        interactions = model.interaction_influences(top=5)
        top_pairs = {
            frozenset(
                [
                    (i.first.attribute, str(i.first.value)),
                    (i.second.attribute, str(i.second.value)),
                ]
            )
            for i in interactions[:3]
        }
        assert frozenset(
            [("fbg_band", "mid"), ("reflex", "absent")]
        ) in top_pairs

    def test_surprise_consistency(self, interaction_rows):
        model = AWSumClassifier(min_support=10).fit(
            interaction_rows, "develops", ["fbg_band", "reflex"]
        )
        for inter in model.interaction_influences():
            expected = (inter.first.weight + inter.second.weight) / 2
            assert inter.surprise == pytest.approx(inter.joint_weight - expected)

    def test_min_support_filters_rare_values(self, interaction_rows):
        rows = interaction_rows + [
            {"fbg_band": "unicorn", "reflex": "present", "develops": "no"}
        ]
        model = AWSumClassifier(min_support=5).fit(
            rows, "develops", ["fbg_band", "reflex"]
        )
        assert model.influence_of("fbg_band", "unicorn") is None

    def test_binary_only(self, interaction_rows):
        rows = interaction_rows[:20] + [dict(interaction_rows[0], develops="maybe")]
        with pytest.raises(MiningError, match="binary"):
            AWSumClassifier().fit(rows, "develops", ["fbg_band"])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            AWSumClassifier().score({})


class TestFilterScores:
    def test_information_gain_ranks_informative_first(self, interaction_rows):
        scores = information_gain_scores(
            interaction_rows, "develops", ["fbg_band", "reflex", "exercise"]
        )
        assert scores["reflex"] > scores["exercise"]
        assert scores["fbg_band"] > scores["exercise"]

    def test_chi2_ranks_informative_first(self, interaction_rows):
        scores = chi2_scores(
            interaction_rows, "develops", ["reflex", "exercise"]
        )
        assert scores["reflex"] > scores["exercise"]

    def test_numeric_features_binned(self):
        rows = [{"v": float(i), "cls": "a" if i < 50 else "b"} for i in range(100)]
        scores = information_gain_scores(rows, "cls", ["v"])
        assert scores["v"] > 0.5

    def test_all_null_feature_scores_zero(self, interaction_rows):
        rows = [dict(r, hollow=None) for r in interaction_rows]
        assert information_gain_scores(rows, "develops", ["hollow"])["hollow"] == 0.0

    def test_correlation(self):
        rows = [{"a": float(i), "b": 2.0 * i, "c": -1.0 * i} for i in range(20)]
        assert correlation_with(rows, "a", "b") == pytest.approx(1.0)
        assert correlation_with(rows, "a", "c") == pytest.approx(-1.0)


class TestWrapperFilter:
    def test_selects_informative_features(self, interaction_rows):
        selected, trace = wrapper_filter_select(
            interaction_rows,
            "develops",
            ["fbg_band", "reflex", "exercise"],
            NaiveBayesClassifier,
            max_features=2,
        )
        assert "fbg_band" in selected or "reflex" in selected
        assert len(trace) == len(selected)

    def test_trace_accuracy_nondecreasing(self, interaction_rows):
        __, trace = wrapper_filter_select(
            interaction_rows,
            "develops",
            ["fbg_band", "reflex", "exercise"],
            NaiveBayesClassifier,
            max_features=3,
        )
        accuracies = [score for __, score in trace]
        assert accuracies == sorted(accuracies)

    def test_no_candidates_rejected(self, interaction_rows):
        with pytest.raises(MiningError):
            wrapper_filter_select(
                interaction_rows, "develops", [], NaiveBayesClassifier
            )

    def test_always_returns_at_least_one(self, interaction_rows):
        selected, __ = wrapper_filter_select(
            interaction_rows,
            "develops",
            ["exercise"],
            NaiveBayesClassifier,
            max_features=1,
        )
        assert selected == ["exercise"]
