"""Fallback visibility: every base-scan fallback says *why* in explain().

Regression suite for the formerly-invisible epoch-guard fallback: a
reader holding a stale snapshot silently base-scanned with no span, so
staleness was indistinguishable from a planner re-route in ``explain()``.
Now all three fallback flavours stamp a ``fallback_reason`` on the
``lattice.lookup`` span — ``epoch_mismatch`` (staleness guard),
``no_covering_node`` (coverage miss) and ``planner_cost`` (the router
preferred the pruned scan) — and ``ExplainReport.fallback_reasons()``
tells them apart while ``LatticeStats.fallbacks`` counts them all.
"""

from __future__ import annotations

from repro.obs.explain import ExplainReport, profile
from repro.olap.materialized import MaterializedCube
from repro.planner import QueryPlanner
from tests.planner._star import LEVELS, build_cube, calibrate, default_rows

AGGS = {"n": ("records", "size"), "total": ("m", "sum")}


def _report(fn) -> ExplainReport:
    result, plan = profile("query", fn)
    return ExplainReport(query="q", plan=plan, result=result)


def test_epoch_mismatch_fallback_is_visible_and_exact():
    cube = build_cube(default_rows())
    lattice = MaterializedCube(cube).materialize([list(LEVELS)])
    stale_epoch_state = cube._current_state()
    fresh_state = cube.publish()  # new epoch; the lattice stays pinned
    assert fresh_state is not stale_epoch_state

    before = lattice.stats.fallbacks
    report = _report(
        lambda: lattice.aggregate(["d1.a"], AGGS, state=fresh_state)
    )
    assert report.fallback_reasons() == ["epoch_mismatch"]
    assert lattice.stats.fallbacks == before + 1
    # the guard answered from the caller's own epoch, byte-exact
    oracle = cube._aggregate_base(["d1.a"], AGGS, state=fresh_state)
    assert report.result.equals(oracle)
    assert report.plan.find("lattice.lookup") is not None


def test_no_covering_node_fallback_is_visible():
    cube = build_cube(default_rows())
    lattice = MaterializedCube(cube).materialize([["d1.a"]])
    cube.attach_lattice(lattice)
    before = lattice.stats.fallbacks
    report = _report(lambda: cube.aggregate(["d2.c"], AGGS))
    assert report.fallback_reasons() == ["no_covering_node"]
    assert lattice.stats.fallbacks == before + 1


def test_planner_cost_reroute_has_its_own_reason():
    cube = build_cube(default_rows())
    lattice = MaterializedCube(cube).materialize([list(LEVELS)])
    cube.attach_lattice(lattice)
    planner = QueryPlanner()
    calibrate(planner, cheap="base")  # the scan always wins the costing
    cube.attach_planner(planner)
    before = lattice.stats.fallbacks
    report = _report(lambda: cube.aggregate(["d1.a"], AGGS))
    assert report.fallback_reasons() == ["planner_cost"]
    assert lattice.stats.fallbacks == before + 1
    # a re-route is a planned stage: its span carries the estimate too
    lookup = report.plan.find("lattice.lookup")
    assert lookup is not None
    assert "est_cost_ms" in lookup.attrs


def test_lattice_hits_report_no_fallback_reason():
    cube = build_cube(default_rows())
    lattice = MaterializedCube(cube).materialize([list(LEVELS)])
    cube.attach_lattice(lattice)
    report = _report(lambda: cube.aggregate(["d1.a"], AGGS))
    assert report.fallback_reasons() == []
    assert lattice.stats.exact_hits + lattice.stats.rollup_hits == 1


def test_the_three_fallback_reasons_are_distinguishable():
    """One suite-level check: staleness ≠ coverage miss ≠ planner re-route."""
    seen: dict[str, str] = {}

    # staleness guard
    cube = build_cube(default_rows())
    lattice = MaterializedCube(cube).materialize([list(LEVELS)])
    fresh_state = cube.publish()
    seen["stale"] = _report(
        lambda: lattice.aggregate(["d1.a"], AGGS, state=fresh_state)
    ).fallback_reasons()[0]

    # coverage miss
    cube2 = build_cube(default_rows())
    cube2.attach_lattice(MaterializedCube(cube2).materialize([["d1.a"]]))
    seen["uncovered"] = _report(
        lambda: cube2.aggregate(["d2.c"], AGGS)
    ).fallback_reasons()[0]

    # cost-based re-route
    cube3 = build_cube(default_rows())
    cube3.attach_lattice(MaterializedCube(cube3).materialize([list(LEVELS)]))
    planner = QueryPlanner()
    calibrate(planner, cheap="base")
    cube3.attach_planner(planner)
    seen["rerouted"] = _report(
        lambda: cube3.aggregate(["d1.a"], AGGS)
    ).fallback_reasons()[0]

    assert seen == {
        "stale": "epoch_mismatch",
        "uncovered": "no_covering_node",
        "rerouted": "planner_cost",
    }
