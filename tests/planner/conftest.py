"""Planner-suite fixtures (shared star helpers live in ``_star.py``)."""

from __future__ import annotations

import pytest


@pytest.fixture(params=["vector", "scalar"])
def kernels(request, monkeypatch):
    """Run a test under both kernel paths (vectorised and scalar oracle)."""
    if request.param == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    return request.param
