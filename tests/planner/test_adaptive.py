"""Adaptive materialization: budgets, eviction, hot-query convergence.

Two layers of coverage:

* a hypothesis **model-based machine** over a raw cube interleaving
  queries, budget changes and publish/reselect cycles, holding the
  invariants the ISSUE names — the node budget is never exceeded,
  queries whose node was evicted still answer byte-identically, and a
  repeatedly-hot query is eventually materialized;
* **DGMS-level** tests for ``materialize_lattice(policy="adaptive")``:
  the policy survives ingest rebuilds (reselection re-runs against the
  then-current workload), decisions land in ``maintenance["planner"]``
  and ``ingest_health()``, and the misuse paths raise ``OLAPError``.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.olap.cube import OLAPError
from repro.olap.materialized import MaterializedCube
from repro.planner import QueryPlanner, select_nodes
from repro.tabular.expressions import col

from tests.planner._star import build_cube, calibrate, default_rows

#: query shapes over the _star schema: (levels, aggregations, predicate)
SHAPES = (
    (("d1.a",), {"n": ("records", "size")}, None),
    (("d1.a", "d1.b"), {"total": ("m", "sum")}, None),
    (("d2.c",), {"v_mean": ("v", "mean")}, None),
    (("d1.b", "d2.c"), {"m_max": ("m", "max")}, ("d1.a", "a1")),
    (("d1.a", "d2.c"), {"n": ("records", "size"), "total": ("m", "sum")}, None),
)


def _filters(predicate):
    if predicate is None:
        return None
    column, value = predicate
    return col(column).eq(value)


def _wanted(shape) -> tuple[str, ...]:
    """The covering node a shape needs: grouping levels + filter columns."""
    levels, _aggs, predicate = shape
    wanted = set(levels)
    if predicate is not None:
        wanted.add(predicate[0])
    return tuple(sorted(wanted))


def _select(cube, planner, budget_nodes, budget_cells=None):
    state = cube._current_state()
    return select_nodes(
        planner.stats,
        planner.cost,
        available_levels=state.qattrs,
        cardinality=lambda level: len(state.flat.column(level).unique()),
        flat_rows=state.num_rows,
        budget_nodes=budget_nodes,
        budget_cells=budget_cells,
    )


class AdaptiveLatticeMachine(RuleBasedStateMachine):
    """Interleave queries, budget changes and reselections; never diverge."""

    def __init__(self):
        super().__init__()
        self.cube = build_cube(default_rows(36))
        self.planner = QueryPlanner()
        # node-favouring calibration: every recorded plan earns its node,
        # so reselection actually materializes and evicts as budgets move
        calibrate(self.planner, cheap="node")
        self.cube.attach_planner(self.planner)
        self.budget_nodes = 2
        self.budget_cells = None
        self.queried: list = []
        self.materialized_ever: set = set()

    def _assert_parity(self, shape):
        levels, aggregations, predicate = shape
        routed = self.cube.aggregate(
            list(levels), dict(aggregations), filters=_filters(predicate)
        )
        oracle = self.cube._aggregate_base(
            list(levels), dict(aggregations), filters=_filters(predicate)
        )
        assert routed.equals(oracle), shape

    @rule(shape=st.sampled_from(SHAPES))
    def query(self, shape):
        self._assert_parity(shape)
        if shape not in self.queried:
            self.queried.append(shape)

    @rule(n=st.integers(0, 3))
    def set_node_budget(self, n):
        self.budget_nodes = n

    @rule(cells=st.one_of(st.none(), st.integers(1, 200)))
    def set_cell_budget(self, cells):
        self.budget_cells = cells

    @rule()
    def publish_and_reselect(self):
        selection = _select(
            self.cube, self.planner, self.budget_nodes, self.budget_cells
        )
        assert len(selection.groups) <= self.budget_nodes
        if self.budget_cells is not None:
            assert selection.est_cells_total <= self.budget_cells
        lattice = MaterializedCube(self.cube).materialize(selection.groups)
        self.cube.attach_lattice(lattice)
        self.materialized_ever.update(tuple(g) for g in selection.groups)

    @invariant()
    def evicted_or_covered_queries_still_answer(self):
        # every shape ever queried — including ones whose node was since
        # evicted by a reselection — must still equal the base oracle
        for shape in self.queried[-3:]:
            self._assert_parity(shape)


AdaptiveLatticeMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
TestAdaptiveMachine = AdaptiveLatticeMachine.TestCase


class TestHotQueryConvergence:
    def test_hot_query_is_eventually_materialized(self):
        cube = build_cube(default_rows(36))
        planner = QueryPlanner()
        calibrate(planner, cheap="node")
        cube.attach_planner(planner)
        hot = SHAPES[3]  # filtered shape: wanted set = levels + filter col
        levels, aggregations, predicate = hot
        for _ in range(4):
            cube.aggregate(
                list(levels), dict(aggregations), filters=_filters(predicate)
            )
        selection = _select(cube, planner, budget_nodes=1)
        assert [tuple(g) for g in selection.groups] == [_wanted(hot)]
        assert selection.report[0]["plans_covered"] >= 1
        assert selection.report[0]["benefit_ms"] > 0

    def test_cold_workload_selects_nothing(self):
        cube = build_cube(default_rows(36))
        planner = QueryPlanner()
        cube.attach_planner(planner)
        selection = _select(cube, planner, budget_nodes=4)
        # nothing recorded yet -> no candidates -> the safe empty lattice
        assert selection.groups == []
        assert selection.rejected == 0

    def test_heavier_queries_win_the_last_budget_slot(self):
        cube = build_cube(default_rows(36))
        planner = QueryPlanner()
        calibrate(planner, cheap="node")
        cube.attach_planner(planner)
        hot, cold = SHAPES[0], SHAPES[2]
        for _ in range(6):
            cube.aggregate(list(hot[0]), dict(hot[1]))
        cube.aggregate(list(cold[0]), dict(cold[1]))
        selection = _select(cube, planner, budget_nodes=1)
        assert [tuple(g) for g in selection.groups] == [_wanted(hot)]


def _cohort(n_patients=30, seed=5):
    return DiScRiGenerator(n_patients=n_patients, seed=seed).generate()


def _batch_for(source, n_patients=6, seed=99):
    batch = DiScRiGenerator(n_patients=n_patients, seed=seed).generate()
    return offset_identifiers(
        batch,
        max(source.column("patient_id").to_list()),
        max(source.column("visit_id").to_list()),
    )


HOT_DGMS_QUERY = (
    ["conditions.age_band", "personal.gender"],
    {"n": ("records", "size")},
)


def _seeded_system():
    """A full-rebuild DGMS with a workload the selector will act on."""
    system = DDDGMS(_cohort(), incremental=False)
    calibrate(system.planner, cheap="node")
    for _ in range(4):
        system.cube.aggregate(*HOT_DGMS_QUERY)
    return system


class TestDGMSAdaptivePolicy:
    def test_adaptive_materialization_records_its_decision(self):
        system = _seeded_system()
        system.materialize_lattice(policy="adaptive", budget_nodes=2)
        ledger = system.maintenance["planner"]
        assert ledger["adaptive_selections"] == 1
        decision = ledger["last_decision"]
        assert decision["budget_nodes"] == 2
        assert tuple(sorted(HOT_DGMS_QUERY[0])) in {
            tuple(g) for g in decision["selected"]
        }
        assert ledger["materialized_nodes"] == len(decision["selected"])
        # the covered query now answers from the adaptive node, byte-equal
        routed = system.cube.aggregate(*HOT_DGMS_QUERY)
        oracle = system.cube._aggregate_base(*HOT_DGMS_QUERY)
        assert routed.equals(oracle)
        assert system.cube.lattice.stats.exact_hits >= 1

    def test_policy_survives_ingest_and_reselects(self):
        system = _seeded_system()
        system.materialize_lattice(policy="adaptive", budget_nodes=2)
        batch = _batch_for(system.source)
        system.ingest_visits(batch, batch="y2")
        ledger = system.maintenance["planner"]
        assert ledger["adaptive_selections"] == 2  # rebuild re-ran selection
        health = system.ingest_health()
        assert health["planner"]["lattice_policy"] == "adaptive"
        assert health["planner"]["decisions"]["adaptive_selections"] == 2
        routed = system.cube.aggregate(*HOT_DGMS_QUERY)
        oracle = system.cube._aggregate_base(*HOT_DGMS_QUERY)
        assert routed.equals(oracle)

    def test_budget_shrink_evicts_and_queries_reroute(self):
        system = _seeded_system()
        system.materialize_lattice(policy="adaptive", budget_nodes=2)
        built = len(system.maintenance["planner"]["last_decision"]["selected"])
        assert built >= 1
        system.materialize_lattice(policy="adaptive", budget_nodes=0)
        ledger = system.maintenance["planner"]
        assert ledger["evicted_nodes"] == built
        assert ledger["last_decision"]["selected"] == []
        # the formerly-covered query now base-scans, still byte-equal
        routed = system.cube.aggregate(*HOT_DGMS_QUERY)
        oracle = system.cube._aggregate_base(*HOT_DGMS_QUERY)
        assert routed.equals(oracle)

    def test_health_exposes_planner_snapshot(self):
        system = _seeded_system()
        system.materialize_lattice(policy="adaptive", budget_nodes=2)
        health = system.ingest_health()
        planner_health = health["planner"]
        assert planner_health["enabled"] is True
        assert planner_health["lattice_policy"] == "adaptive"
        assert "cost_model" in planner_health
        assert "workload" in planner_health
        assert planner_health["decisions"]["last_decision"]["report"]

    def test_adaptive_rejects_explicit_level_groups(self):
        system = _seeded_system()
        with pytest.raises(OLAPError, match="adaptive"):
            system.materialize_lattice(
                [["conditions.age_band"]], policy="adaptive"
            )

    def test_adaptive_requires_an_attached_planner(self):
        system = DDDGMS(_cohort())
        system.attach_planner(None)
        with pytest.raises(OLAPError, match="planner"):
            system.materialize_lattice(policy="adaptive")
        assert system.ingest_health()["planner"] is None

    def test_detaching_the_planner_resets_the_policy(self):
        system = _seeded_system()
        system.materialize_lattice(policy="adaptive", budget_nodes=2)
        system.attach_planner(None)
        # the remembered policy cannot outlive the planner it needs
        batch = _batch_for(system.source)
        system.ingest_visits(batch, batch="y2")  # must not raise
        assert system.maintenance["planner"]["adaptive_selections"] == 1

    def test_bad_policy_name_raises(self):
        system = DDDGMS(_cohort())
        with pytest.raises(OLAPError, match="policy"):
            system.materialize_lattice(policy="hru")
