"""Shared planner-suite helpers: one tiny star, forced calibrations.

The star has three levels (``d1.a`` x4, ``d1.b`` x3, ``d2.c`` x5), an
additive int measure ``m`` and a non-additive float measure ``v`` with
nulls — enough shape for exact hits, partial rollups, filtered cells
and mean recomposition, small enough that property tests can rebuild it
per example.
"""

from __future__ import annotations

from repro.olap.cube import Cube
from repro.planner import QueryPlanner
from repro.tabular.table import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader

SCHEMA = {"a": "str", "b": "str", "c": "int", "m": "int", "v": "float"}

#: qualified level names of the test star
LEVELS = ("d1.a", "d1.b", "d2.c")


def build_cube(rows, storage=None) -> Cube:
    """A published managed cube over ``rows`` (dicts in SCHEMA shape)."""
    loader = WarehouseLoader(
        "m", "f",
        [
            DimensionSpec(Dimension("d1", {"a": "str", "b": "str"})),
            DimensionSpec(Dimension("d2", {"c": "int"})),
        ],
        [
            Measure.of("m", "int", "sum", additive=True),
            Measure.of("v", "float", "mean"),
        ],
    )
    loader.load(Table.from_rows(rows, schema=SCHEMA))
    cube = Cube(loader.schema, managed=True)
    if storage is not None:
        cube.attach_storage(storage)
    cube.publish()
    return cube


def default_rows(n: int = 24) -> list[dict]:
    """A deterministic row set covering every member at least once."""
    rows = []
    for i in range(n):
        rows.append(
            {
                "a": f"a{i % 4}",
                "b": f"b{i % 3}",
                "c": i % 5,
                "m": (i * 7) % 23,
                "v": None if i % 6 == 5 else float(i % 11) / 4.0,
            }
        )
    return rows


def calibrate(planner: QueryPlanner, cheap: str) -> None:
    """Inject synthetic samples so ``cheap`` ("node"/"base") always wins.

    The expensive route gets a huge per-call floor, the cheap one a tiny
    rate and floor, and both reach ``min_samples`` — so the router is
    calibrated and every cost comparison resolves the same way.
    """
    expensive = "base" if cheap == "node" else "node"
    for _ in range(planner.config.min_samples):
        planner.observe_route(cheap, 0.0001, 1_000_000)
        planner.observe_route(expensive, 1000.0, 1)
