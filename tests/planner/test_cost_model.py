"""Cost-model decision tables, cold-stats fallback, EXPLAIN accuracy.

Three contracts from DESIGN.md §"Cost-based planning":

* **decision table** — with pinned synthetic calibrations the router's
  choice is a pure function of the estimates: cheapest node on node-
  favouring stats, base scan on scan-favouring stats, ties to the node,
  the historical preference while any route kind is cold;
* **cold ≡ legacy** — an attached-but-cold planner changes nothing: a
  twin cube without a planner produces byte-identical answers *and*
  identical lattice hit counters over the same query sequence;
* **EXPLAIN accuracy** — on the workload the model calibrated on, every
  ``est_cost_ms`` the plan carries stays within the declared
  ``ACCURACY_FACTOR`` of the measured stage time.
"""

from __future__ import annotations

import pytest

from repro.obs.explain import ExplainReport, profile
from repro.olap.materialized import MaterializedCube
from repro.planner import PlannerConfig, QueryPlanner
from repro.planner.cost import (
    ACCURACY_FACTOR,
    COLD_BASE_MS_PER_ROW,
    COLD_FLOOR_MS,
)
from repro.tabular.expressions import col

from tests.planner._star import LEVELS, build_cube, calibrate, default_rows


def _flat_calibration(planner, kind, ms, units, samples=None):
    for _ in range(samples or planner.config.min_samples):
        planner.observe_route(kind, ms, units)


class TestDecisionTable:
    def test_disabled_planner_routes_nothing(self):
        planner = QueryPlanner(PlannerConfig(enabled=False))
        calibrate(planner, cheap="base")
        assert planner.choose_route([("n", 10)], base_rows=100) is None

    def test_no_candidates_routes_nothing(self):
        planner = QueryPlanner()
        calibrate(planner, cheap="base")
        assert planner.choose_route([], base_rows=100) is None

    def test_cold_stats_keep_the_historical_preference(self):
        planner = QueryPlanner()
        decision = planner.choose_route(
            [("small", 10), ("large", 1000)], base_rows=5
        )
        assert decision.kind == "node"
        assert decision.node_index == 0  # smallest covering node
        assert decision.reason == "cold_stats"

    def test_one_cold_route_kind_still_counts_as_cold(self):
        # only base calibrated: comparing a measured base rate against a
        # guessed node rate would flip decisions on a guess — refuse
        planner = QueryPlanner()
        _flat_calibration(planner, "base", 0.001, 1000)
        decision = planner.choose_route([("n", 10)], base_rows=10_000)
        assert decision.reason == "cold_stats"
        assert decision.kind == "node"
        assert not planner.active

    def test_calibrated_picks_the_cheapest_node(self):
        planner = QueryPlanner()
        # node: 1ms per 1000 cells; base: ruinous
        _flat_calibration(planner, "node", 1.0, 1000)
        _flat_calibration(planner, "base", 1000.0, 1)
        decision = planner.choose_route(
            [("five_k", 5000), ("two_k", 2000), ("three_k", 3000)],
            base_rows=100,
        )
        assert decision.kind == "node"
        assert decision.node_index == 1
        assert decision.reason == "cost"
        assert decision.est_cost_ms == pytest.approx(2.0)

    def test_calibrated_reroutes_to_a_cheaper_scan(self):
        planner = QueryPlanner()
        _flat_calibration(planner, "node", 1000.0, 1)
        _flat_calibration(planner, "base", 0.0001, 1_000_000)
        decision = planner.choose_route([("n", 10)], base_rows=50)
        assert decision.kind == "base"
        assert decision.node_index is None
        assert decision.reason == "cost"

    def test_cost_tie_keeps_the_node(self):
        planner = QueryPlanner()
        # identical rate and floor for both route kinds -> equal estimates
        _flat_calibration(planner, "node", 1.0, 100)
        _flat_calibration(planner, "base", 1.0, 100)
        decision = planner.choose_route([("n", 100)], base_rows=100)
        assert decision.kind == "node"  # base wins only on strict <

    def test_alternatives_list_every_candidate_and_the_scan(self):
        planner = QueryPlanner()
        decision = planner.choose_route(
            [("x", 10), ("y", 20)], base_rows=30
        )
        labels = [label for label, _ in decision.alternatives]
        assert labels == ["x", "y", "base_scan"]

    def test_route_counts_accumulate_by_kind_and_reason(self):
        planner = QueryPlanner()
        planner.choose_route([("n", 10)], base_rows=5)
        calibrate(planner, cheap="base")
        planner.choose_route([("n", 10)], base_rows=5)
        assert planner.route_counts == {"node:cold_stats": 1, "base:cost": 1}


class TestEstimates:
    def test_estimate_is_rate_times_units_with_a_floor(self):
        planner = QueryPlanner()
        _flat_calibration(planner, "base", 2.0, 1000)  # rate 0.002, floor 2.0
        assert planner.cost.estimate_base_ms(10_000) == pytest.approx(20.0)
        assert planner.cost.estimate_base_ms(10) == pytest.approx(2.0)  # floor

    def test_cold_estimates_use_the_documented_defaults(self):
        planner = QueryPlanner()
        assert planner.cost.estimate_base_ms(1_000_000) == pytest.approx(
            1_000_000 * COLD_BASE_MS_PER_ROW
        )
        assert planner.cost.estimate_base_ms(1) == pytest.approx(COLD_FLOOR_MS)

    def test_snapshot_reports_per_route_calibration(self):
        planner = QueryPlanner()
        _flat_calibration(planner, "node", 1.0, 100)
        snap = planner.snapshot()
        assert snap["cost_model"]["routes"]["node"]["calibrated"] is True
        assert snap["cost_model"]["routes"]["base"]["calibrated"] is False
        assert snap["active"] is False


QUERY_MIX = (
    (["d1.a"], {"n": ("records", "size")}, None),
    (["d1.a", "d2.c"], {"total": ("m", "sum")}, None),
    (["d1.b"], {"v_mean": ("v", "mean")}, ("d1.a", "a1")),
    (["d2.c"], {"m_max": ("m", "max")}, None),
    (["d1.a"], {"u": ("m", "nunique")}, None),  # never lattice-answerable
)


def _run_mix(cube):
    results = []
    for levels, aggregations, predicate in QUERY_MIX:
        filters = col(predicate[0]).eq(predicate[1]) if predicate else None
        results.append(cube.aggregate(levels, aggregations, filters=filters))
    return results


class TestColdIsLegacy:
    def test_cold_planner_is_counter_identical_to_no_planner(self, kernels):
        rows = default_rows(48)
        with_planner = build_cube(rows)
        without = build_cube(rows)
        for cube in (with_planner, without):
            lattice = MaterializedCube(cube).materialize(
                [["d1.a", "d2.c"], ["d1.b", "d1.a"]]
            )
            cube.attach_lattice(lattice)
        with_planner.attach_planner(QueryPlanner())

        got = _run_mix(with_planner)
        expected = _run_mix(without)
        for g, e in zip(got, expected):
            assert g.equals(e)
        planned, legacy = with_planner.lattice.stats, without.lattice.stats
        assert planned.exact_hits == legacy.exact_hits
        assert planned.rollup_hits == legacy.rollup_hits
        assert planned.fallbacks == legacy.fallbacks
        # and the decisions it did make were all cold-stats preservations
        routes = with_planner.planner.route_counts
        assert set(routes) <= {"node:cold_stats"}


class TestExplainAccuracy:
    def _calibrated_cube(self):
        cube = build_cube(default_rows(120))
        lattice = MaterializedCube(cube).materialize([["d1.a", "d2.c"]])
        cube.attach_lattice(lattice)
        planner = QueryPlanner()
        cube.attach_planner(planner)
        # seed both route kinds from real executions: covered queries for
        # the node calibration, an uncovered level for the base one
        for _ in range(planner.config.min_samples + 1):
            cube.aggregate(["d1.a"], {"n": ("records", "size")})
            cube.aggregate(["d1.b"], {"n": ("records", "size")})
        assert planner.cost.calibrated()
        return cube

    def _explain(self, cube, levels, aggregations):
        _result, plan = profile(
            "query", lambda: cube.aggregate(levels, aggregations)
        )
        return ExplainReport(query="q", plan=plan)

    def test_cost_stats_fields_present_on_both_routes(self):
        cube = self._calibrated_cube()
        covered = self._explain(cube, ["d1.a"], {"n": ("records", "size")})
        entries = covered.cost_stats()
        assert entries, "planned stages must surface est_cost_ms"
        assert {"op", "est_cost_ms", "actual_ms"} <= set(entries[0])
        uncovered = self._explain(cube, ["d1.b"], {"n": ("records", "size")})
        ops = [entry["op"] for entry in uncovered.cost_stats()]
        assert "scan.base" in ops

    def test_estimates_within_declared_bounds_on_seeded_workload(self):
        cube = self._calibrated_cube()
        reports = [
            self._explain(cube, ["d1.a"], {"n": ("records", "size")}),
            self._explain(cube, ["d1.b"], {"n": ("records", "size")}),
        ]
        checked = 0
        for report in reports:
            for entry in report.cost_stats():
                actual = max(entry["actual_ms"], 1e-3)
                est = max(entry["est_cost_ms"], 1e-3)
                assert est <= actual * ACCURACY_FACTOR, entry
                assert est >= actual / ACCURACY_FACTOR, entry
                checked += 1
        assert checked >= 2

    def test_base_scan_estimate_rides_on_the_scan_span(self):
        cube = self._calibrated_cube()
        report = self._explain(cube, ["d1.b"], {"n": ("records", "size")})
        scan = report.plan.find("scan.base")
        assert scan is not None
        assert "est_cost_ms" in scan.attrs
        assert "est_rows" in scan.attrs
