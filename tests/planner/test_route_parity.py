"""Oracle-backed route parity: every plannable route ≡ the base scan.

The planner may answer a covered query three ways — the exact/finer
materialized node, a partial rollup from a coarser-grained query over
that node, or a (possibly re-routed) base scan.  Whatever it picks must
be **byte-identical** to the un-planned base-scan oracle, on both
kernel paths.  Hypothesis drives random tables, grouping sets,
aggregation mixes and predicates through all three routes; each route
is forced via injected calibrations so the property genuinely exercises
the router rather than whatever the timings happen to prefer.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.olap.materialized import MaterializedCube
from repro.planner import QueryPlanner
from repro.tabular.expressions import col

from tests.planner._star import LEVELS, build_cube, calibrate

#: output name -> (target, func); ``v`` is non-additive so no sum
AGG_CHOICES = {
    "n": ("records", "size"),
    "total": ("m", "sum"),
    "m_count": ("m", "count"),
    "m_min": ("m", "min"),
    "m_max": ("m", "max"),
    "v_mean": ("v", "mean"),
    "v_count": ("v", "count"),
}


@contextmanager
def kernel_env(scalar: bool):
    previous = os.environ.get("REPRO_SCALAR_KERNELS")
    if scalar:
        os.environ["REPRO_SCALAR_KERNELS"] = "1"
    else:
        os.environ.pop("REPRO_SCALAR_KERNELS", None)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCALAR_KERNELS", None)
        else:
            os.environ["REPRO_SCALAR_KERNELS"] = previous


@st.composite
def cases(draw):
    n = draw(st.integers(1, 40))
    rows = [
        {
            "a": draw(st.sampled_from(["a0", "a1", "a2", "a3"])),
            "b": draw(st.sampled_from(["b0", "b1", "b2"])),
            "c": draw(st.integers(0, 4)),
            "m": draw(st.integers(-9, 99)),
            # 1/32 binary grid: dyadic floats sum exactly in any order,
            # so a rolled-up Σsum/Σcount mean is byte-equal to the base
            # scan's (same convention as tests/dgms/test_incremental.py)
            "v": draw(
                st.one_of(
                    st.none(),
                    st.integers(-1600, 1600).map(lambda x: x / 32.0),
                )
            ),
        }
        for _ in range(n)
    ]
    levels = draw(
        st.lists(st.sampled_from(LEVELS), unique=True, min_size=1, max_size=3)
    )
    names = draw(
        st.lists(
            st.sampled_from(sorted(AGG_CHOICES)),
            unique=True, min_size=1, max_size=3,
        )
    )
    aggregations = {name: AGG_CHOICES[name] for name in names}
    predicate = draw(
        st.sampled_from(
            [
                None,
                ("d1.a", draw(st.sampled_from(["a0", "a1", "a2", "a3"]))),
                ("d2.c", draw(st.integers(0, 4))),
            ]
        )
    )
    return rows, levels, aggregations, predicate


def _filters(predicate):
    if predicate is None:
        return None
    column, value = predicate
    return col(column).eq(value)


def _run_route(rows, levels, aggregations, predicate, cheap):
    """Build a planner-routed cube, answer, and return (result, oracle, lookup)."""
    cube = build_cube(rows)
    lattice = MaterializedCube(cube).materialize([list(LEVELS)])
    cube.attach_lattice(lattice)
    planner = QueryPlanner()
    calibrate(planner, cheap=cheap)
    cube.attach_planner(planner)
    routed = cube.aggregate(levels, aggregations, filters=_filters(predicate))
    oracle = cube._aggregate_base(
        levels, aggregations, filters=_filters(predicate)
    )
    return routed, oracle, lattice


@given(cases())
@settings(max_examples=30, deadline=None)
def test_node_route_matches_base_oracle(case):
    """Node answers (exact hits and partial rollups) are byte-identical."""
    rows, levels, aggregations, predicate = case
    for scalar in (False, True):
        with kernel_env(scalar):
            routed, oracle, lattice = _run_route(
                rows, levels, aggregations, predicate, cheap="node"
            )
            assert routed.equals(oracle), f"scalar={scalar}"
            # the cheap-node calibration must actually keep the lattice route
            assert lattice.stats.exact_hits + lattice.stats.rollup_hits == 1


@given(cases())
@settings(max_examples=30, deadline=None)
def test_planner_reroute_matches_base_oracle(case):
    """Cost re-routes to the base scan answer exactly like the oracle."""
    rows, levels, aggregations, predicate = case
    for scalar in (False, True):
        with kernel_env(scalar):
            routed, oracle, lattice = _run_route(
                rows, levels, aggregations, predicate, cheap="base"
            )
            assert routed.equals(oracle), f"scalar={scalar}"
            # the cheap-base calibration must actually force the re-route
            assert lattice.stats.fallbacks == 1


@given(cases())
@settings(max_examples=20, deadline=None)
def test_partial_rollup_from_coarser_node(case):
    """A query answered by rolling up a strictly finer node stays exact."""
    rows, levels, aggregations, predicate = case
    # force the rollup case: materialize only the full-grain node and
    # query a strict subset of its levels
    sub_levels = levels[:-1] if len(levels) > 1 else levels
    for scalar in (False, True):
        with kernel_env(scalar):
            cube = build_cube(rows)
            lattice = MaterializedCube(cube).materialize([list(LEVELS)])
            cube.attach_lattice(lattice)
            planner = QueryPlanner()
            calibrate(planner, cheap="node")
            cube.attach_planner(planner)
            routed = cube.aggregate(
                sub_levels, aggregations, filters=_filters(predicate)
            )
            oracle = cube._aggregate_base(
                sub_levels, aggregations, filters=_filters(predicate)
            )
            assert routed.equals(oracle), f"scalar={scalar}"


@given(cases())
@settings(max_examples=20, deadline=None)
def test_kernel_paths_agree_on_routed_answers(case):
    """The same routed query is byte-identical across kernel builds."""
    rows, levels, aggregations, predicate = case
    results = []
    for scalar in (False, True):
        with kernel_env(scalar):
            routed, _oracle, _lattice = _run_route(
                rows, levels, aggregations, predicate, cheap="node"
            )
            results.append(routed)
    assert results[0].equals(results[1])
