"""Tests for Markov absorption analysis (expected steps to a stage)."""

import pytest

from repro.errors import PredictionError
from repro.prediction.markov import StageTransitionModel


def test_expected_steps_simple_chain():
    """A deterministic a->b->c chain takes exactly 2 and 1 steps."""
    model = StageTransitionModel(smoothing=0.0).fit(
        [["a", "b", "c"]] * 10
    )
    steps = model.expected_steps_to("c")
    assert steps["c"] == 0.0
    assert steps["b"] == pytest.approx(1.0)
    assert steps["a"] == pytest.approx(2.0)


def test_expected_steps_geometric():
    """With P(progress)=0.5 per step, expectation is 1/0.5 = 2."""
    sequences = [["x", "x"], ["x", "y"]] * 20  # half stay, half progress
    model = StageTransitionModel(smoothing=0.0).fit(sequences)
    steps = model.expected_steps_to("y")
    assert steps["x"] == pytest.approx(2.0)


def test_smoothed_cohort_model_orders_stages(cohort):
    """Closer stages reach 'Diabetic' sooner in the cohort model."""
    from repro.discri.schemes import FBG_SCHEME
    from repro.prediction.trajectory import TrajectoryPredictor

    rows = []
    for row in cohort.select(["patient_id", "visit_date", "fbg"]).iter_rows():
        if row["fbg"] is None:
            continue
        rows.append(
            {
                "pid": row["patient_id"],
                "when": row["visit_date"],
                "stage": FBG_SCHEME.assign(row["fbg"]),
            }
        )
    rows.sort(key=lambda r: (r["pid"], r["when"]))
    for order, row in enumerate(rows):
        row["order"] = order
    predictor = TrajectoryPredictor(rows, "pid", "order", "stage")
    steps = predictor.model.expected_steps_to("Diabetic")
    assert steps["Diabetic"] == 0.0
    assert steps["preDiabetic"] < steps["very good"]


def test_unknown_target_rejected():
    model = StageTransitionModel().fit([["a", "b"]])
    with pytest.raises(PredictionError, match="unknown target"):
        model.expected_steps_to("zz")


def test_unreachable_target_is_infinite():
    model = StageTransitionModel(smoothing=0.0).fit(
        [["a", "a", "a"], ["b", "c"]]
    )
    steps = model.expected_steps_to("c")
    assert steps["a"] == float("inf") or steps["a"] > 1e12
