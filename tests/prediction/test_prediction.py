"""Tests for similarity retrieval, Markov stages and trajectories."""

import pytest

from repro.errors import PredictionError
from repro.prediction.markov import StageTransitionModel
from repro.prediction.similarity import SimilarPatientIndex
from repro.prediction.trajectory import (
    TrajectoryPredictor,
    extract_stage_sequences,
)


@pytest.fixture()
def sequences():
    return [
        ["normal", "normal", "preDiabetic"],
        ["normal", "preDiabetic", "Diabetic"],
        ["preDiabetic", "Diabetic", "Diabetic"],
        ["normal", "normal", "normal"],
        ["preDiabetic", "preDiabetic", "Diabetic"],
    ]


class TestStageModel:
    def test_distribution_sums_to_one(self, sequences):
        model = StageTransitionModel().fit(sequences)
        for stage in model.states:
            assert sum(model.distribution_after(stage).values()) == pytest.approx(1.0)

    def test_predicts_forward_progression(self, sequences):
        model = StageTransitionModel().fit(sequences)
        assert model.predict_next("preDiabetic") == "Diabetic"

    def test_diabetic_absorbing_in_data(self, sequences):
        model = StageTransitionModel().fit(sequences)
        assert model.predict_next("Diabetic") == "Diabetic"

    def test_smoothing_keeps_unseen_transitions_possible(self, sequences):
        model = StageTransitionModel(smoothing=0.5).fit(sequences)
        assert model.transition_probability("Diabetic", "normal") > 0.0

    def test_unknown_stage_raises(self, sequences):
        model = StageTransitionModel().fit(sequences)
        with pytest.raises(PredictionError, match="unknown stage"):
            model.transition_probability("cured", "normal")

    def test_no_transitions_rejected(self):
        with pytest.raises(PredictionError):
            StageTransitionModel().fit([["only"]])

    def test_predict_path_length(self, sequences):
        model = StageTransitionModel().fit(sequences)
        assert len(model.predict_path("normal", 3)) == 3

    def test_stationary_sums_to_one(self, sequences):
        model = StageTransitionModel().fit(sequences)
        assert sum(model.stationary_hint().values()) == pytest.approx(1.0)

    def test_sequence_likelihood_in_unit_interval(self, sequences):
        model = StageTransitionModel().fit(sequences)
        likelihood = model.sequence_likelihood(["normal", "preDiabetic", "Diabetic"])
        assert 0.0 < likelihood < 1.0

    def test_likelihood_needs_two_stages(self, sequences):
        model = StageTransitionModel().fit(sequences)
        with pytest.raises(PredictionError):
            model.sequence_likelihood(["normal"])


class TestSimilarity:
    @pytest.fixture()
    def index(self):
        rows = [
            {"pid": 1, "age": 60, "sex": "F", "bmi": 28.0},
            {"pid": 2, "age": 62, "sex": "F", "bmi": 29.0},
            {"pid": 3, "age": 30, "sex": "M", "bmi": 22.0},
        ]
        return SimilarPatientIndex(rows, ["age", "sex", "bmi"], "pid")

    def test_identical_is_most_similar(self, index):
        probe = {"pid": 99, "age": 60, "sex": "F", "bmi": 28.0}
        ranked = index.most_similar(probe, top=3)
        assert ranked[0][1]["pid"] == 1
        assert ranked[0][0] == pytest.approx(1.0)

    def test_same_patient_excluded(self, index):
        probe = {"pid": 1, "age": 60, "sex": "F", "bmi": 28.0}
        ranked = index.most_similar(probe, top=3)
        assert all(row["pid"] != 1 for __, row in ranked)

    def test_missing_attribute_scores_zero(self, index):
        probe = {"pid": 99, "age": 60}
        full = {"pid": 98, "age": 60, "sex": "F", "bmi": 28.0}
        assert index.similarity(probe, full) == pytest.approx(1 / 3)

    def test_cohort_threshold(self, index):
        probe = {"pid": 99, "age": 61, "sex": "F", "bmi": 28.5}
        cohort = index.cohort_for(probe, min_similarity=0.9)
        assert {row["pid"] for row in cohort} == {1, 2}

    def test_empty_rows_rejected(self):
        with pytest.raises(PredictionError):
            SimilarPatientIndex([], ["a"], "pid")


@pytest.fixture()
def visit_rows():
    rows = []
    sequences = {
        1: ["normal", "preDiabetic", "Diabetic"],
        2: ["normal", "normal", "preDiabetic"],
        3: ["preDiabetic", "Diabetic", "Diabetic"],
        4: ["normal", "preDiabetic", "Diabetic"],
        5: ["preDiabetic", "preDiabetic", "Diabetic"],
        6: ["normal", "normal", "normal"],
    }
    for pid, stages in sequences.items():
        for visit, stage in enumerate(stages, start=1):
            rows.append(
                {"pid": pid, "visit": visit, "stage": stage, "age": 55 + pid}
            )
    return rows


class TestTrajectory:
    def test_extract_sequences_ordered(self, visit_rows):
        shuffled = list(reversed(visit_rows))
        sequences = extract_stage_sequences(shuffled, "pid", "visit", "stage")
        assert sequences[1] == ["normal", "preDiabetic", "Diabetic"]

    def test_extract_skips_nulls(self):
        rows = [
            {"pid": 1, "visit": 1, "stage": "a"},
            {"pid": 1, "visit": 2, "stage": None},
            {"pid": 1, "visit": 3, "stage": "b"},
        ]
        assert extract_stage_sequences(rows, "pid", "visit", "stage")[1] == ["a", "b"]

    def test_predict_next_stage(self, visit_rows):
        predictor = TrajectoryPredictor(visit_rows, "pid", "visit", "stage")
        stage, distribution = predictor.predict_next_stage(
            {"pid": 99, "stage": "preDiabetic"}
        )
        assert stage == "Diabetic"
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_missing_stage_rejected(self, visit_rows):
        predictor = TrajectoryPredictor(visit_rows, "pid", "visit", "stage")
        with pytest.raises(PredictionError):
            predictor.predict_next_stage({"pid": 99})

    def test_known_trajectory_supported(self, visit_rows):
        predictor = TrajectoryPredictor(visit_rows, "pid", "visit", "stage")
        validation = predictor.validate_trajectory(
            ["normal", "preDiabetic", "Diabetic"]
        )
        assert validation.supported
        assert validation.relative_plausibility > 0.5

    def test_implausible_trajectory_unsupported(self, visit_rows):
        predictor = TrajectoryPredictor(visit_rows, "pid", "visit", "stage")
        validation = predictor.validate_trajectory(
            ["Diabetic", "normal", "Diabetic", "normal"]
        )
        assert not validation.supported

    def test_similarity_conditioning_used(self, visit_rows):
        predictor = TrajectoryPredictor(
            visit_rows, "pid", "visit", "stage", similarity_attributes=["age"]
        )
        stage, __ = predictor.predict_next_stage(
            {"pid": 99, "stage": "preDiabetic", "age": 58}
        )
        assert stage in ("preDiabetic", "Diabetic")

    def test_no_usable_sequences_rejected(self):
        rows = [{"pid": 1, "visit": 1, "stage": "a"}]
        with pytest.raises(PredictionError):
            TrajectoryPredictor(rows, "pid", "visit", "stage")
