"""Tests for the cohort progression simulator."""

import pytest

from repro.errors import PredictionError
from repro.prediction.markov import StageTransitionModel
from repro.prediction.simulation import CohortSimulator


@pytest.fixture()
def model():
    sequences = [
        ["normal", "normal", "preDiabetic"],
        ["normal", "preDiabetic", "Diabetic"],
        ["preDiabetic", "Diabetic", "Diabetic"],
        ["normal", "normal", "normal"],
        ["preDiabetic", "preDiabetic", "Diabetic"],
        ["Diabetic", "Diabetic", "Diabetic"],
    ]
    return StageTransitionModel(smoothing=0.2).fit(sequences)


@pytest.fixture()
def simulator(model):
    return CohortSimulator(model)


class TestExpectedProjection:
    def test_size_conserved(self, simulator):
        projection = simulator.project_expected(
            {"normal": 100, "preDiabetic": 40, "Diabetic": 20}, periods=5
        )
        for step in projection.steps:
            assert step.total() == pytest.approx(160.0)

    def test_diabetic_fraction_grows(self, simulator):
        projection = simulator.project_expected(
            {"normal": 100, "preDiabetic": 40, "Diabetic": 20}, periods=6
        )
        series = projection.series("Diabetic")
        assert series[-1] > series[0]
        # monotone under a forward-progressing model
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_step_zero_is_initial(self, simulator):
        projection = simulator.project_expected({"normal": 10}, periods=2)
        assert projection.steps[0].counts["normal"] == 10.0

    def test_unknown_stage_rejected(self, simulator):
        with pytest.raises(PredictionError, match="unknown stages"):
            simulator.project_expected({"cured": 5}, periods=1)

    def test_empty_cohort_rejected(self, simulator):
        with pytest.raises(PredictionError):
            simulator.project_expected({"normal": 0}, periods=1)

    def test_negative_count_rejected(self, simulator):
        with pytest.raises(PredictionError):
            simulator.project_expected({"normal": -1}, periods=1)

    def test_bad_periods(self, simulator):
        with pytest.raises(PredictionError):
            simulator.project_expected({"normal": 10}, periods=0)

    def test_to_text(self, simulator):
        projection = simulator.project_expected({"normal": 10}, periods=2)
        text = projection.to_text()
        assert "period" in text and "Diabetic" in text


class TestMonteCarlo:
    def test_mean_close_to_expected(self, simulator):
        initial = {"normal": 60, "preDiabetic": 30, "Diabetic": 10}
        expected = simulator.project_expected(initial, periods=3)
        sampled, bands = simulator.project_monte_carlo(
            initial, periods=3, runs=200, seed=1
        )
        for state in ("normal", "preDiabetic", "Diabetic"):
            assert sampled.final().counts[state] == pytest.approx(
                expected.final().counts[state], abs=6.0
            )
            low, high = bands[state]
            assert low <= high

    def test_deterministic_given_seed(self, simulator):
        initial = {"normal": 30, "Diabetic": 10}
        a, __ = simulator.project_monte_carlo(initial, 2, runs=20, seed=5)
        b, __ = simulator.project_monte_carlo(initial, 2, runs=20, seed=5)
        assert a.final().counts == b.final().counts

    def test_size_conserved_each_run(self, simulator):
        projection, __ = simulator.project_monte_carlo(
            {"normal": 25, "Diabetic": 5}, periods=4, runs=10, seed=0
        )
        for step in projection.steps:
            assert step.total() == pytest.approx(30.0)


class TestStrategicIntegration:
    def test_project_case_mix(self):
        from repro.dgms.system import DDDGMS
        from repro.dgms.users import StrategicSession
        from repro.discri.generator import DiScRiGenerator

        system = DDDGMS(DiScRiGenerator(n_patients=120, seed=37).generate())
        session = StrategicSession(system, "admin")
        projection = session.project_case_mix(periods=3)
        assert len(projection.steps) == 4
        assert projection.final().total() > 0
        assert any("projected" in line for line in session.journal)
