"""Tests for the exception hierarchy's contracts."""

import pytest

import repro.errors as errors
from repro.errors import (
    ColumnNotFoundError,
    LexError,
    ReproError,
    TableNotFoundError,
    UnknownMemberError,
)


def _error_classes():
    return [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]


def test_every_library_error_derives_from_repro_error():
    for cls in _error_classes():
        assert issubclass(cls, ReproError), cls


def test_keyerror_subclasses_render_messages_unquoted():
    """KeyError normally repr()s its message; ours must stay readable."""
    for exc in (
        ColumnNotFoundError("age", ["a", "b"]),
        TableNotFoundError("table 'x' not found"),
        UnknownMemberError("no member 7"),
    ):
        assert isinstance(exc, KeyError)
        assert not str(exc).startswith('"')
        assert not str(exc).startswith("'")


def test_column_not_found_lists_available():
    exc = ColumnNotFoundError("age", ["fbg", "bmi"])
    assert "fbg" in str(exc) and "bmi" in str(exc)


def test_lex_error_carries_position():
    exc = LexError("bad character", 17)
    assert exc.position == 17
    assert "17" in str(exc)


def test_catching_base_class_at_api_boundary():
    from repro.tabular import Table

    table = Table.from_rows([{"a": 1}])
    with pytest.raises(ReproError):
        table.column("missing")
