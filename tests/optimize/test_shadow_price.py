"""Tests for the budget shadow price (LP duals)."""

import pytest

from repro.optimize.regimen import (
    RegimenProblem,
    TreatmentOutcome,
    optimize_regimen,
)


def _problem(budget: float) -> RegimenProblem:
    return RegimenProblem(
        group_sizes={"pre": 100, "diab": 50},
        outcomes=[
            TreatmentOutcome("pre", "lifestyle", 0.4, 100),
            TreatmentOutcome("pre", "drug", 0.5, 300),
            TreatmentOutcome("diab", "drug", 0.8, 300),
            TreatmentOutcome("diab", "intensive", 1.1, 900),
        ],
        budget=budget,
    )


def test_shadow_price_positive_when_budget_binds():
    plan = optimize_regimen(_problem(10_000))
    assert plan.total_cost == pytest.approx(10_000)
    assert plan.budget_shadow_price is not None
    assert plan.budget_shadow_price > 0


def test_shadow_price_zero_when_budget_slack():
    plan = optimize_regimen(_problem(10**7))
    assert plan.total_cost < 10**7
    assert plan.budget_shadow_price == pytest.approx(0.0)


def test_shadow_price_predicts_marginal_benefit():
    """The dual matches the finite-difference benefit of +Δ budget."""
    base = optimize_regimen(_problem(20_000))
    bumped = optimize_regimen(_problem(20_000 + 100))
    finite_difference = (bumped.total_benefit - base.total_benefit) / 100
    assert base.budget_shadow_price == pytest.approx(
        finite_difference, rel=1e-6, abs=1e-9
    )


def test_shadow_price_in_summary():
    text = optimize_regimen(_problem(10_000)).summary()
    assert "marginal benefit" in text
