"""Tests for consistency checking and the two LP optimisers."""

import pytest

from repro.errors import OptimizationError
from repro.olap.cube import Cube
from repro.optimize.consistency import (
    check_dimension_consistency,
    find_optimal_aggregate,
)
from repro.optimize.regimen import (
    RegimenProblem,
    TreatmentOutcome,
    optimize_regimen,
)
from repro.optimize.screening import allocate_screening
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.fact import Measure
from repro.warehouse.feedback import outcome_dimension
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


@pytest.fixture()
def dynamic():
    rows = [
        {"band": "60-80", "sex": "F", "extra": "x", "fbg": 8.0},
        {"band": "60-80", "sex": "F", "extra": "y", "fbg": 7.6},
        {"band": "60-80", "sex": "M", "extra": "x", "fbg": 6.0},
        {"band": "40-60", "sex": "F", "extra": "y", "fbg": 5.5},
        {"band": "40-60", "sex": "M", "extra": "x", "fbg": 5.0},
    ]
    loader = WarehouseLoader(
        "w", "f",
        [
            DimensionSpec(Dimension("p", {"band": "str", "sex": "str"})),
            DimensionSpec(Dimension("e", {"extra": "str"})),
        ],
        [Measure.of("fbg", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return DynamicWarehouse(loader.schema)


class TestOptimalAggregate:
    def test_finds_max_cell(self, dynamic):
        best = find_optimal_aggregate(
            Cube(dynamic), ["p.band", "p.sex"], "fbg", "mean", "max"
        )
        assert best.cell == ("60-80", "F")
        assert best.value == pytest.approx(7.8)

    def test_finds_min_cell(self, dynamic):
        best = find_optimal_aggregate(
            Cube(dynamic), ["p.band"], "fbg", "mean", "min"
        )
        assert best.cell == ("40-60",)

    def test_min_records_excludes_thin_cells(self, dynamic):
        best = find_optimal_aggregate(
            Cube(dynamic), ["p.band", "p.sex"], "fbg", "mean", "max", min_records=2
        )
        assert best.cell == ("60-80", "F")
        with pytest.raises(OptimizationError):
            find_optimal_aggregate(
                Cube(dynamic), ["p.band", "p.sex"], "fbg", "mean", "max",
                min_records=10,
            )

    def test_bad_direction(self, dynamic):
        with pytest.raises(OptimizationError):
            find_optimal_aggregate(Cube(dynamic), ["p.band"], "fbg", "mean", "best")

    def test_describe(self, dynamic):
        best = find_optimal_aggregate(Cube(dynamic), ["p.band"], "fbg")
        assert "mean(fbg)" in best.describe()


class TestConsistency:
    def test_paper_claim_holds(self, dynamic):
        """Removing/adding off-axis dimensions never moves the optimum."""
        report = check_dimension_consistency(
            dynamic, ["p.band", "p.sex"], "fbg",
            removable=["e"],
            addable=[(outcome_dimension("o", ["a", "b"]), None)],
        )
        assert report.consistent
        assert len(report.perturbations) == 2

    def test_warehouse_restored_after_check(self, dynamic):
        before = set(dynamic.dimension_names)
        check_dimension_consistency(
            dynamic, ["p.band"], "fbg", removable=["e"]
        )
        assert set(dynamic.dimension_names) == before
        assert Cube(dynamic).flat.column("e.extra").null_count == 0

    def test_cannot_remove_grouping_dimension(self, dynamic):
        with pytest.raises(OptimizationError, match="grouping level"):
            check_dimension_consistency(
                dynamic, ["p.band"], "fbg", removable=["p"]
            )

    def test_summary_text(self, dynamic):
        report = check_dimension_consistency(
            dynamic, ["p.band"], "fbg", removable=["e"]
        )
        assert "consistent: True" in report.summary()


class TestRegimen:
    @pytest.fixture()
    def problem(self):
        return RegimenProblem(
            group_sizes={"pre": 100, "diab": 50},
            outcomes=[
                TreatmentOutcome("pre", "lifestyle", 0.4, 100),
                TreatmentOutcome("pre", "drug", 0.5, 300),
                TreatmentOutcome("diab", "drug", 0.8, 300),
                TreatmentOutcome("diab", "intensive", 1.1, 900),
            ],
            budget=30_000,
        )

    def test_respects_budget(self, problem):
        plan = optimize_regimen(problem)
        assert plan.total_cost <= problem.budget + 1e-6

    def test_respects_group_sizes(self, problem):
        plan = optimize_regimen(problem)
        coverage = plan.coverage(problem.group_sizes)
        assert all(fraction <= 1.0 + 1e-9 for fraction in coverage.values())

    def test_bigger_budget_never_worse(self, problem):
        small = optimize_regimen(problem)
        problem_large = RegimenProblem(
            problem.group_sizes, problem.outcomes, budget=60_000
        )
        large = optimize_regimen(problem_large)
        assert large.total_benefit >= small.total_benefit - 1e-9

    def test_prefers_cost_effective_treatment_when_tight(self):
        problem = RegimenProblem(
            group_sizes={"g": 10},
            outcomes=[
                TreatmentOutcome("g", "cheap", 0.5, 100),   # 0.005 / $
                TreatmentOutcome("g", "pricey", 0.6, 1000),  # 0.0006 / $
            ],
            budget=1000,
        )
        plan = optimize_regimen(problem)
        assert plan.assignments.get(("g", "cheap"), 0) == pytest.approx(10)

    def test_full_coverage_infeasible_when_budget_too_small(self):
        problem = RegimenProblem(
            group_sizes={"g": 100},
            outcomes=[TreatmentOutcome("g", "t", 0.5, 100)],
            budget=100,
            full_coverage=True,
        )
        with pytest.raises(OptimizationError, match="infeasible"):
            optimize_regimen(problem)

    def test_capacity_caps(self, problem):
        problem.capacity = {("diab", "intensive"): 5.0}
        plan = optimize_regimen(problem)
        assert plan.assignments.get(("diab", "intensive"), 0.0) <= 5.0 + 1e-9

    def test_unknown_group_rejected(self):
        with pytest.raises(OptimizationError, match="unknown group"):
            RegimenProblem(
                group_sizes={"a": 1},
                outcomes=[TreatmentOutcome("b", "t", 1, 1)],
                budget=10,
            ).validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(OptimizationError):
            TreatmentOutcome("g", "t", 1.0, -5.0)

    def test_summary_text(self, problem):
        assert "budget" in optimize_regimen(problem).summary()


class TestScreening:
    def test_prioritises_high_detection_groups(self):
        allocation = allocate_screening(
            {"rural": 500, "urban": 2000},
            {"rural": 0.12, "urban": 0.06},
            capacity=800,
        )
        assert allocation.slots["rural"] == pytest.approx(500)
        assert allocation.slots["urban"] == pytest.approx(300)

    def test_capacity_binding(self):
        allocation = allocate_screening(
            {"a": 100, "b": 100}, {"a": 0.2, "b": 0.1}, capacity=50
        )
        assert sum(allocation.slots.values()) == pytest.approx(50)

    def test_equity_floors(self):
        allocation = allocate_screening(
            {"a": 100, "b": 100}, {"a": 0.2, "b": 0.01},
            capacity=100, min_slots={"b": 30},
        )
        assert allocation.slots["b"] >= 30 - 1e-9

    def test_floor_above_population_rejected(self):
        with pytest.raises(OptimizationError, match="population"):
            allocate_screening({"a": 10}, {"a": 0.1}, 50, min_slots={"a": 20})

    def test_floors_exceed_capacity_rejected(self):
        with pytest.raises(OptimizationError, match="exceed"):
            allocate_screening(
                {"a": 100, "b": 100}, {"a": 0.1, "b": 0.1},
                capacity=10, min_slots={"a": 8, "b": 8},
            )

    def test_unknown_group_rates_rejected(self):
        with pytest.raises(OptimizationError):
            allocate_screening({"a": 10}, {"zz": 0.1}, 5)
