"""Shared fixtures: one small deterministic cohort per test session.

The cohort, warehouse and cube are expensive to build, so they are
session-scoped; tests must treat them as read-only (tests that mutate the
warehouse build their own via the factory fixtures).
"""

from __future__ import annotations

import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import DiscriWarehouse, build_discri_warehouse
from repro.olap.cube import Cube
from repro.tabular.table import Table

COHORT_SEED = 1234
COHORT_PATIENTS = 250


@pytest.fixture(autouse=True)
def _faults_from_env():
    """Arm the ``REPRO_FAULTS`` plan, with fresh hit counters, per test.

    Unset (the normal case) this is a no-op.  CI's fault-injection job
    exports a profile so every suite runs with the durability
    instrumentation armed; tests that need specific faults install their
    own plan via ``faults.injected``, which takes precedence.
    """
    from repro.storage import faults

    plan = faults.plan_from_env()
    if plan is None:
        yield
        return
    faults.install(plan)
    try:
        yield
    finally:
        faults.uninstall()


@pytest.fixture(autouse=True)
def _fresh_breakers():
    """Reset the process-global circuit breakers around every test.

    Breakers are deliberately process-wide (one lattice, one pool), so a
    test that trips one must not leak an open breaker — and its
    degraded rung — into the next test.
    """
    from repro.serving.resilience import reset_breakers

    reset_breakers()
    yield
    reset_breakers()


@pytest.fixture(scope="session", autouse=True)
def _obs_from_env():
    """Honour ``REPRO_OBS`` for the whole suite.

    CI runs tier-1 once with ``REPRO_OBS=console`` so a crash that only
    happens on the instrumentation path (a span attribute referencing a
    renamed variable, say) fails the build; unset, this is a no-op.
    """
    from repro import obs

    obs.configure_from_env()
    yield
    obs.disable()


@pytest.fixture(scope="session")
def cohort() -> Table:
    """A small deterministic DiScRi cohort (read-only)."""
    return DiScRiGenerator(n_patients=COHORT_PATIENTS, seed=COHORT_SEED).generate()


@pytest.fixture(scope="session")
def built(cohort) -> DiscriWarehouse:
    """The cohort's warehouse build (read-only)."""
    return build_discri_warehouse(cohort)


@pytest.fixture(scope="session")
def cube(built) -> Cube:
    """A cube over the session warehouse (read-only)."""
    return Cube(built.warehouse)


@pytest.fixture()
def fresh_built() -> DiscriWarehouse:
    """A private warehouse build for tests that mutate dimensions."""
    table = DiScRiGenerator(n_patients=80, seed=99).generate()
    return build_discri_warehouse(table)


@pytest.fixture()
def tiny_table() -> Table:
    """A tiny mixed-type table reused across tabular tests."""
    return Table.from_rows(
        [
            {"pid": 1, "sex": "F", "age": 61, "fbg": 7.2},
            {"pid": 2, "sex": "M", "age": 45, "fbg": 5.1},
            {"pid": 3, "sex": "F", "age": 72, "fbg": None},
            {"pid": 4, "sex": None, "age": 58, "fbg": 6.3},
        ]
    )
