"""Tests for the MDX extensions: NON EMPTY, TOPCOUNT, FILTER, ORDER,
member CHILDREN."""

import pytest

from repro.errors import EvaluationError, ParseError
from repro.olap.cube import Cube
from repro.olap.mdx.ast import FilterSet, MemberChildren, OrderSet, TopCount
from repro.olap.mdx.evaluator import execute_mdx
from repro.olap.mdx.parser import parse_mdx
from repro.tabular import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


@pytest.fixture()
def cube():
    rows = [
        {"gender": "F", "b10": "70-80", "b5": "70-75", "pid": 1, "fbg": 7.0},
        {"gender": "F", "b10": "70-80", "b5": "70-75", "pid": 1, "fbg": 7.5},
        {"gender": "M", "b10": "70-80", "b5": "70-75", "pid": 2, "fbg": 8.0},
        {"gender": "F", "b10": "70-80", "b5": "75-80", "pid": 3, "fbg": 6.5},
        {"gender": "M", "b10": "40-50", "b5": "40-45", "pid": 4, "fbg": 5.0},
        {"gender": "M", "b10": "40-50", "b5": "45-50", "pid": 5, "fbg": 5.2},
    ]
    loader = WarehouseLoader(
        "discri", "facts",
        [
            DimensionSpec(
                Dimension(
                    "p",
                    {"gender": "str", "b10": "str", "b5": "str", "pid": "int"},
                    hierarchies=[Hierarchy("age", ["b10", "b5"])],
                )
            )
        ],
        [Measure.of("fbg", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


class TestParsing:
    def test_non_empty_flags(self):
        query = parse_mdx(
            "SELECT NON EMPTY [p].[gender].MEMBERS ON COLUMNS, "
            "NON EMPTY [p].[b5].MEMBERS ON ROWS FROM discri"
        )
        assert query.non_empty_columns and query.non_empty_rows

    def test_topcount_node(self):
        query = parse_mdx(
            "SELECT TOPCOUNT([p].[b5].MEMBERS, 2) ON COLUMNS FROM discri"
        )
        assert isinstance(query.columns, TopCount)
        assert query.columns.count == 2

    def test_topcount_with_measure(self):
        query = parse_mdx(
            "SELECT TOPCOUNT([p].[b5].MEMBERS, 2, [Measures].[fbg]) "
            "ON COLUMNS FROM discri"
        )
        assert query.columns.measure.name == "fbg"

    def test_topcount_rejects_fractional(self):
        with pytest.raises(ParseError, match="positive integer"):
            parse_mdx("SELECT TOPCOUNT([p].[b5].MEMBERS, 2.5) ON COLUMNS FROM c")

    def test_filter_node(self):
        query = parse_mdx(
            "SELECT FILTER([p].[b5].MEMBERS, [Measures].[records] >= 2) "
            "ON COLUMNS FROM discri"
        )
        assert isinstance(query.columns, FilterSet)
        assert query.columns.comparator == ">="
        assert query.columns.threshold == 2

    def test_order_node(self):
        query = parse_mdx(
            "SELECT ORDER([p].[b5].MEMBERS, [Measures].[fbg], DESC) "
            "ON COLUMNS FROM discri"
        )
        assert isinstance(query.columns, OrderSet)
        assert query.columns.descending

    def test_order_bad_direction(self):
        # DOWN is not even a keyword; the parser rejects it at the token level
        with pytest.raises(ParseError):
            parse_mdx(
                "SELECT ORDER([p].[b5].MEMBERS, [Measures].[fbg], DOWN) "
                "ON COLUMNS FROM c"
            )
        with pytest.raises(ParseError, match="ASC or DESC"):
            parse_mdx(
                "SELECT ORDER([p].[b5].MEMBERS, [Measures].[fbg], ROWS) "
                "ON COLUMNS FROM c"
            )

    def test_children_node(self):
        query = parse_mdx(
            "SELECT [p].[b10].[70-80].CHILDREN ON COLUMNS FROM discri"
        )
        assert query.columns == MemberChildren("p", "b10", "70-80")

    def test_children_needs_member(self):
        with pytest.raises(ParseError, match="CHILDREN"):
            parse_mdx("SELECT [p].[b10].CHILDREN ON COLUMNS FROM c")

    def test_render_round_trips(self):
        for text in (
            "SELECT NON EMPTY [p].[gender].MEMBERS ON COLUMNS FROM c",
            "SELECT TOPCOUNT([p].[b5].MEMBERS, 3, [Measures].[fbg]) ON COLUMNS FROM c",
            "SELECT FILTER([p].[b5].MEMBERS, [Measures].[records] > 1) ON COLUMNS FROM c",
            "SELECT ORDER([p].[b5].MEMBERS, [Measures].[fbg], DESC) ON COLUMNS FROM c",
            "SELECT [p].[b10].[70-80].CHILDREN ON COLUMNS FROM c",
        ):
            rendered = parse_mdx(text).render()
            assert parse_mdx(rendered).render() == rendered


class TestEvaluation:
    def test_non_empty_drops_empty_rows(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "NON EMPTY [p].[b5].MEMBERS ON ROWS "
            "FROM discri WHERE [p].[b10].[70-80]",
        )
        assert ("40-45",) not in grid.row_keys
        assert ("70-75",) in grid.row_keys

    def test_without_non_empty_rows_remain(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "[p].[b5].MEMBERS ON ROWS "
            "FROM discri WHERE [p].[b10].[70-80]",
        )
        assert ("40-45",) in grid.row_keys

    def test_topcount_by_records(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "TOPCOUNT([p].[b5].MEMBERS, 1) ON ROWS FROM discri",
        )
        assert grid.row_keys == [("70-75",)]
        assert grid.value(("70-75",), ("records",)) == 3

    def test_topcount_by_explicit_measure(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[fbg]} ON COLUMNS, "
            "TOPCOUNT([p].[b5].MEMBERS, 1, [Measures].[fbg]) ON ROWS "
            "FROM discri",
        )
        assert grid.row_keys == [("70-75",)]  # mean fbg 7.5 is the peak

    def test_filter_threshold(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "FILTER([p].[b5].MEMBERS, [Measures].[records] >= 2) ON ROWS "
            "FROM discri",
        )
        assert grid.row_keys == [("70-75",)]

    def test_filter_never_matches(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "FILTER([p].[b5].MEMBERS, [Measures].[records] > 99) ON ROWS "
            "FROM discri",
        )
        assert grid.row_keys == []

    def test_order_descending(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "ORDER([p].[b5].MEMBERS, [Measures].[records], DESC) ON ROWS "
            "FROM discri",
        )
        counts = [grid.value(key, ("records",)) for key in grid.row_keys]
        assert counts == sorted(counts, reverse=True)

    def test_order_ascending_default(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[fbg]} ON COLUMNS, "
            "ORDER([p].[b5].MEMBERS, [Measures].[fbg]) ON ROWS FROM discri",
        )
        means = [grid.value(key, ("fbg",)) for key in grid.row_keys]
        assert means == sorted(means)

    def test_children_resolve_through_hierarchy(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "[p].[b10].[70-80].CHILDREN ON ROWS FROM discri",
        )
        assert set(grid.row_keys) == {("70-75",), ("75-80",)}

    def test_children_without_hierarchy_rejected(self, cube):
        with pytest.raises(EvaluationError, match="hierarchy"):
            execute_mdx(
                cube,
                "SELECT [p].[gender].[F].CHILDREN ON COLUMNS FROM discri",
            )

    def test_children_of_finest_level_rejected(self, cube):
        with pytest.raises(EvaluationError, match="finest"):
            execute_mdx(
                cube,
                "SELECT [p].[b5].[70-75].CHILDREN ON COLUMNS FROM discri",
            )

    def test_topcount_over_crossjoin(self, cube):
        grid = execute_mdx(
            cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "TOPCOUNT(CROSSJOIN([p].[b10].MEMBERS, [p].[gender].MEMBERS), 2) "
            "ON ROWS FROM discri",
        )
        assert len(grid.row_keys) == 2
        assert grid.row_keys[0] == ("70-80", "F")
