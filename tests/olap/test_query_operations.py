"""Tests for the query builder, crosstabs and the OLAP verbs."""

import pytest

from repro.errors import HierarchyError, OLAPError
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube
from repro.olap.operations import dice, drill_down, pivot, roll_up, slice_cube
from repro.tabular import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


@pytest.fixture()
def cube_h():
    rows = [
        {"gender": "F", "b10": "70-80", "b5": "70-75", "pid": 1, "fbg": 7.0},
        {"gender": "M", "b10": "70-80", "b5": "70-75", "pid": 2, "fbg": 8.0},
        {"gender": "F", "b10": "70-80", "b5": "75-80", "pid": 3, "fbg": 6.5},
        {"gender": "M", "b10": "40-50", "b5": "40-45", "pid": 4, "fbg": 5.0},
        {"gender": "F", "b10": "70-80", "b5": "70-75", "pid": 1, "fbg": 7.5},
    ]
    loader = WarehouseLoader(
        "h", "facts",
        [
            DimensionSpec(
                Dimension(
                    "p",
                    {"gender": "str", "b10": "str", "b5": "str", "pid": "int"},
                    hierarchies=[Hierarchy("age", ["b10", "b5"])],
                )
            )
        ],
        [Measure.of("fbg", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


class TestQueryBuilder:
    def test_rows_columns_counts(self, cube_h):
        grid = cube_h.query().rows("b10").columns("gender").count_records().execute()
        assert grid.value(("70-80",), ("F",)) == 3
        assert grid.value(("40-50",), ("F",)) is None

    def test_count_distinct(self, cube_h):
        grid = (
            cube_h.query().rows("b10").columns("gender")
            .count_distinct("pid", name="patients").execute()
        )
        assert grid.value(("70-80",), ("F",)) == 2

    def test_measure_mean(self, cube_h):
        grid = (
            cube_h.query().rows("gender").measure("fbg", "mean").execute()
        )
        assert grid.value(("M",), ("mean_fbg",)) == pytest.approx(6.5)

    def test_where_filters(self, cube_h):
        grid = (
            cube_h.query().rows("b10").columns("gender")
            .count_records().where("gender", "F").execute()
        )
        assert grid.value(("70-80",), ("F",)) == 3
        assert grid.value(("70-80",), ("M",)) is None

    def test_columns_only_query(self, cube_h):
        grid = cube_h.query().columns("gender").count_records().execute()
        assert grid.value(("records",), ("F",)) == 3

    def test_no_axes_rejected(self, cube_h):
        with pytest.raises(OLAPError):
            cube_h.query().count_records().execute()

    def test_empty_where_rejected(self, cube_h):
        with pytest.raises(OLAPError):
            cube_h.query().rows("b10").where("gender")


class TestOperations:
    def test_drill_down_swaps_level(self, cube_h):
        q = cube_h.query().rows("b10").columns("gender").count_records().build()
        q2 = drill_down(q, cube_h, "b10")
        assert q2.rows == ("p.b5",)
        grid = q2.execute(cube_h)
        assert grid.value(("70-75",), ("F",)) == 2

    def test_roll_up_inverse(self, cube_h):
        q = cube_h.query().rows("b5").count_records().build()
        q2 = roll_up(q, cube_h, "b5")
        assert q2.rows == ("p.b10",)

    def test_drill_without_hierarchy_rejected(self, cube_h):
        q = cube_h.query().rows("gender").count_records().build()
        with pytest.raises(HierarchyError):
            drill_down(q, cube_h, "gender")

    def test_drill_level_not_on_axis_rejected(self, cube_h):
        q = cube_h.query().rows("gender").count_records().build()
        with pytest.raises(OLAPError, match="axis"):
            drill_down(q, cube_h, "b10")

    def test_slice_removes_level_and_filters(self, cube_h):
        q = cube_h.query().rows("b10").columns("gender").count_records().build()
        sliced = slice_cube(q, "p.gender", "F")
        assert sliced.columns == ()
        grid = sliced.execute(cube_h)
        assert grid.value(("70-80",), ("records",)) == 3

    def test_dice_restricts_members(self, cube_h):
        q = cube_h.query().rows("b5").columns("gender").count_records().build()
        diced = dice(q, {"p.b5": ["70-75"]})
        grid = diced.execute(cube_h)
        assert [key for key in grid.row_keys] == [("70-75",)]

    def test_dice_empty_rejected(self, cube_h):
        q = cube_h.query().rows("b5").count_records().build()
        with pytest.raises(OLAPError):
            dice(q, {"p.b5": []})

    def test_pivot_swaps_axes(self, cube_h):
        q = cube_h.query().rows("b10").columns("gender").count_records().build()
        swapped = pivot(q)
        assert swapped.rows == ("p.gender",)
        assert swapped.columns == ("p.b10",)

    def test_successive_filters_intersect(self, cube_h):
        q = cube_h.query().rows("b10").count_records().build()
        q = dice(q, {"p.gender": ["F", "M"]})
        q = dice(q, {"p.gender": ["F"]})
        assert q.member_filters["p.gender"] == ("F",)


class TestCrosstab:
    @pytest.fixture()
    def grid(self, cube_h):
        return cube_h.query().rows("b10").columns("gender").count_records().execute()

    def test_totals(self, grid):
        assert grid.grand_total() == 5
        assert grid.row_totals()[("70-80",)] == 4

    def test_series(self, grid):
        series = dict(grid.series("F"))
        assert series[("70-80",)] == 3

    def test_series_unknown_column(self, grid):
        with pytest.raises(OLAPError):
            grid.series("X")

    def test_sorted_rows(self, grid):
        ordered = grid.sorted_rows()
        assert ordered.row_keys == sorted(grid.row_keys, key=str)

    def test_to_table_round_trip(self, grid):
        table = grid.to_table()
        rebuilt = Crosstab.from_aggregate(
            table, grid.row_levels, grid.col_levels, grid.value_name
        )
        assert rebuilt.cells == grid.cells

    def test_to_text_with_totals(self, grid):
        text = grid.to_text(with_totals=True)
        assert "TOTAL" in text
