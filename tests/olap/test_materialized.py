"""Tests for the materialised aggregate lattice."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import OLAPError
from repro.olap.cube import Cube
from repro.olap.materialized import MaterializedCube
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def build_cube(rows):
    loader = WarehouseLoader(
        "m", "f",
        [
            DimensionSpec(Dimension("d", {"g": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("v", "float", "mean"),
         Measure.of("n_add", "int", "sum", additive=True)],
        measure_columns={"n_add": "pid"},
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


@pytest.fixture()
def cube():
    rows = [
        {"g": "F", "band": "a", "pid": 1, "v": 7.0},
        {"g": "F", "band": "a", "pid": 1, "v": 8.0},
        {"g": "M", "band": "a", "pid": 2, "v": 6.0},
        {"g": "F", "band": "b", "pid": 3, "v": 5.0},
        {"g": "M", "band": "b", "pid": 4, "v": 4.0},
    ]
    return build_cube(rows)


@pytest.fixture()
def lattice(cube):
    return MaterializedCube(cube).materialize([["d.g", "d.band"]])


class TestMaterialization:
    def test_nodes_and_storage(self, lattice):
        assert lattice.nodes == [(("d.g", "d.band"), 4)]
        assert lattice.storage_cells() == 4

    def test_empty_group_rejected(self, cube):
        with pytest.raises(OLAPError):
            MaterializedCube(cube).materialize([[]])

    def test_unknown_measure_rejected(self, cube):
        with pytest.raises(Exception):
            MaterializedCube(cube).materialize([["d.g"]], measures=["zz"])


class TestAnswering:
    def test_exact_hit(self, lattice, cube):
        result = lattice.aggregate(["d.g", "d.band"])
        base = cube.aggregate(["d.g", "d.band"])
        assert result.to_rows() == base.to_rows()
        assert lattice.stats.exact_hits == 1

    def test_rollup_counts(self, lattice, cube):
        result = lattice.aggregate(["d.g"])
        base = cube.aggregate(["d.g"])
        assert result.to_rows() == base.to_rows()
        assert lattice.stats.rollup_hits == 1

    def test_rollup_mean_recomposed(self, lattice, cube):
        result = lattice.aggregate(["d.g"], {"m": ("v", "mean")})
        base = cube.aggregate(["d.g"], {"m": ("v", "mean")})
        for got, expected in zip(result.to_rows(), base.to_rows()):
            assert got["m"] == pytest.approx(expected["m"])

    def test_rollup_min_max(self, lattice, cube):
        result = lattice.aggregate(
            ["d.band"], {"lo": ("v", "min"), "hi": ("v", "max")}
        )
        base = cube.aggregate(["d.band"], {"lo": ("v", "min"), "hi": ("v", "max")})
        assert result.to_rows() == base.to_rows()

    def test_additive_sum_rolls_up(self, lattice, cube):
        result = lattice.aggregate(["d.g"], {"s": ("n_add", "sum")})
        base = cube.aggregate(["d.g"], {"s": ("n_add", "sum")})
        assert result.to_rows() == base.to_rows()

    def test_grand_total_from_lattice(self, lattice, cube):
        result = lattice.aggregate([], {"n": ("records", "size")})
        assert result.row(0)["n"] == cube.flat.num_rows
        assert lattice.stats.rollup_hits == 1

    def test_nunique_falls_back(self, lattice):
        result = lattice.aggregate(["d.g"], {"p": ("card.pid", "nunique")})
        assert lattice.stats.fallbacks == 1
        by_g = {row["d.g"]: row["p"] for row in result.to_rows()}
        assert by_g == {"F": 2, "M": 2}

    def test_uncovered_levels_fall_back(self, lattice):
        result = lattice.aggregate(["card.pid"])
        assert lattice.stats.fallbacks == 1
        assert result.num_rows == 4

    def test_non_additive_sum_still_guarded(self, lattice):
        with pytest.raises(OLAPError, match="non-additive"):
            lattice.aggregate(["d.g"], {"s": ("v", "sum")})

    def test_stats_summary(self, lattice):
        lattice.aggregate(["d.g"])
        assert "rolled up" in lattice.stats.summary()


rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "g": st.sampled_from(["F", "M"]),
            "band": st.sampled_from(["a", "b", "c"]),
            "pid": st.integers(1, 6),
            "v": st.floats(0, 50, allow_nan=False),
        }
    ),
    min_size=1,
    max_size=40,
)


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_property_lattice_matches_base(rows):
    """Every lattice answer equals the base cube's answer."""
    cube = build_cube(rows)
    lattice = MaterializedCube(cube).materialize([["d.g", "d.band"]])
    for levels in (["d.g"], ["d.band"], ["d.g", "d.band"]):
        got = lattice.aggregate(
            levels, {"n": ("records", "size"), "m": ("v", "mean")}
        )
        expected = cube.aggregate(
            levels, {"n": ("records", "size"), "m": ("v", "mean")}
        )
        for g_row, e_row in zip(got.to_rows(), expected.to_rows()):
            assert g_row["n"] == e_row["n"]
            if e_row["m"] is None:
                assert g_row["m"] is None
            else:
                assert g_row["m"] == pytest.approx(e_row["m"])
