"""Tests for the materialised aggregate lattice."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import OLAPError
from repro.olap.cube import Cube
from repro.olap.materialized import MaterializedCube
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def build_cube(rows):
    loader = WarehouseLoader(
        "m", "f",
        [
            DimensionSpec(Dimension("d", {"g": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("v", "float", "mean"),
         Measure.of("n_add", "int", "sum", additive=True)],
        measure_columns={"n_add": "pid"},
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


@pytest.fixture()
def cube():
    rows = [
        {"g": "F", "band": "a", "pid": 1, "v": 7.0},
        {"g": "F", "band": "a", "pid": 1, "v": 8.0},
        {"g": "M", "band": "a", "pid": 2, "v": 6.0},
        {"g": "F", "band": "b", "pid": 3, "v": 5.0},
        {"g": "M", "band": "b", "pid": 4, "v": 4.0},
    ]
    return build_cube(rows)


@pytest.fixture()
def lattice(cube):
    return MaterializedCube(cube).materialize([["d.g", "d.band"]])


class TestMaterialization:
    def test_nodes_and_storage(self, lattice):
        assert lattice.nodes == [(("d.g", "d.band"), 4)]
        assert lattice.storage_cells() == 4

    def test_empty_group_rejected(self, cube):
        with pytest.raises(OLAPError):
            MaterializedCube(cube).materialize([[]])

    def test_unknown_measure_rejected(self, cube):
        with pytest.raises(Exception):
            MaterializedCube(cube).materialize([["d.g"]], measures=["zz"])


class TestAnswering:
    def test_exact_hit(self, lattice, cube):
        result = lattice.aggregate(["d.g", "d.band"])
        base = cube.aggregate(["d.g", "d.band"])
        assert result.to_rows() == base.to_rows()
        assert lattice.stats.exact_hits == 1

    def test_rollup_counts(self, lattice, cube):
        result = lattice.aggregate(["d.g"])
        base = cube.aggregate(["d.g"])
        assert result.to_rows() == base.to_rows()
        assert lattice.stats.rollup_hits == 1

    def test_rollup_mean_recomposed(self, lattice, cube):
        result = lattice.aggregate(["d.g"], {"m": ("v", "mean")})
        base = cube.aggregate(["d.g"], {"m": ("v", "mean")})
        for got, expected in zip(result.to_rows(), base.to_rows()):
            assert got["m"] == pytest.approx(expected["m"])

    def test_rollup_min_max(self, lattice, cube):
        result = lattice.aggregate(
            ["d.band"], {"lo": ("v", "min"), "hi": ("v", "max")}
        )
        base = cube.aggregate(["d.band"], {"lo": ("v", "min"), "hi": ("v", "max")})
        assert result.to_rows() == base.to_rows()

    def test_additive_sum_rolls_up(self, lattice, cube):
        result = lattice.aggregate(["d.g"], {"s": ("n_add", "sum")})
        base = cube.aggregate(["d.g"], {"s": ("n_add", "sum")})
        assert result.to_rows() == base.to_rows()

    def test_grand_total_from_lattice(self, lattice, cube):
        result = lattice.aggregate([], {"n": ("records", "size")})
        assert result.row(0)["n"] == cube.flat.num_rows
        assert lattice.stats.rollup_hits == 1

    def test_nunique_falls_back(self, lattice):
        result = lattice.aggregate(["d.g"], {"p": ("card.pid", "nunique")})
        assert lattice.stats.fallbacks == 1
        by_g = {row["d.g"]: row["p"] for row in result.to_rows()}
        assert by_g == {"F": 2, "M": 2}

    def test_uncovered_levels_fall_back(self, lattice):
        result = lattice.aggregate(["card.pid"])
        assert lattice.stats.fallbacks == 1
        assert result.num_rows == 4

    def test_non_additive_sum_still_guarded(self, lattice):
        with pytest.raises(OLAPError, match="non-additive"):
            lattice.aggregate(["d.g"], {"s": ("v", "sum")})

    def test_stats_summary(self, lattice):
        lattice.aggregate(["d.g"])
        assert "rolled up" in lattice.stats.summary()


class TestSizeWithNullMeasure:
    """Regression: `size` on a measure was answered from the non-null count
    (`{measure}__count`), diverging from the base cube whenever the measure
    has nulls.  It must be answered from the record count instead."""

    @pytest.fixture()
    def null_cube(self):
        rows = [
            {"g": "F", "band": "a", "pid": 1, "v": 7.0},
            {"g": "F", "band": "a", "pid": 1, "v": None},
            {"g": "M", "band": "a", "pid": 2, "v": None},
            {"g": "F", "band": "b", "pid": 3, "v": 5.0},
            {"g": "M", "band": "b", "pid": 4, "v": None},
        ]
        return build_cube(rows)

    @pytest.fixture()
    def null_lattice(self, null_cube):
        return MaterializedCube(null_cube).materialize([["d.g", "d.band"]])

    def test_size_counts_all_rows(self, null_lattice, null_cube):
        got = null_lattice.aggregate(["d.g"], {"n": ("v", "size")})
        base = null_cube.aggregate(["d.g"], {"n": ("v", "size")})
        assert got.to_rows() == base.to_rows()
        assert {r["d.g"]: r["n"] for r in got.to_rows()} == {"F": 3, "M": 2}

    def test_count_still_skips_nulls(self, null_lattice, null_cube):
        got = null_lattice.aggregate(["d.g"], {"c": ("v", "count")})
        base = null_cube.aggregate(["d.g"], {"c": ("v", "count")})
        assert got.to_rows() == base.to_rows()
        assert {r["d.g"]: r["c"] for r in got.to_rows()} == {"F": 2, "M": 0}

    def test_grand_total_size_vs_count(self, null_lattice, null_cube):
        got = null_lattice.aggregate(
            [], {"n": ("v", "size"), "c": ("v", "count")}
        )
        base = null_cube.aggregate(
            [], {"n": ("v", "size"), "c": ("v", "count")}
        )
        assert got.to_rows() == base.to_rows() == [{"n": 5, "c": 2}]


rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "g": st.sampled_from(["F", "M"]),
            "band": st.sampled_from(["a", "b", "c"]),
            "pid": st.integers(1, 6),
            "v": st.one_of(st.none(), st.floats(0, 50, allow_nan=False)),
        }
    ),
    min_size=1,
    max_size=40,
)

#: every aggregation the lattice can answer, over a nullable measure
LATTICE_ANSWERABLE = {
    "n": ("records", "size"),
    "nc": ("records", "count"),
    "m": ("v", "mean"),
    "lo": ("v", "min"),
    "hi": ("v", "max"),
    "present": ("v", "count"),
    "rows": ("v", "size"),
    "s": ("n_add", "sum"),
}


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_property_lattice_matches_base(rows):
    """Every lattice answer equals the base cube's answer, for every
    lattice-answerable aggregation, nulls in the measure included."""
    cube = build_cube(rows)
    lattice = MaterializedCube(cube).materialize([["d.g", "d.band"]])
    for levels in ([], ["d.g"], ["d.band"], ["d.g", "d.band"]):
        got = lattice.aggregate(levels, LATTICE_ANSWERABLE)
        expected = cube.aggregate(levels, LATTICE_ANSWERABLE)
        assert got.column_names == expected.column_names
        for g_row, e_row in zip(got.to_rows(), expected.to_rows()):
            for out in LATTICE_ANSWERABLE:
                if e_row[out] is None:
                    assert g_row[out] is None
                elif LATTICE_ANSWERABLE[out][1] == "mean":
                    assert g_row[out] == pytest.approx(e_row[out])
                else:
                    assert g_row[out] == e_row[out]
    assert lattice.stats.fallbacks == 0
