"""Tests for the cube: metadata, aggregation, consistency with flat scans."""

import pytest

from repro.errors import OLAPError, UnknownLevelError
from repro.olap.cube import Cube
from repro.tabular import Table, col
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.fact import Measure
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


@pytest.fixture()
def small_cube():
    source = Table.from_rows(
        [
            {"gender": "F", "band": "60-80", "pid": 1, "fbg": 7.0},
            {"gender": "F", "band": "60-80", "pid": 1, "fbg": 8.0},
            {"gender": "M", "band": "60-80", "pid": 2, "fbg": 6.0},
            {"gender": "F", "band": "40-60", "pid": 3, "fbg": 5.0},
        ]
    )
    loader = WarehouseLoader(
        "mini", "facts",
        [
            DimensionSpec(Dimension("personal", {"gender": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("fbg", "float", "mean"),
         Measure.of("count_add", "int", "sum", additive=True)],
        measure_columns={"count_add": "pid"},  # any int; additive stand-in
    )
    loader.load(source)
    return Cube(loader.schema)


class TestMetadata:
    def test_levels(self, small_cube):
        assert "personal.gender" in small_cube.levels
        assert "card.pid" in small_cube.levels

    def test_measures(self, small_cube):
        assert set(small_cube.measure_names) == {"fbg", "count_add", "records"}

    def test_bare_level_resolution(self, small_cube):
        assert small_cube.check_level("gender") == "personal.gender"

    def test_unknown_level_raises(self, small_cube):
        with pytest.raises(UnknownLevelError, match="known"):
            small_cube.check_level("nope")

    def test_level_members_sorted(self, small_cube):
        assert small_cube.level_members("gender") == ["F", "M"]


class TestAggregate:
    def test_default_record_count(self, small_cube):
        table = small_cube.aggregate(["personal.gender"])
        by_gender = {row["personal.gender"]: row["records"] for row in table.to_rows()}
        assert by_gender == {"F": 3, "M": 1}

    def test_measure_mean(self, small_cube):
        table = small_cube.aggregate(
            ["personal.band"], {"mean_fbg": ("fbg", "mean")}
        )
        by_band = {row["personal.band"]: row["mean_fbg"] for row in table.to_rows()}
        assert by_band["60-80"] == pytest.approx(7.0)

    def test_distinct_patient_count(self, small_cube):
        table = small_cube.aggregate(
            ["personal.gender"], {"patients": ("card.pid", "nunique")}
        )
        by_gender = {row["personal.gender"]: row["patients"] for row in table.to_rows()}
        assert by_gender == {"F": 2, "M": 1}

    def test_filters_dice(self, small_cube):
        table = small_cube.aggregate(
            ["personal.gender"], filters=col("personal.band").eq("60-80")
        )
        assert {row["personal.gender"]: row["records"] for row in table.to_rows()} == {
            "F": 2, "M": 1
        }

    def test_sum_of_non_additive_refused(self, small_cube):
        with pytest.raises(OLAPError, match="non-additive"):
            small_cube.aggregate(["personal.gender"], {"s": ("fbg", "sum")})

    def test_sum_forced(self, small_cube):
        table = small_cube.aggregate(
            ["personal.gender"], {"s": ("fbg", "sum")}, force=True
        )
        assert table.num_rows == 2

    def test_sum_of_additive_allowed(self, small_cube):
        small_cube.aggregate(["personal.gender"], {"s": ("count_add", "sum")})

    def test_records_only_supports_counting(self, small_cube):
        with pytest.raises(OLAPError):
            small_cube.aggregate(["personal.gender"], {"x": ("records", "mean")})

    def test_level_target_restricted_functions(self, small_cube):
        with pytest.raises(OLAPError):
            small_cube.aggregate(["personal.gender"], {"x": ("personal.band", "mean")})

    def test_grand_total(self, small_cube):
        total = small_cube.grand_total({"n": ("records", "size"), "m": ("fbg", "mean")})
        assert total["n"] == 4
        assert total["m"] == pytest.approx(6.5)

    def test_cube_totals_match_flat_scan(self, small_cube):
        """Core OLAP invariant: cell counts sum to the unfiltered total."""
        table = small_cube.aggregate(["personal.gender", "personal.band"])
        assert sum(table.column("records").to_list()) == small_cube.flat.num_rows


class TestQualifiedAttributeCache:
    """`qualified_attributes()` is rebuilt per schema version, not per call."""

    def test_repeated_checks_hit_the_cache(self, small_cube, monkeypatch):
        calls = {"n": 0}
        original = type(small_cube.schema).qualified_attributes

        def counting(schema):
            calls["n"] += 1
            return original(schema)

        monkeypatch.setattr(
            type(small_cube.schema), "qualified_attributes", counting
        )
        small_cube.check_level("gender")
        small_cube.check_level("personal.band")
        small_cube.aggregate(["personal.gender"])
        assert calls["n"] == 1

    def test_dynamic_add_dimension_invalidates(self, small_cube, monkeypatch):
        dynamic = DynamicWarehouse(small_cube.schema)
        cube = Cube(dynamic)
        cube.check_level("gender")  # warm the cache
        with pytest.raises(UnknownLevelError):
            cube.check_level("site.ward")
        calls = {"n": 0}
        original = type(cube.schema).qualified_attributes

        def counting(schema):
            calls["n"] += 1
            return original(schema)

        monkeypatch.setattr(
            type(cube.schema), "qualified_attributes", counting
        )
        site = Dimension("site", {"ward": "str"})
        site.add_member({"ward": "A"})
        dynamic.add_dimension(site)
        assert cube.check_level("site.ward") == "site.ward"
        assert calls["n"] == 1  # one rebuild for the new version, then cached
        cube.check_level("site.ward")
        cube.aggregate(["site.ward"])
        assert calls["n"] == 1

    def test_refresh_clears_the_cache(self, small_cube):
        small_cube.check_level("gender")
        assert small_cube._state is not None
        before = small_cube.epoch
        small_cube.refresh()
        assert small_cube._state is None
        assert small_cube.check_level("gender") == "personal.gender"
        # the rebuilt state is a new epoch with fresh caches
        assert small_cube.epoch > before


class TestDynamicRefresh:
    def test_cube_sees_new_dimensions_automatically(self, small_cube):
        source_rows = small_cube.flat.num_rows
        dynamic = DynamicWarehouse(small_cube.schema)
        cube = Cube(dynamic)
        builder = FeedbackDimensionBuilder("risk").add(
            FeedbackEntry("any", lambda r: True)
        )
        dynamic.fold_feedback(builder)
        assert "risk.assessment" in cube.levels
        assert cube.flat.num_rows == source_rows
