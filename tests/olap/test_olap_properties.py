"""Property-based OLAP invariants: cube results always match flat scans."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.olap.cube import Cube
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "g": st.sampled_from(["F", "M"]),
            "band": st.sampled_from(["a", "b", "c"]),
            "pid": st.integers(1, 8),
            "v": st.floats(0, 100, allow_nan=False),
        }
    ),
    min_size=1,
    max_size=60,
)


def build_cube(rows):
    loader = WarehouseLoader(
        "prop", "f",
        [
            DimensionSpec(Dimension("d", {"g": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("v", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_cell_counts_sum_to_total(rows):
    cube = build_cube(rows)
    aggregate = cube.aggregate(["d.g", "d.band"])
    assert sum(aggregate.column("records").to_list()) == len(rows)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_cell_means_match_flat_recomputation(rows):
    cube = build_cube(rows)
    aggregate = cube.aggregate(["d.g"], {"m": ("v", "mean")})
    for record in aggregate.to_rows():
        expected = [r["v"] for r in rows if r["g"] == record["d.g"]]
        assert record["m"] == pytest.approx(sum(expected) / len(expected))


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_rollup_is_consistent_with_drilldown(rows):
    """Summing fine-level counts per coarse key equals the coarse counts."""
    cube = build_cube(rows)
    coarse = cube.aggregate(["d.g"])
    fine = cube.aggregate(["d.g", "d.band"])
    sums: dict[str, int] = {}
    for record in fine.to_rows():
        sums[record["d.g"]] = sums.get(record["d.g"], 0) + record["records"]
    for record in coarse.to_rows():
        assert sums[record["d.g"]] == record["records"]


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_distinct_patients_bounded_by_records(rows):
    cube = build_cube(rows)
    aggregate = cube.aggregate(
        ["d.band"], {"patients": ("card.pid", "nunique"), "n": ("records", "size")}
    )
    for record in aggregate.to_rows():
        assert 1 <= record["patients"] <= record["n"]


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_dice_never_increases_counts(rows):
    cube = build_cube(rows)
    full = cube.aggregate(["d.g"])
    from repro.tabular import col

    diced = cube.aggregate(["d.g"], filters=col("d.band").isin(["a", "b"]))
    full_counts = {r["d.g"]: r["records"] for r in full.to_rows()}
    for record in diced.to_rows():
        assert record["records"] <= full_counts[record["d.g"]]
