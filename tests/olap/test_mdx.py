"""Tests for the MDX subset: lexer, parser, evaluator."""

import pytest

from repro.errors import EvaluationError, LexError, ParseError
from repro.olap.cube import Cube
from repro.olap.mdx.ast import CrossJoin, ExplicitSet, LevelMembers, MemberRef
from repro.olap.mdx.lexer import TokenType, tokenize
from repro.olap.mdx.parser import parse_mdx
from repro.olap.mdx.evaluator import execute_mdx
from repro.tabular import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT { [a].[b] } ON COLUMNS FROM c")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert TokenType.BRACKETED in kinds
        assert kinds[-1] is TokenType.EOF

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select")
        assert tokens[0].text == "SELECT"

    def test_bracketed_values_keep_spaces(self):
        tokens = tokenize("[very good]")
        assert tokens[0].text == "very good"

    def test_unterminated_bracket(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("[abc")

    def test_empty_bracket(self):
        with pytest.raises(LexError, match="empty"):
            tokenize("[]")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT ; FROM")


class TestParser:
    def test_full_query(self):
        query = parse_mdx(
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "{[p].[band].[60-80]} ON ROWS FROM discri "
            "WHERE [c].[diabetes].[yes]"
        )
        assert isinstance(query.columns, LevelMembers)
        assert isinstance(query.rows, ExplicitSet)
        assert query.cube == "discri"
        assert query.slicer[0] == MemberRef("c", "diabetes", "yes")

    def test_axes_order_free(self):
        query = parse_mdx(
            "SELECT [p].[x].MEMBERS ON ROWS, [p].[y].MEMBERS ON COLUMNS FROM c"
        )
        assert query.rows.attribute == "x"
        assert query.columns.attribute == "y"

    def test_columns_required(self):
        with pytest.raises(ParseError, match="COLUMNS"):
            parse_mdx("SELECT [p].[x].MEMBERS ON ROWS FROM c")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ParseError, match="twice"):
            parse_mdx(
                "SELECT [p].[x].MEMBERS ON ROWS, [p].[y].MEMBERS ON ROWS FROM c"
            )

    def test_crossjoin(self):
        query = parse_mdx(
            "SELECT CROSSJOIN([p].[x].MEMBERS, [p].[y].MEMBERS) ON COLUMNS FROM c"
        )
        assert isinstance(query.columns, CrossJoin)

    def test_tuple_sets(self):
        query = parse_mdx(
            "SELECT {([p].[x].[a], [p].[y].[b]), [p].[x].[c]} ON COLUMNS FROM c"
        )
        assert len(query.columns.tuples) == 2
        assert len(query.columns.tuples[0]) == 2

    def test_measures_ref(self):
        query = parse_mdx("SELECT {[Measures].[records]} ON COLUMNS FROM c")
        ref = query.columns.tuples[0][0]
        assert ref.name == "records"

    def test_distinctcount(self):
        query = parse_mdx(
            "SELECT {DISTINCTCOUNT([card].[pid])} ON COLUMNS FROM c"
        )
        ref = query.columns.tuples[0][0]
        assert ref.level == "card.pid"

    def test_members_needs_level(self):
        with pytest.raises(ParseError, match="MEMBERS"):
            parse_mdx("SELECT [p].[x].[v].MEMBERS ON COLUMNS FROM c")

    def test_render_round_trip(self):
        text = (
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "CROSSJOIN([p].[x].MEMBERS, [p].[y].MEMBERS) ON ROWS "
            "FROM c WHERE [z].[w].[v]"
        )
        assert parse_mdx(parse_mdx(text).render()).render() == parse_mdx(text).render()

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_mdx("SELECT [p].[x].MEMBERS ON COLUMNS FROM c extra")


@pytest.fixture()
def mdx_cube():
    rows = [
        {"gender": "F", "band": "60-80", "pid": 1, "fbg": 7.0},
        {"gender": "F", "band": "60-80", "pid": 1, "fbg": 8.0},
        {"gender": "M", "band": "60-80", "pid": 2, "fbg": 6.0},
        {"gender": "F", "band": "40-60", "pid": 3, "fbg": 5.0},
    ]
    loader = WarehouseLoader(
        "discri", "facts",
        [
            DimensionSpec(Dimension("p", {"gender": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("fbg", "float", "mean")],
    )
    loader.load(Table.from_rows(rows))
    return Cube(loader.schema)


class TestEvaluator:
    def test_members_by_members(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "[p].[band].MEMBERS ON ROWS FROM discri",
        )
        assert grid.value(("60-80",), ("F",)) == 2
        assert grid.value(("40-60",), ("M",)) is None

    def test_slicer_filters(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "[p].[band].MEMBERS ON ROWS FROM discri WHERE [p].[gender].[F]",
        )
        # slicing on gender=F still leaves the M column empty, not wrong
        assert grid.value(("60-80",), ("M",)) is None
        assert grid.value(("60-80",), ("F",)) == 2

    def test_explicit_member_set_restricts(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT {[p].[band].[60-80]} ON COLUMNS FROM discri",
        )
        assert grid.value(("all",), ("60-80",)) == 3

    def test_measures_axis(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT {[Measures].[records], [Measures].[fbg], "
            "DISTINCTCOUNT([card].[pid])} ON COLUMNS, "
            "[p].[band].MEMBERS ON ROWS FROM discri",
        )
        assert grid.value(("60-80",), ("records",)) == 3
        assert grid.value(("60-80",), ("fbg",)) == pytest.approx(7.0)
        assert grid.value(("60-80",), ("distinctcount_pid",)) == 2

    def test_crossjoin_rows(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT {[Measures].[records]} ON COLUMNS, "
            "CROSSJOIN([p].[band].MEMBERS, [p].[gender].MEMBERS) ON ROWS "
            "FROM discri",
        )
        assert grid.value(("60-80", "F"), ("records",)) == 2

    def test_wrong_cube_name(self, mdx_cube):
        with pytest.raises(EvaluationError, match="addresses cube"):
            execute_mdx(mdx_cube, "SELECT [p].[gender].MEMBERS ON COLUMNS FROM other")

    def test_unknown_measure(self, mdx_cube):
        with pytest.raises(EvaluationError, match="unknown measure"):
            execute_mdx(
                mdx_cube, "SELECT {[Measures].[zzz]} ON COLUMNS FROM discri"
            )

    def test_measures_on_both_axes_rejected(self, mdx_cube):
        with pytest.raises(EvaluationError, match="only one axis"):
            execute_mdx(
                mdx_cube,
                "SELECT {[Measures].[records]} ON COLUMNS, "
                "{[Measures].[fbg]} ON ROWS FROM discri",
            )

    def test_non_uniform_axis_rejected(self, mdx_cube):
        with pytest.raises(EvaluationError, match="not uniform"):
            execute_mdx(
                mdx_cube,
                "SELECT {[p].[gender].[F], [p].[band].[60-80]} ON COLUMNS "
                "FROM discri",
            )

    def test_same_level_both_axes_rejected(self, mdx_cube):
        with pytest.raises(EvaluationError, match="both axes"):
            execute_mdx(
                mdx_cube,
                "SELECT [p].[gender].MEMBERS ON COLUMNS, "
                "[p].[gender].MEMBERS ON ROWS FROM discri",
            )

    def test_typed_member_coercion(self, mdx_cube):
        grid = execute_mdx(
            mdx_cube,
            "SELECT {[card].[pid].[1]} ON COLUMNS FROM discri",
        )
        assert grid.value(("all",), ("1",)) == 2

    def test_matches_query_builder(self, mdx_cube):
        """MDX and the drag-and-drop builder agree cell by cell (Fig 4)."""
        mdx_grid = execute_mdx(
            mdx_cube,
            "SELECT [p].[gender].MEMBERS ON COLUMNS, "
            "[p].[band].MEMBERS ON ROWS FROM discri",
        )
        builder_grid = (
            mdx_cube.query().rows("band").columns("gender").count_records().execute()
        )
        for row_key in builder_grid.row_keys:
            for col_key in builder_grid.col_keys:
                assert builder_grid.value(row_key, col_key) == mdx_grid.value(
                    row_key, col_key
                )
