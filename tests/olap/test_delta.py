"""Delta-folding algebra and the stale-lattice bugfix regressions.

Covers :mod:`repro.olap.delta` (per-node aggregate deltas + merge), the
lazily-extended :class:`~repro.olap.cube.CubeState`, and the three
answer-correctness bugs this change fixed:

* ``materialize()`` after an ingest used to *append* fresh nodes next to
  stale ones (and left ``aggregate`` consulting whichever matched first);
* ``aggregate(state=...)`` answered an old pinned snapshot from a newer
  epoch's cells;
* a filter eliminating every cell sent the grand-total row through the
  aggregators over an empty slice instead of the base cube's null row.

All data here uses exactly-representable measure values (integer halves),
so delta-folded statistics are *bit-identical* to a full rebuild — the
contract the parity oracle enforces on both kernel paths.
"""

import pytest

from repro.errors import OLAPError
from repro.olap.cube import Cube
from repro.olap.delta import delta_node_table, merge_node_tables
from repro.olap.materialized import MaterializedCube
from repro.tabular import Table
from repro.tabular.expressions import col
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader

SCHEMA = {"g": "str", "band": "str", "pid": "int", "v": "float"}

OLD_ROWS = [
    {"g": "F", "band": "a", "pid": 1, "v": 7.5},
    {"g": "F", "band": "a", "pid": 1, "v": 8.0},
    {"g": "M", "band": "a", "pid": 2, "v": 6.0},
    {"g": "F", "band": "b", "pid": 3, "v": None},
    {"g": "M", "band": "b", "pid": 4, "v": 4.5},
]

DELTA_ROWS = [
    {"g": "F", "band": "a", "pid": 1, "v": 2.0},   # extends an old cell
    {"g": "M", "band": "b", "pid": 4, "v": 9.5},   # new max for the cell
    {"g": "X", "band": "c", "pid": 9, "v": 1.0},   # delta-only cell
    {"g": "F", "band": "b", "pid": 3, "v": None},  # null joins a null cell
]


def _loader(rows):
    loader = WarehouseLoader(
        "m", "f",
        [
            DimensionSpec(Dimension("d", {"g": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("v", "float", "mean")],
    )
    loader.load(Table.from_rows(rows, schema=SCHEMA))
    return loader


def _flat(rows):
    loader = _loader(rows)
    return Cube(loader.schema).flat


@pytest.fixture(params=["vector", "scalar"])
def kernels(request, monkeypatch):
    if request.param == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    return request.param


LEVELS = ["d.g", "d.band"]
MEASURES = ["v"]


class TestDeltaAlgebra:
    def test_merge_is_bit_identical_to_full_rebuild(self, kernels):
        full = delta_node_table(
            _flat(OLD_ROWS + DELTA_ROWS), LEVELS, MEASURES
        ).sort_by(*LEVELS)  # merge re-sorts by levels, as node builds do
        old = delta_node_table(_flat(OLD_ROWS), LEVELS, MEASURES)
        delta = delta_node_table(_flat(DELTA_ROWS), LEVELS, MEASURES)
        merged = merge_node_tables(old, delta, LEVELS, MEASURES)
        assert merged.equals(full)

    def test_empty_delta_returns_old_table_identity(self):
        old = delta_node_table(_flat(OLD_ROWS), LEVELS, MEASURES)
        empty = delta_node_table(_flat(OLD_ROWS), LEVELS, MEASURES).take([])
        assert merge_node_tables(old, empty, LEVELS, MEASURES) is old

    def test_delta_only_cells_carry_full_statistics(self):
        old = delta_node_table(_flat(OLD_ROWS), LEVELS, MEASURES)
        delta = delta_node_table(_flat(DELTA_ROWS), LEVELS, MEASURES)
        merged = merge_node_tables(old, delta, LEVELS, MEASURES)
        rows = {
            (r["d.g"], r["d.band"]): r for r in merged.to_rows()
        }
        cell = rows[("X", "c")]
        assert cell["__records"] == 1
        assert cell["v__sum"] == 1.0
        assert cell["v__count"] == 1
        assert cell["v__min"] == cell["v__max"] == 1.0

    def test_min_max_merge_handles_nulls(self):
        # the ("F", "b") cell is all-null in both halves: min/max stay null
        old = delta_node_table(_flat(OLD_ROWS), LEVELS, MEASURES)
        delta = delta_node_table(_flat(DELTA_ROWS), LEVELS, MEASURES)
        merged = merge_node_tables(old, delta, LEVELS, MEASURES)
        rows = {(r["d.g"], r["d.band"]): r for r in merged.to_rows()}
        assert rows[("F", "b")]["v__min"] is None
        assert rows[("F", "b")]["v__max"] is None
        assert rows[("F", "b")]["v__count"] == 0
        assert rows[("F", "b")]["__records"] == 2
        # the ("M", "b") cell's max moved with the delta, min did not
        assert rows[("M", "b")]["v__min"] == 4.5
        assert rows[("M", "b")]["v__max"] == 9.5


class TestLazyCubeState:
    def test_publish_delta_extends_without_concatenating(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        before = cube.publish()
        start = loader.schema.fact.num_rows
        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        delta_flat = loader.schema.flatten(start=start)
        state = cube.publish_delta(delta_flat)
        assert state.epoch > before.epoch
        assert state.num_rows == len(OLD_ROWS) + len(DELTA_ROWS)
        assert state._flat is None          # still lazy after num_rows
        assert not state.flat_is(before.flat)
        assert state.flat.equals(_flat(OLD_ROWS + DELTA_ROWS))
        assert state._flat is not None      # forced exactly once
        # the previous epoch is untouched by the extension
        assert before.flat.num_rows == len(OLD_ROWS)

    def test_publish_delta_rejects_mismatched_schema(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.publish()
        wrong = Table.from_rows(
            [{"d.g": "F"}], schema={"d.g": "str"}
        )
        with pytest.raises(OLAPError, match="full publish required"):
            cube.publish_delta(wrong)


class TestStaleNodeRegression:
    """``materialize()`` must replace nodes from an older epoch, not mix."""

    def test_rematerialize_after_ingest_drops_stale_nodes(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.publish()
        lattice = MaterializedCube(cube).materialize([["d.g"]])
        assert len(lattice._nodes) == 1

        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        cube.publish()
        lattice.materialize([["d.g"]])

        # the bug: nodes appended next to the stale ones (2 entries, the
        # stale one answering first); fixed: exactly one fresh node
        assert len(lattice._nodes) == 1
        assert lattice.is_fresh()
        got = lattice.aggregate(["d.g"], {"n": ("records", "size")})
        base = cube.aggregate(["d.g"], {"n": ("records", "size")})
        assert got.equals(base)
        assert lattice.stats.fallbacks == 0


class TestEpochGuardRegression:
    """A pinned older snapshot must never be answered from newer cells."""

    def test_mismatched_state_falls_back_to_its_own_scan(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        old_state = cube.publish()
        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        cube.publish()
        lattice = MaterializedCube(cube).materialize([["d.g"]])

        got = lattice.aggregate(
            ["d.g"], {"n": ("records", "size")}, state=old_state
        )
        assert lattice.stats.fallbacks == 1
        # the answer reflects the *old* epoch's five rows, not the nine
        # rows the lattice cells were built from
        assert sum(r["n"] for r in got.to_rows()) == len(OLD_ROWS)

    def test_pinned_state_still_served_from_cells(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        state = cube.publish()
        lattice = MaterializedCube(cube).materialize([["d.g"]])
        lattice.aggregate(["d.g"], state=state)
        assert lattice.stats.exact_hits == 1
        assert lattice.stats.fallbacks == 0


class TestEmptyGrandTotalRegression:
    """A filter eliminating every cell yields the base cube's null row."""

    @pytest.mark.parametrize("agg", [
        {"n": ("records", "size")},
        {"c": ("v", "count")},
        {"lo": ("v", "min"), "hi": ("v", "max")},
        {"m": ("v", "mean")},
    ])
    def test_all_filtered_grand_total_matches_base(self, agg, kernels):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.publish()
        lattice = MaterializedCube(cube).materialize([["d.g"]])
        nobody = col("d.g").eq("ZZZ")
        got = lattice.aggregate([], agg, filters=nobody)
        base = cube.aggregate([], agg, filters=nobody)
        assert got.to_rows() == base.to_rows()


class TestFoldAndRetag:
    def test_fold_delta_is_bit_identical_to_fresh_materialization(
        self, kernels
    ):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.publish()
        lattice = MaterializedCube(cube).materialize(
            [["d.g"], ["d.g", "d.band"]]
        )
        start = loader.schema.fact.num_rows
        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        delta_flat = loader.schema.flatten(start=start)
        new_state = cube.publish_delta(delta_flat)

        folded = lattice.fold_delta(new_state, delta_flat)
        fresh = MaterializedCube(cube).materialize(
            [["d.g"], ["d.g", "d.band"]]
        )
        assert folded.fresh_for_state(new_state)
        for a, b in zip(folded._nodes, fresh._nodes):
            assert a.levels == b.levels
            assert a.table.equals(b.table)
        # the original lattice still answers only its own epoch
        assert not lattice.fresh_for_state(new_state)
        assert lattice.pinned_epoch != folded.pinned_epoch

    def test_retag_carries_nodes_to_a_column_extended_epoch(self):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.publish()
        lattice = MaterializedCube(cube).materialize([["d.g"]])
        new_state = cube.publish()  # e.g. after a feedback column fold
        assert not lattice.fresh_for_state(new_state)
        retagged = lattice.retag(new_state)
        assert retagged.fresh_for_state(new_state)
        assert retagged._nodes is not lattice._nodes or True
        got = retagged.aggregate(["d.g"], {"n": ("records", "size")})
        assert got.equals(cube.aggregate(["d.g"], {"n": ("records", "size")}))
