"""QueryBuilder contract: immutability, measure-spec spellings, errors."""

from __future__ import annotations

import pytest

from repro.errors import OLAPError
from repro.olap.cube import Cube
from repro.olap.query import measure


class TestImmutability:
    def test_every_step_returns_a_new_builder(self, cube):
        base = cube.query().rows("conditions.age_band")
        branched = base.columns("personal.gender")
        assert branched is not base
        assert base.build().columns == ()
        assert branched.build().columns == ("personal.gender",)

    def test_branching_does_not_leak_filters(self, cube):
        base = cube.query().rows("conditions.age_band")
        with_filter = base.where("personal.gender", "F")
        assert base.build().member_filters == {}
        assert with_filter.build().member_filters == {
            "personal.gender": ("F",)
        }

    def test_two_branches_of_one_base_execute_independently(self, cube):
        base = cube.query().rows("conditions.age_band")
        all_patients = base.count_distinct("cardinality.patient_id")
        women = all_patients.where("personal.gender", "F")
        assert (
            women.execute().grand_total()
            <= all_patients.execute().grand_total()
        )

    def test_repeated_where_on_same_level_intersects(self, cube):
        q = (
            cube.query()
            .rows("conditions.age_band")
            .where("personal.gender", "F", "M")
            .where("personal.gender", "F")
            .build()
        )
        assert q.member_filters["personal.gender"] == ("F",)


class TestMeasureSpellings:
    @pytest.fixture()
    def base(self, cube):
        return cube.query().rows("conditions.age_band")

    def test_tuple_fluent_and_positional_agree(self, base):
        via_tuple = base.measure(("fbg", "avg")).build()
        via_fluent = base.measure(measure("fbg").avg()).build()
        via_args = base.measure("fbg", "avg").build()
        assert via_tuple.value == via_fluent.value == via_args.value

    def test_avg_normalises_to_mean(self, base):
        assert base.measure(("fbg", "avg")).build().value == ("fbg", "mean")

    def test_fluent_name_is_kept(self, base):
        q = base.measure(measure("fbg").avg().named("avg_sugar")).build()
        assert q.value_name == "avg_sugar"

    def test_spellings_produce_identical_grids(self, base):
        t = base.measure(("fbg", "avg")).execute()
        f = base.measure(measure("fbg").avg()).execute()
        assert t.grand_total() == pytest.approx(f.grand_total())


class TestErrors:
    def test_unfinished_spec_rejected(self, cube):
        with pytest.raises(OLAPError, match="no\\s+aggregation"):
            cube.query().rows("conditions.age_band").measure(measure("fbg"))

    def test_spec_plus_aggregation_rejected(self, cube):
        with pytest.raises(OLAPError, match="not both"):
            cube.query().measure(measure("fbg").avg(), "sum")

    def test_tuple_plus_aggregation_rejected(self, cube):
        with pytest.raises(OLAPError, match="not both"):
            cube.query().measure(("fbg", "avg"), "sum")

    def test_bare_target_without_aggregation_rejected(self, cube):
        with pytest.raises(OLAPError, match="needs an aggregation"):
            cube.query().measure("fbg")

    def test_where_without_values_rejected(self, cube):
        with pytest.raises(OLAPError, match="at least one value"):
            cube.query().where("personal.gender")

    def test_execute_without_axes_rejected(self, cube):
        with pytest.raises(OLAPError, match="no levels"):
            cube.query().measure(("fbg", "avg")).execute()
