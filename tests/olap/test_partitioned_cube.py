"""Partitioned storage behind the cube/system API.

Covers the storage API redesign end to end: store-backed epochs answer
byte-identically to flat epochs, EXPLAIN carries the partition-pruning
contract fields, ``publish_delta`` appends segments instead of lazy
blocks, and — the aliasing regression — a pinned snapshot taken before a
compaction never observes a half-compacted table, even when the
compaction crashes at the ``storage.compaction`` fault point.
"""

import pytest

from repro.olap.cube import Cube
from repro.storage import faults
from repro.storage.columnar import PartitioningSpec, StorageConfig
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.tabular import Table
from repro.tabular.expressions import col
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader

SCHEMA = {"g": "str", "band": "str", "pid": "int", "v": "float"}

OLD_ROWS = [
    {"g": "F", "band": "a", "pid": 1, "v": 7.5},
    {"g": "F", "band": "a", "pid": 1, "v": 8.0},
    {"g": "M", "band": "a", "pid": 2, "v": 6.0},
    {"g": "F", "band": "b", "pid": 3, "v": None},
    {"g": "M", "band": "b", "pid": 4, "v": 4.5},
    {"g": "F", "band": "b", "pid": 5, "v": 5.25},
]

DELTA_ROWS = [
    {"g": "F", "band": "a", "pid": 1, "v": 2.0},
    {"g": "M", "band": "b", "pid": 4, "v": 9.5},
    {"g": "X", "band": "c", "pid": 9, "v": 1.0},
]

STORAGE = StorageConfig(
    partitioning=PartitioningSpec(hash_column="card.pid", hash_partitions=3)
)


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


@pytest.fixture(params=["vector", "scalar"])
def kernels(request, monkeypatch):
    if request.param == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    return request.param


def _loader(rows):
    loader = WarehouseLoader(
        "m", "f",
        [
            DimensionSpec(Dimension("d", {"g": "str", "band": "str"})),
            DimensionSpec(Dimension("card", {"pid": "int"})),
        ],
        [Measure.of("v", "float", "mean")],
    )
    loader.load(Table.from_rows(rows, schema=SCHEMA))
    return loader


def _cube(rows, storage=None):
    cube = Cube(_loader(rows).schema, managed=True)
    if storage is not None:
        cube.attach_storage(storage)
    cube.publish()
    return cube


LEVELS = ["d.g", "d.band"]
AGGS = {"n": ("records", "size"), "mean_v": ("v", "mean"), "max_v": ("v", "max")}


class TestStoreBackedAnswers:
    def test_aggregate_matches_flat_cube(self, kernels):
        plain = _cube(OLD_ROWS)
        stored = _cube(OLD_ROWS, STORAGE)
        assert stored._state.store is not None
        for filters in (None, col("d.g") == "F", col("v") > 5.0):
            a = plain.aggregate(LEVELS, AGGS, filters=filters)
            b = stored.aggregate(LEVELS, AGGS, filters=filters)
            assert b.equals(a)

    def test_store_backed_flat_is_byte_identical(self):
        plain = _cube(OLD_ROWS)
        stored = _cube(OLD_ROWS, STORAGE)
        assert stored._state.store.to_table().equals(plain._state.flat)

    def test_cube_scan_iterator_prunes(self):
        stored = _cube(OLD_ROWS, STORAGE)
        chunks = list(stored.scan(col("card.pid") == 1))
        assert chunks
        assert sum(c.num_rows for c in chunks) < len(OLD_ROWS)


class TestDeltaPublishing:
    def test_publish_delta_appends_segments(self, kernels):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.attach_storage(STORAGE)
        before = cube.publish()
        start = loader.schema.fact.num_rows
        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        state = cube.publish_delta(loader.schema.flatten(start=start))

        assert state.store is not None
        assert len(state.store.segments) > len(before.store.segments)
        # old segments are shared, not rebuilt
        old_ids = {id(s) for s in before.store.segments}
        assert old_ids <= {id(s) for s in state.store.segments}
        # answers equal a from-scratch cube over the union
        rebuilt = _cube(OLD_ROWS + DELTA_ROWS, STORAGE)
        assert cube.aggregate(LEVELS, AGGS).equals(rebuilt.aggregate(LEVELS, AGGS))

    def test_delta_then_compact_preserves_answers(self, kernels):
        loader = _loader(OLD_ROWS)
        cube = Cube(loader.schema, managed=True)
        cube.attach_storage(STORAGE)
        cube.publish()
        start = loader.schema.fact.num_rows
        loader.load(Table.from_rows(DELTA_ROWS, schema=SCHEMA))
        cube.publish_delta(loader.schema.flatten(start=start))
        before = cube.aggregate(LEVELS, AGGS, filters=col("d.g") == "F")
        state = cube.compact_storage()
        assert state is not None
        after = cube.aggregate(LEVELS, AGGS, filters=col("d.g") == "F")
        assert after.equals(before)

    def test_compact_without_store_is_noop(self):
        cube = _cube(OLD_ROWS)
        assert cube.compact_storage() is None


class TestSnapshotAliasing:
    """A pinned snapshot must never observe a half-compacted table."""

    def test_pinned_snapshot_survives_compaction(self):
        cube = _cube(OLD_ROWS, STORAGE)
        snap = cube.snapshot()
        flat_before = snap.flat
        store_before = snap.store
        grid_before = snap.aggregate(LEVELS, AGGS)

        cube.compact_storage()

        # the snapshot's state objects are untouched — same store, and the
        # flat view it serves is the very table it served before
        assert snap.store is store_before
        assert snap.flat.equals(flat_before)
        assert snap.aggregate(LEVELS, AGGS).equals(grid_before)

    def test_crashed_compaction_leaves_epoch_intact(self):
        cube = _cube(OLD_ROWS, STORAGE)
        epoch_before = cube.epoch
        segments_before = cube._state.store.segments
        grid_before = cube.aggregate(LEVELS, AGGS)

        faults.install(FaultPlan([FaultRule("storage.compaction", mode="kill")]))
        with pytest.raises(SimulatedCrash):
            cube.compact_storage()
        faults.uninstall()

        # the swap never happened: same epoch, same segment tuple
        assert cube.epoch == epoch_before
        assert cube._state.store.segments is segments_before
        assert cube.aggregate(LEVELS, AGGS).equals(grid_before)

    def test_snapshot_during_crashed_compaction_is_consistent(self):
        cube = _cube(OLD_ROWS, STORAGE)
        snap = cube.snapshot()
        grid_before = snap.aggregate(LEVELS, AGGS)
        faults.install(FaultPlan([FaultRule("storage.compaction", mode="kill")]))
        with pytest.raises(SimulatedCrash):
            cube.compact_storage()
        faults.uninstall()
        assert snap.aggregate(LEVELS, AGGS).equals(grid_before)


class TestExecutorConfig:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_configured_executor_answers_identically(self, executor):
        stored = _cube(
            OLD_ROWS,
            StorageConfig(
                partitioning=PartitioningSpec(hash_column="card.pid", hash_partitions=3),
                scan_executor=executor,
            ),
        )
        plain = _cube(OLD_ROWS)
        got = stored.aggregate(LEVELS, AGGS, filters=col("v") > 5.0)
        assert got.equals(plain.aggregate(LEVELS, AGGS, filters=col("v") > 5.0))
