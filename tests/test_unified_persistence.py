"""The unified save/load/recover surface over all three artefact kinds."""

from __future__ import annotations

import pytest

import repro.persistence as persistence
from repro.errors import PersistenceError, StorageError
from repro.knowledge.findings import Evidence, FindingKind
from repro.knowledge.kb import KnowledgeBase
from repro.persistence import checkpoint, detect_kind, load, recover, save
from repro.storage.engine import StorageEngine
from repro.storage.wal import WriteAheadLog


def _engine() -> StorageEngine:
    db = StorageEngine()
    db.create_table("t", {"k": "int", "v": "str"}, primary_key="k")
    with db.transaction():
        db.insert("t", {"k": 1, "v": "one"})
        db.insert("t", {"k": 2, "v": "two"})
    return db


def _kb() -> KnowledgeBase:
    base = KnowledgeBase(promotion_threshold=2.0)
    base.record(
        "f1", FindingKind.AGGREGATE, "claim", Evidence("fig4", "crosstab", 2.5)
    )
    return base


class TestRoundTrips:
    def test_storage_engine(self, tmp_path):
        gen_dir = save(_engine(), tmp_path / "snaps")
        assert gen_dir.name.startswith("gen-")
        loaded = load(tmp_path / "snaps")
        assert isinstance(loaded, StorageEngine)
        assert loaded.row_count("t") == 2
        assert loaded.get_by_pk("t", 1)["v"] == "one"

    def test_warehouse(self, tmp_path, fresh_built):
        returned = save(fresh_built.warehouse, tmp_path / "wh")
        assert returned == tmp_path / "wh"
        loaded = load(tmp_path / "wh")
        assert loaded.schema.fact.measure("fbg") is not None
        assert type(loaded) is type(fresh_built.warehouse)

    def test_knowledge_base(self, tmp_path):
        path = save(_kb(), tmp_path / "kb.json")
        loaded = load(path)
        assert isinstance(loaded, KnowledgeBase)
        assert loaded.get("f1").statement == "claim"

    def test_load_with_explicit_kind(self, tmp_path):
        save(_kb(), tmp_path / "kb.json")
        loaded = load(tmp_path / "kb.json", kind="knowledge")
        assert len(loaded) == 1

    def test_recover_replays_wal_past_snapshot(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        db = StorageEngine(wal)
        db.create_table("t", {"k": "int"}, primary_key="k")
        checkpoint(db, tmp_path / "snaps")
        with db.transaction():
            db.insert("t", {"k": 7})
        recovered = recover(tmp_path / "snaps", tmp_path / "wal.log")
        assert recovered.row_count("t") == 1
        assert recovered.get_by_pk("t", 7) is not None


class TestDetectKind:
    def test_each_layout(self, tmp_path, fresh_built):
        save(_engine(), tmp_path / "snaps")
        save(fresh_built.warehouse, tmp_path / "wh")
        save(_kb(), tmp_path / "kb.json")
        assert detect_kind(tmp_path / "snaps") == "storage"
        assert detect_kind(tmp_path / "wh") == "warehouse"
        assert detect_kind(tmp_path / "kb.json") == "knowledge"

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="nothing exists"):
            detect_kind(tmp_path / "absent")

    def test_unrecognisable_directory_raises(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(PersistenceError, match="no recognisable"):
            detect_kind(tmp_path / "junk")


class TestErrorContract:
    def test_subsystem_error_translated_with_cause(self, tmp_path):
        (tmp_path / "snaps").mkdir()
        (tmp_path / "snaps" / "gen-00000001").mkdir()  # empty: no manifest
        with pytest.raises(PersistenceError) as excinfo:
            load(tmp_path / "snaps")
        assert isinstance(excinfo.value.__cause__, StorageError)

    def test_unknown_object_type_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot save"):
            save(object(), tmp_path / "x")

    def test_unknown_kind_rejected(self, tmp_path):
        save(_kb(), tmp_path / "kb.json")
        with pytest.raises(PersistenceError, match="unknown artefact kind"):
            load(tmp_path / "kb.json", kind="parquet")

    def test_persistence_error_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(PersistenceError, ReproError)


class TestDeprecatedShims:
    """The six old per-subsystem names still work but warn."""

    def test_storage_shims(self, tmp_path):
        from repro.storage.persistence import load_snapshot, save_snapshot

        with pytest.warns(DeprecationWarning, match="save_snapshot"):
            save_snapshot(_engine(), tmp_path / "snaps")
        with pytest.warns(DeprecationWarning, match="load_snapshot"):
            loaded = load_snapshot(tmp_path / "snaps")
        assert loaded.row_count("t") == 2

    def test_warehouse_shims(self, tmp_path, fresh_built):
        from repro.warehouse.persistence import load_warehouse, save_warehouse

        with pytest.warns(DeprecationWarning, match="save_warehouse"):
            save_warehouse(fresh_built.warehouse, tmp_path / "wh")
        with pytest.warns(DeprecationWarning, match="load_warehouse"):
            load_warehouse(tmp_path / "wh")

    def test_knowledge_shims(self, tmp_path):
        from repro.knowledge.persistence import (
            load_knowledge_base,
            save_knowledge_base,
        )

        with pytest.warns(DeprecationWarning, match="save_knowledge_base"):
            save_knowledge_base(_kb(), tmp_path / "kb.json")
        with pytest.warns(DeprecationWarning, match="load_knowledge_base"):
            load_knowledge_base(tmp_path / "kb.json")

    def test_unified_surface_does_not_warn(self, tmp_path, recwarn):
        save(_kb(), tmp_path / "kb.json")
        load(tmp_path / "kb.json")
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_exported_from_package_root(self):
        import repro

        assert repro.PersistenceError is PersistenceError
        assert persistence.save is save
