"""Fault-tolerant ingest through the DGMS closed loop.

The acceptance bar: a kill injected at *every* named ingest boundary,
followed by ``DDDGMS.recover()`` and a re-ingest of the same batch, must
yield a warehouse identical to a clean single pass; dirty batches load
their valid rows and quarantine the rest with typed reasons; transient
faults retry with backoff; a permanently failing lattice degrades to
un-materialised queries instead of failing the batch.
"""

import warnings

import pytest

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.errors import PermanentIngestError
from repro.etl.quarantine import QuarantineStore
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.tabular.table import Table
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry

INGEST_BOUNDARIES = [
    "ingest.oltp",
    "ingest.rebuild",
    "ingest.quarantine",
    "ingest.feedback",
    "ingest.lattice",
    "ingest.checkpoint",
]

#: WAL-level write points also crossed by a durable ingest
STORAGE_BOUNDARIES = ["wal.append", "wal.commit"]


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


def _cohort():
    return DiScRiGenerator(n_patients=30, seed=7).generate()


def _batch_for(source, n_patients=8, seed=99):
    batch = DiScRiGenerator(n_patients=n_patients, seed=seed).generate()
    return offset_identifiers(
        batch,
        max(source.column("patient_id").to_list()),
        max(source.column("visit_id").to_list()),
    )


def _builder():
    return FeedbackDimensionBuilder("clinician_flag").add(
        FeedbackEntry("watch", lambda row: row.get("fbg_band") == "diabetic")
    )


def _warehouse_rows(system):
    return sorted(map(str, system.cube.flat.to_rows()))


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory):
    """One uninterrupted durable run: fold + ingest, no faults."""
    root = tmp_path_factory.mktemp("clean") / "sys"
    source = _cohort()
    system = DDDGMS(source, durable_root=root)
    system.fold_feedback(_builder())
    batch = _batch_for(source)
    system.ingest_visits(batch, batch="y2")
    return {
        "rows": _warehouse_rows(system),
        "dimensions": list(system.warehouse.dimension_names),
        "source": source,
        "batch": batch,
    }


class TestKillRecoverReingest:
    @pytest.mark.parametrize(
        "boundary", INGEST_BOUNDARIES + STORAGE_BOUNDARIES
    )
    def test_recovery_matches_clean_single_pass(
        self, boundary, clean_reference, tmp_path
    ):
        root = tmp_path / "sys"
        system = DDDGMS(
            clean_reference["source"], durable_root=root, ingest_chunk_rows=8
        )
        system.fold_feedback(_builder())
        # nth=2 so the first crossing (and for chunked OLTP, the first
        # committed chunk) survives — a genuinely mid-batch crash
        faults.install(FaultPlan([FaultRule(boundary, mode="kill", nth=2)]))
        try:
            system.ingest_visits(clean_reference["batch"], batch="y2")
        except SimulatedCrash:
            pass
        finally:
            faults.uninstall()

        recovered = DDDGMS.recover(root, feedback_builders=[_builder()])
        recovered.ingest_visits(clean_reference["batch"], batch="y2")
        assert _warehouse_rows(recovered) == clean_reference["rows"]
        assert list(recovered.warehouse.dimension_names) == (
            clean_reference["dimensions"]
        )

    def test_resumed_ingest_skips_landed_rows(self, clean_reference, tmp_path):
        """The committed chunk of an interrupted batch is not re-counted."""
        root = tmp_path / "sys"
        system = DDDGMS(
            clean_reference["source"], durable_root=root, ingest_chunk_rows=8
        )
        faults.install(FaultPlan([FaultRule("ingest.oltp", mode="kill", nth=2)]))
        with pytest.raises(SimulatedCrash):
            system.ingest_visits(clean_reference["batch"], batch="y2")
        faults.uninstall()

        recovered = DDDGMS.recover(root)
        already = recovered.source.num_rows - clean_reference["source"].num_rows
        assert already == 8  # exactly the first committed chunk
        accepted = recovered.ingest_visits(clean_reference["batch"], batch="y2")
        assert accepted == clean_reference["batch"].num_rows - already

    def test_reingest_is_idempotent(self, clean_reference, tmp_path):
        root = tmp_path / "sys"
        system = DDDGMS(clean_reference["source"], durable_root=root)
        system.ingest_visits(clean_reference["batch"], batch="y2")
        before = _warehouse_rows(system)
        assert system.ingest_visits(clean_reference["batch"], batch="y2") == 0
        assert _warehouse_rows(system) == before


class TestDirtyBatch:
    def test_valid_rows_load_and_rest_quarantine_typed(self):
        source = _cohort()
        store = QuarantineStore()
        system = DDDGMS(source, quarantine=store)
        batch = _batch_for(source, n_patients=5, seed=31)
        rows = batch.to_rows()
        rows[0]["visit_date"] = None  # derive step fails on .year
        dirty = Table.from_rows(rows, schema=dict(source.schema))

        accepted = system.ingest_visits(dirty, batch="y2")
        assert accepted == dirty.num_rows
        assert store.counts("step") == {"derive": 1}
        (entry,) = store.rows()
        assert entry.error_type == "AttributeError"
        assert entry.batch == "y2"
        # the valid rows are all queryable facts
        assert system.cube.flat.num_rows == source.num_rows + accepted - 1

    def test_redrive_after_repair(self):
        import datetime as dt

        source = _cohort()
        store = QuarantineStore()
        system = DDDGMS(source, quarantine=store)
        batch = _batch_for(source, n_patients=5, seed=31)
        rows = batch.to_rows()
        rows[0]["visit_date"] = None
        system.ingest_visits(
            Table.from_rows(rows, schema=dict(source.schema)), batch="y2"
        )
        before = system.cube.flat.num_rows

        report = system.redrive_quarantine(
            repair=lambda row: {
                **row, "visit_date": row["visit_date"] or dt.date(2009, 5, 1)
            }
        )
        assert report.attempted == 1 and report.succeeded == 1
        assert len(store) == 0
        assert system.cube.flat.num_rows == before + 1

    def test_unrepaired_rows_stay_quarantined(self):
        source = _cohort()
        store = QuarantineStore()
        system = DDDGMS(source, quarantine=store)
        batch = _batch_for(source, n_patients=3, seed=31)
        rows = batch.to_rows()
        rows[0]["visit_date"] = None
        system.ingest_visits(
            Table.from_rows(rows, schema=dict(source.schema)), batch="y2"
        )
        report = system.redrive_quarantine()  # no repair: still broken
        assert report.succeeded == 0
        assert len(store) == 1


class TestRetryAndDegradation:
    def test_transient_fault_heals_with_backoff(self, tmp_path):
        # incremental=False: this exercises the full-rebuild boundary,
        # which a delta publish legitimately never crosses
        source = _cohort()
        system = DDDGMS(
            source, durable_root=tmp_path / "sys", incremental=False
        )
        faults.install(
            FaultPlan([FaultRule("ingest.rebuild", mode="transient", nth=1)])
        )
        system.ingest_visits(_batch_for(source), batch="y2")
        health = system.ingest_health()
        assert health["retries_by_boundary"] == {"ingest.rebuild": 1}
        assert health["retries_total"] == 1
        assert health["degraded"] == {}

    def test_exhausted_transients_fail_permanent(self, tmp_path):
        source = _cohort()
        system = DDDGMS(source, durable_root=tmp_path / "sys")
        rules = [
            FaultRule("ingest.oltp", mode="transient", nth=n)
            for n in range(1, system.retry_policy.attempts + 1)
        ]
        faults.install(FaultPlan(rules))
        with pytest.raises(PermanentIngestError, match="ingest.oltp"):
            system.ingest_visits(_batch_for(source), batch="y2")

    def test_permanent_lattice_fault_degrades_then_recovers(self, tmp_path):
        # incremental=False: ``ingest.lattice`` guards the full
        # re-materialisation; the delta path's fold has its own boundary
        # (``lattice.delta_merge``, tested in test_incremental.py)
        source = _cohort()
        system = DDDGMS(
            source, durable_root=tmp_path / "sys", incremental=False
        )
        system.materialize_lattice()
        faults.install(
            FaultPlan([FaultRule("ingest.lattice", mode="permanent", nth=1)])
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            accepted = system.ingest_visits(_batch_for(source), batch="y2")
        faults.uninstall()

        # the batch landed; the lattice did not
        assert accepted > 0
        assert "lattice" in system.ingest_health()["degraded"]
        assert system.cube.lattice is None
        assert any("lattice" in str(w.message) for w in caught)
        # un-materialised queries still answer
        grid = (
            system.query().rows("bloods.fbg_band")
            .count_records("n").execute()
        )
        assert grid.cells

        # the next clean ingest re-materialises and clears the flag
        next_batch = _batch_for(system.source, n_patients=3, seed=5)
        system.ingest_visits(next_batch, batch="y3")
        assert system.ingest_health()["degraded"] == {}
        assert system.cube.lattice is not None

    def test_fold_feedback_is_idempotent_in_resilient_mode(self):
        source = _cohort()
        system = DDDGMS(source, quarantine=QuarantineStore())
        first = system.fold_feedback(_builder())
        second = system.fold_feedback(_builder())
        assert first is second
        assert (
            list(system.warehouse.dimension_names).count("clinician_flag") == 1
        )

    def test_recover_warns_on_unmatched_fold_journal(self, tmp_path):
        root = tmp_path / "sys"
        system = DDDGMS(_cohort(), durable_root=root)
        system.fold_feedback(_builder())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recovered = DDDGMS.recover(root)  # no builders supplied
        assert any("clinician_flag" in str(w.message) for w in caught)
        assert "clinician_flag" not in recovered.warehouse.dimension_names


class TestHealthSurface:
    def test_ingest_health_shape(self, tmp_path):
        system = DDDGMS(_cohort(), durable_root=tmp_path / "sys")
        health = system.ingest_health()
        assert health["resilient"] is True
        assert health["durable"] is True
        assert health["quarantined_total"] == 0
        # the constructor checkpoints, which truncates the durable WAL
        assert health["wal_committed_seq"] == 0
        assert health["data_version"] == 1

    def test_wal_seq_advances_without_checkpoint(self):
        system = DDDGMS(_cohort(), quarantine=QuarantineStore())
        assert system.ingest_health()["wal_committed_seq"] > 0

    def test_strict_system_reports_non_resilient(self):
        system = DDDGMS(_cohort())
        health = system.ingest_health()
        assert health["resilient"] is False
        assert health["durable"] is False
