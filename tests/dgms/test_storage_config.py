"""The redesigned storage configuration surface.

Covers the API-redesign satellite end to end at system level:
``SystemConfig(storage=StorageConfig(...))`` wires a partitioned store
into ``open_system``, the legacy direct spellings (``partitioning=`` /
``scan_procs=``) keep working behind a ``DeprecationWarning``, mapping
spellings coerce into the typed config, EXPLAIN carries the stable
partition fields, and ``ingest_health()`` reports segment/encoding
stats.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.dgms.system import SystemConfig
from repro.discri.generator import DiScRiGenerator
from repro.errors import StorageError
from repro.storage.columnar import PartitioningSpec, StorageConfig

FIG4_MDX = (
    "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
    "[conditions].[age_band].MEMBERS ON ROWS "
    "FROM discri "
    "WHERE [personal].[family_history_diabetes].[yes]"
)


@pytest.fixture(scope="module")
def source():
    return DiScRiGenerator(n_patients=50, seed=11).generate()


@pytest.fixture(scope="module")
def plain_system(source):
    return repro.open_system(source)


@pytest.fixture(scope="module")
def stored_system(source):
    return repro.open_system(source, config=SystemConfig(storage=True))


def _grid(system):
    return (
        system.query()
        .rows("conditions.age_band")
        .columns("personal.gender")
        .where("personal.family_history_diabetes", "yes")
        .execute()
    )


class TestStorageWiring:
    def test_open_system_attaches_store(self, stored_system):
        _grid(stored_system)  # first query publishes the initial epoch
        state = stored_system.cube._state
        assert state.store is not None
        assert len(state.store.segments) > 1

    def test_answers_match_storage_off(self, plain_system, stored_system):
        assert _grid(stored_system).to_text() == _grid(plain_system).to_text()

    def test_mdx_answers_match(self, plain_system, stored_system):
        assert stored_system.mdx(FIG4_MDX).to_text() == plain_system.mdx(FIG4_MDX).to_text()

    def test_storage_mapping_spelling(self, source):
        system = repro.open_system(
            source,
            config=SystemConfig(
                storage={"partitioning": {"hash_column": "cardinality.patient_id",
                                          "hash_partitions": 2}}
            ),
        )
        _grid(system)
        spec = system.cube._state.store.spec
        assert isinstance(spec, PartitioningSpec)
        assert spec.hash_partitions == 2

    def test_lazy_exports_resolve(self):
        assert repro.StorageConfig is StorageConfig
        assert repro.PartitioningSpec is PartitioningSpec

    def test_mid_life_attach_publishes_store(self, source):
        system = repro.open_system(source)
        before = _grid(system)  # publishes a flat (store-less) epoch
        assert system.cube._state.store is None
        system.attach_storage(StorageConfig())
        assert system.cube._state.store is not None
        assert _grid(system).to_text() == before.to_text()


class TestDeprecationShims:
    def test_partitioning_folds_into_storage(self):
        with pytest.warns(DeprecationWarning, match="storage=StorageConfig"):
            config = SystemConfig(partitioning={"hash_partitions": 4})
        assert config.partitioning is None
        assert isinstance(config.storage, StorageConfig)
        assert config.storage.partitioning.hash_partitions == 4

    def test_scan_procs_folds_into_storage(self):
        with pytest.warns(DeprecationWarning):
            config = SystemConfig(scan_procs=3)
        assert config.scan_procs is None
        assert config.storage.scan_procs == 3

    def test_shim_merges_with_explicit_storage(self):
        base = StorageConfig(encodings="plain")
        with pytest.warns(DeprecationWarning):
            config = SystemConfig(storage=base, scan_procs=2)
        assert config.storage.encodings == "plain"
        assert config.storage.scan_procs == 2

    def test_new_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SystemConfig(storage=StorageConfig())

    def test_mapping_partitioning_coerces_in_storage_config(self):
        config = StorageConfig(partitioning={"band_column": "visit.visit_date"})
        assert isinstance(config.partitioning, PartitioningSpec)
        assert config.partitioning.band_column == "visit.visit_date"

    def test_invalid_executor_rejected(self):
        with pytest.raises(StorageError, match="scan_executor"):
            StorageConfig(scan_executor="fibers")


class TestExplainContract:
    def test_partition_stats_fields(self, stored_system):
        report = stored_system.explain(
            stored_system.query()
            .rows("conditions.age_band")
            .columns("personal.gender")
            .where("personal.family_history_diabetes", "yes")
        )
        stats = report.partition_stats()
        assert stats is not None
        scanned, pruned = stats["partitions_scanned"], stats["partitions_pruned"]
        assert scanned + pruned == stats["segments_total"]
        assert pruned > 0  # the WHERE slice must actually prune
        for entry in stats["partitions"]:
            assert {"segment_id", "est_rows", "actual_rows", "ms"} <= entry.keys()
            assert entry["actual_rows"] <= entry["est_rows"]

    def test_plain_system_has_no_partition_stats(self, plain_system):
        report = plain_system.explain(
            plain_system.query()
            .rows("conditions.age_band")
            .columns("personal.gender")
            .where("personal.family_history_diabetes", "yes")
        )
        assert report.partition_stats() is None

    def test_mdx_explain_renders_partitions(self, stored_system):
        report = stored_system.mdx(f"EXPLAIN {FIG4_MDX}")
        assert "partitions" in report.to_text()


class TestIngestHealth:
    def test_reports_segment_stats(self, stored_system):
        health = stored_system.ingest_health()
        storage = health["storage"]
        assert storage["attached"] and storage["built"]
        assert storage["segments"] > 1
        assert storage["encoded_bytes"] > 0

    def test_absent_without_storage(self, plain_system):
        assert plain_system.ingest_health()["storage"] is None
