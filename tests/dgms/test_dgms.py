"""Tests for the DD-DGMS facade, user sessions, closed loop and baseline."""

import pytest

from repro.dgms.baseline import ClassicDGMS
from repro.dgms.phases import ClosedLoop
from repro.dgms.system import DDDGMS
from repro.dgms.users import OperationalSession, StrategicSession
from repro.discri.generator import DiScRiGenerator
from repro.knowledge.findings import FindingKind
from repro.optimize.regimen import RegimenProblem, TreatmentOutcome
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry


@pytest.fixture(scope="module")
def system():
    source = DiScRiGenerator(n_patients=120, seed=31).generate()
    return DDDGMS(source)


class TestFacade:
    def test_oltp_point_lookup(self, system):
        row = system.oltp_lookup(1)
        assert row is not None and row["visit_id"] == 1
        assert system.oltp_lookup(10**9) is None

    def test_patient_history_ordered(self, system):
        history = system.patient_history(3)
        dates = [row["visit_date"] for row in history]
        assert dates == sorted(dates)

    def test_olap_builder(self, system):
        grid = (
            system.olap().rows("age_band").columns("gender")
            .count_records().execute()
        )
        assert grid.grand_total() == system.cube.flat.num_rows

    def test_mdx_agrees_with_builder(self, system):
        mdx_grid = system.mdx(
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[conditions].[age_band].MEMBERS ON ROWS FROM discri"
        )
        builder_grid = (
            system.olap().rows("age_band").columns("gender")
            .count_records().execute()
        )
        for row_key in builder_grid.row_keys:
            for col_key in builder_grid.col_keys:
                assert mdx_grid.value(row_key, col_key) == builder_grid.value(
                    row_key, col_key
                )

    def test_isolate_cube_slice(self, system):
        rows = system.isolate_cube_slice(diabetes_status="yes")
        assert rows
        assert all(row["diabetes_status"] == "yes" for row in rows)
        assert "fbg" in rows[0]  # measures included, prefixes stripped

    def test_awsum_over_transformed(self, system):
        model = system.awsum(
            "develops_diabetes", ["fbg_band", "reflex_knees_ankles"],
            min_support=5,
        )
        assert model.value_influences()

    def test_trajectory_predictor(self, system):
        predictor = system.trajectory_predictor()
        stage, distribution = predictor.predict_next_stage(
            {"patient_id": -1, "fbg_band": "preDiabetic"}
        )
        assert stage in distribution

    def test_consistency_check(self, system):
        report = system.check_optimum_consistency(
            ["conditions.age_band", "personal.gender"], "fbg",
            min_records=5, removable=["exercise", "ecg"],
        )
        assert report.consistent

    def test_record_finding(self, system):
        system.record_finding(
            "test.finding", FindingKind.AGGREGATE, "statement",
            source="test", description="d", weight=2.0, tags=["t"],
        )
        assert "test.finding" in system.knowledge_base

    def test_visualize_svg(self, system, tmp_path):
        grid = (
            system.olap().rows("age_band").columns("gender")
            .count_records().execute()
        )
        markup = system.visualize(grid, "test", tmp_path / "x.svg")
        assert markup.startswith("<svg")


class TestSessions:
    def test_operational_medication_usage(self, system):
        session = OperationalSession(system, "dr_a")
        grid = session.medication_usage()
        assert grid.grand_total() > 0
        assert session.journal

    def test_operational_diagnosis_support(self, system):
        session = OperationalSession(system, "dr_a")
        stage, __ = session.diagnosis_support(
            {"patient_id": -1, "fbg_band": "high"}
        )
        assert isinstance(stage, str)

    def test_operational_risk_profile(self, system):
        session = OperationalSession(system, "dr_a")
        grid = session.risk_profile(("conditions.age_band", "personal.gender"))
        assert grid.row_levels == ["conditions.age_band"]

    def test_strategic_case_mix_and_rates(self, system):
        session = StrategicSession(system, "admin")
        mix = session.case_mix()
        rates = session.detection_rates_from_warehouse()
        assert mix.grand_total() > 0
        assert all(0 <= rate <= 1 for __, rate in rates.values())

    def test_strategic_planning(self, system):
        session = StrategicSession(system, "admin")
        plan = session.plan_regimen(
            RegimenProblem(
                group_sizes={"g": 10},
                outcomes=[TreatmentOutcome("g", "t", 0.5, 100)],
                budget=500,
            )
        )
        assert plan.total_cost <= 500 + 1e-9
        allocation = session.plan_screening({"a": 50}, {"a": 0.2}, capacity=20)
        assert allocation.expected_detections == pytest.approx(4.0)
        assert len(session.journal) == 2


class TestClosedLoop:
    def test_full_cycle(self):
        source = DiScRiGenerator(n_patients=100, seed=17).generate()
        system = DDDGMS(source)
        loop = ClosedLoop(system)
        outcomes = loop.run_cycle(budget=20_000)
        assert [o.phase for o in outcomes] == [
            "learn", "predict", "optimize", "acquire"
        ]
        assert loop.journal[0].details["accuracy"] > 0.7
        # phase 4 folded a dimension in and recorded a finding
        assert "risk_stratum" in system.warehouse.dimension_names
        assert "loop.risk_stratum" in system.knowledge_base
        # the cube sees the new dimension (the closed loop's point)
        assert "risk_stratum.assessment" in system.cube.levels


class TestFeedbackFold:
    def test_fold_refreshes_cube(self):
        source = DiScRiGenerator(n_patients=60, seed=13).generate()
        system = DDDGMS(source)
        builder = FeedbackDimensionBuilder("flag").add(
            FeedbackEntry("anything", lambda row: True)
        )
        system.fold_feedback(builder)
        assert "flag.assessment" in system.cube.levels


class TestClassicBaseline:
    @pytest.fixture(scope="class")
    def classic(self):
        source = DiScRiGenerator(n_patients=80, seed=23).generate()
        return ClassicDGMS(source)

    def test_crosstab_flat(self, classic):
        result = classic.crosstab("gender", "diabetes_status")
        assert result.num_rows >= 2
        assert "n" in result.column_names

    def test_distinct_patients(self, classic):
        total = classic.distinct_patients()
        diabetic = classic.distinct_patients("diabetes_status = 'yes'")
        assert 0 < diabetic < total == 80

    def test_learn_predict_loop(self, classic):
        classic.learn("dm", "diabetes_status", ["fbg", "bmi"])
        outcome = classic.predict("dm", {"fbg": 8.5, "bmi": 33.0})
        assert outcome["prediction"] in ("yes", "no")

    def test_same_counts_as_warehouse(self, classic):
        """Architecture comparison sanity: both paths see identical data."""
        source = DiScRiGenerator(n_patients=80, seed=23).generate()
        system = DDDGMS(source)
        warehouse_grid = (
            system.olap().rows("gender").columns("conditions.diabetes_status")
            .count_records().execute()
        )
        flat = classic.crosstab("gender", "diabetes_status")
        for row in flat.to_rows():
            assert warehouse_grid.value(
                (row["gender"],), (row["diabetes_status"],)
            ) == row["n"]
