"""Tests for data accumulation: ingest_visits and feedback replay."""

import pytest

from repro.dgms.system import DDDGMS
from repro.tabular.expressions import col
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry


@pytest.fixture()
def system():
    return DDDGMS(DiScRiGenerator(n_patients=50, seed=41).generate())


@pytest.fixture()
def new_batch(system):
    batch = DiScRiGenerator(n_patients=20, seed=77).generate()
    max_pid = max(system.source.column("patient_id").to_list())
    max_vid = max(system.source.column("visit_id").to_list())
    return offset_identifiers(batch, max_pid, max_vid)


class TestIngest:
    def test_counts_grow_everywhere(self, system, new_batch):
        before_rows = system.source.num_rows
        before_version = system.data_version
        ingested = system.ingest_visits(new_batch)
        assert ingested == new_batch.num_rows
        assert system.source.num_rows == before_rows + ingested
        assert system.operational_store.row_count("attendances") == (
            before_rows + ingested
        )
        assert system.cube.flat.num_rows == before_rows + ingested
        assert system.data_version == before_version + 1

    def test_new_patients_queryable(self, system, new_batch):
        system.ingest_visits(new_batch)
        total = system.cube.grand_total(
            {"patients": ("cardinality.patient_id", "nunique")}
        )["patients"]
        assert total == 70

    def test_oltp_point_lookup_sees_new_rows(self, system, new_batch):
        new_visit_id = new_batch.column("visit_id").to_list()[0]
        assert system.oltp_lookup(new_visit_id) is None
        system.ingest_visits(new_batch)
        assert system.oltp_lookup(new_visit_id) is not None

    def test_cardinality_ordinals_stay_correct(self, system, new_batch):
        system.ingest_visits(new_batch)
        rows = system.transformed.select(
            ["patient_id", "visit_date", "visit_number"]
        ).to_rows()
        rows.sort(key=lambda r: (r["patient_id"], r["visit_date"]))
        previous: dict = {}
        for row in rows:
            pid = row["patient_id"]
            assert row["visit_number"] == previous.get(pid, 0) + 1
            previous[pid] = row["visit_number"]

    def test_empty_batch_is_noop(self, system):
        empty = system.source.head(0)
        before = system.data_version
        assert system.ingest_visits(empty) == 0
        assert system.data_version == before

    def test_duplicate_visit_ids_rejected_and_rolled_back(self, system):
        duplicate = system.source.head(3)
        before = system.operational_store.row_count("attendances")
        with pytest.raises(Exception):
            system.ingest_visits(duplicate)
        assert system.operational_store.row_count("attendances") == before


class TestFeedbackReplay:
    def test_folded_dimensions_survive_ingest(self, system, new_batch):
        builder = FeedbackDimensionBuilder("risk_note").add(
            FeedbackEntry(
                "elevated",
                lambda row: row.get("bloods.fbg_band") in ("preDiabetic", "Diabetic"),
            )
        ).add(FeedbackEntry("ok", lambda row: True))
        system.fold_feedback(builder)
        assert "risk_note" in system.warehouse.dimension_names

        system.ingest_visits(new_batch)
        # the dimension is re-derived over the grown fact set
        assert "risk_note" in system.warehouse.dimension_names
        flat = system.cube.flat
        assert flat.num_rows == system.source.num_rows
        labels = set(flat.column("risk_note.assessment").to_list())
        assert labels <= {"elevated", "ok"}
        # and the predicate was re-evaluated, not copied
        elevated = flat.filter(col("risk_note.assessment").eq("elevated"))
        bands = set(elevated.column("bloods.fbg_band").to_list())
        assert bands <= {"preDiabetic", "Diabetic"}
