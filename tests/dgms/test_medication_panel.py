"""Tests for the medication panel and the dedup ETL step."""

import datetime as dt

import pytest

from repro.dgms.system import DDDGMS
from repro.dgms.users import OperationalSession
from repro.discri.generator import DiScRiGenerator
from repro.etl.pipeline import DeduplicateStep
from repro.tabular import Table


@pytest.fixture(scope="module")
def session():
    system = DDDGMS(DiScRiGenerator(n_patients=150, seed=47).generate())
    return OperationalSession(system, "dr_panel")


class TestMedicationPanel:
    def test_one_row_per_medication_flag(self, session):
        panel = session.medication_panel()
        meds = panel.column("medication").to_list()
        assert "med_metformin" in meds
        assert "med_statin" in meds
        assert "med_insulin_units" not in meds  # numeric column, not a flag
        assert len(meds) == len(set(meds))

    def test_diabetes_drugs_skew_diabetic(self, session):
        panel = session.medication_panel()
        by_name = {row["medication"]: row for row in panel.to_rows()}
        assert by_name["med_metformin"]["diabetic_rate"] > 0.4
        assert by_name["med_metformin"]["other_rate"] < 0.05
        assert by_name["med_metformin"]["ratio"] > 5

    def test_sorted_by_ratio(self, session):
        ratios = session.medication_panel().column("ratio").to_list()
        assert ratios == sorted(ratios, reverse=True)

    def test_rates_are_probabilities(self, session):
        for row in session.medication_panel().to_rows():
            assert 0.0 <= row["diabetic_rate"] <= 1.0
            assert 0.0 <= row["other_rate"] <= 1.0

    def test_journal_entry(self, session):
        session.medication_panel()
        assert any("medication panel" in line for line in session.journal)


class TestDeduplicateStep:
    @pytest.fixture()
    def duplicated(self):
        return Table.from_rows(
            [
                {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.0},
                {"pid": 1, "when": dt.date(2010, 1, 1), "fbg": 5.1},  # re-entry
                {"pid": 1, "when": dt.date(2011, 1, 1), "fbg": 6.0},
                {"pid": 2, "when": dt.date(2010, 1, 1), "fbg": 7.0},
            ]
        )

    def test_keyed_dedup_first_wins(self, duplicated):
        table, detail = DeduplicateStep("pid", "when").apply(duplicated)
        assert table.num_rows == 3
        assert table.row(0)["fbg"] == 5.0
        assert "dropped 1 duplicate" in detail

    def test_full_row_dedup(self):
        table = Table.from_rows([{"a": 1}, {"a": 1}, {"a": 2}])
        result, detail = DeduplicateStep().apply(table)
        assert result.num_rows == 2
        assert "dropped 1" in detail

    def test_no_duplicates_noop(self, duplicated):
        unique = duplicated.distinct("pid", "when")
        result, detail = DeduplicateStep("pid", "when").apply(unique)
        assert result.num_rows == unique.num_rows
        assert "dropped 0" in detail

    def test_in_pipeline_with_audit(self, duplicated):
        from repro.etl.pipeline import Pipeline

        result = Pipeline([DeduplicateStep("pid", "when")]).run(duplicated)
        assert "[deduplicate]" in result.audit_text()
