"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.tabular.csvio import read_csv


@pytest.fixture()
def cohort_csv(tmp_path):
    path = tmp_path / "cohort.csv"
    exit_code = main(
        ["generate", "--patients", "40", "--seed", "9", "--out", str(path)]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, cohort_csv, capsys):
        assert cohort_csv.exists()
        table = read_csv(cohort_csv)
        assert table.column("patient_id").n_unique() == 40
        assert "fbg" in table.column_names

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        main(["generate", "--patients", "20", "--seed", "4", "--out", str(a)])
        main(["generate", "--patients", "20", "--seed", "4", "--out", str(b)])
        assert a.read_text(encoding="utf-8") == b.read_text(encoding="utf-8")


class TestReport:
    def test_from_csv(self, cohort_csv, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--cohort", str(cohort_csv),
                     "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "# DiScRi trial report" in text
        assert "attendances" in text

    def test_simulated_inline(self, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "--patients", "30", "--seed", "2",
                     "--out", str(out)]) == 0
        assert out.exists()


class TestMdx:
    def test_query_prints_grid(self, cohort_csv, capsys):
        assert main([
            "mdx", "--cohort", str(cohort_csv),
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[conditions].[age_band].MEMBERS ON ROWS FROM discri",
            "--totals",
        ]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output
        assert "conditions.age_band" in output


class TestFigures:
    def test_prints_all_three(self, cohort_csv, capsys):
        assert main(["figures", "--cohort", str(cohort_csv)]) == 0
        output = capsys.readouterr().out
        assert "Fig 4" in output and "Fig 5" in output and "Fig 6" in output


class TestDictionary:
    def test_plain(self, tmp_path):
        out = tmp_path / "dict.md"
        assert main(["dictionary", "--out", str(out)]) == 0
        assert "# DiScRi data dictionary" in out.read_text(encoding="utf-8")

    def test_with_stats(self, cohort_csv, tmp_path):
        out = tmp_path / "dict.md"
        assert main(["dictionary", "--cohort", str(cohort_csv),
                     "--with-stats", "--out", str(out)]) == 0
        assert "| nulls | distinct |" in out.read_text(encoding="utf-8")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate"])
