"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.tabular.csvio import read_csv


@pytest.fixture()
def cohort_csv(tmp_path):
    path = tmp_path / "cohort.csv"
    exit_code = main(
        ["generate", "--patients", "40", "--seed", "9", "--out", str(path)]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, cohort_csv, capsys):
        assert cohort_csv.exists()
        table = read_csv(cohort_csv)
        assert table.column("patient_id").n_unique() == 40
        assert "fbg" in table.column_names

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        main(["generate", "--patients", "20", "--seed", "4", "--out", str(a)])
        main(["generate", "--patients", "20", "--seed", "4", "--out", str(b)])
        assert a.read_text(encoding="utf-8") == b.read_text(encoding="utf-8")


class TestReport:
    def test_from_csv(self, cohort_csv, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--cohort", str(cohort_csv),
                     "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "# DiScRi trial report" in text
        assert "attendances" in text

    def test_simulated_inline(self, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "--patients", "30", "--seed", "2",
                     "--out", str(out)]) == 0
        assert out.exists()


class TestMdx:
    def test_query_prints_grid(self, cohort_csv, capsys):
        assert main([
            "mdx", "--cohort", str(cohort_csv),
            "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
            "[conditions].[age_band].MEMBERS ON ROWS FROM discri",
            "--totals",
        ]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output
        assert "conditions.age_band" in output


class TestFigures:
    def test_prints_all_three(self, cohort_csv, capsys):
        assert main(["figures", "--cohort", str(cohort_csv)]) == 0
        output = capsys.readouterr().out
        assert "Fig 4" in output and "Fig 5" in output and "Fig 6" in output


class TestDictionary:
    def test_plain(self, tmp_path):
        out = tmp_path / "dict.md"
        assert main(["dictionary", "--out", str(out)]) == 0
        assert "# DiScRi data dictionary" in out.read_text(encoding="utf-8")

    def test_with_stats(self, cohort_csv, tmp_path):
        out = tmp_path / "dict.md"
        assert main(["dictionary", "--cohort", str(cohort_csv),
                     "--with-stats", "--out", str(out)]) == 0
        assert "| nulls | distinct |" in out.read_text(encoding="utf-8")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate"])


class TestQuarantineRedrive:
    @pytest.fixture()
    def durable_root(self, tmp_path):
        """A durable system with one unrepairable row dead-lettered."""
        from repro.dgms.system import DDDGMS
        from repro.discri.generator import DiScRiGenerator, offset_identifiers
        from repro.tabular.table import Table

        source = DiScRiGenerator(n_patients=12, seed=5).generate()
        root = tmp_path / "sys"
        system = DDDGMS(source, durable_root=root)
        batch = offset_identifiers(
            DiScRiGenerator(n_patients=3, seed=77).generate(),
            patient_offset=1000, visit_offset=100000,
        )
        rows = batch.to_rows()
        rows[0]["visit_date"] = None  # derive step fails on .year
        system.ingest_visits(
            Table.from_rows(rows, schema=dict(source.schema)), batch="y2"
        )
        return root

    def test_requeued_rows_exit_nonzero(self, durable_root, capsys):
        # no --set repair: the row fails again and re-quarantines
        assert main(["quarantine", "redrive", "--root", str(durable_root)]) == 3
        out = capsys.readouterr().out
        assert "re-quarantined" in out
        assert "1 rows remain quarantined" in out

    def test_successful_repair_exits_zero(self, durable_root, capsys):
        assert main([
            "quarantine", "redrive", "--root", str(durable_root),
            "--set", "visit_date=2009-05-01",
        ]) == 0
        assert "0 rows remain quarantined" in capsys.readouterr().out
