"""Incremental lattice maintenance (delta folding) through the DGMS loop.

The acceptance bar, per DESIGN.md §"Incremental maintenance":

* a delta-folded system answers **byte-equal** to a twin that full-rebuilds
  on every ingest, on both kernel paths — flat view, lattice nodes, and
  query results alike;
* the delta/rebuild decision table is honoured: disabled maintenance,
  back-dated visits and an operational store that ran ahead of the
  warehouse (interrupted batch) each force a full rebuild with a recorded
  reason, and the system returns to the delta path afterwards;
* the new ``lattice.delta_merge`` fault boundary retries transients,
  degrades on permanent faults, and a kill there recovers to a warehouse
  identical to a clean pass;
* interleavings of ingest / fold_feedback / materialize / snapshot reads
  (hypothesis model-based machine) never let the two systems diverge, and
  pinned snapshots keep answering their own epoch.

All cohorts are sanitised onto a 1/32 binary grid with the median-fill
columns made non-null, so delta-folded float sums are exactly equal to
full-rebuild sums (see ``repro.olap.delta``) and every batch is
delta-eligible unless a test deliberately breaks eligibility.
"""

import warnings

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.etl.quarantine import QuarantineStore
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.tabular.table import Table
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry

#: measure source columns — these feed float sums, so they live on a grid
MEASURE_COLS = (
    "fbg", "hba1c", "bmi", "lying_sbp_avg", "lying_dbp_avg",
    "sdnn", "ewing_score", "medication_count",
)

#: columns the cleaning step median-fills; kept non-null so fill values
#: cannot drift between the base build and a delta batch
FILL_DEFAULTS = {
    "fbg": 8.0, "lying_dbp_avg": 80.0, "lying_sbp_avg": 120.0, "bmi": 25.0,
}


def _snap_grid(table: Table) -> Table:
    """Exactly-representable measures + non-null fill columns."""
    rows = table.to_rows()
    for row in rows:
        for name in MEASURE_COLS:
            if row.get(name) is not None:
                row[name] = round(row[name] * 32) / 32
        for name, default in FILL_DEFAULTS.items():
            if row.get(name) is None:
                row[name] = default
    return Table.from_rows(rows, schema=dict(table.schema))


def _cohort(n_patients=20, seed=7):
    return _snap_grid(DiScRiGenerator(n_patients=n_patients, seed=seed).generate())


def _batch_for(source, n_patients=6, seed=99):
    batch = DiScRiGenerator(n_patients=n_patients, seed=seed).generate()
    return _snap_grid(
        offset_identifiers(
            batch,
            max(source.column("patient_id").to_list()),
            max(source.column("visit_id").to_list()),
        )
    )


def _builder(name="clinician_flag"):
    return (
        FeedbackDimensionBuilder(name)
        .add(FeedbackEntry("watch", lambda row: row.get("bloods.fbg_band") == "diabetic"))
        .add(FeedbackEntry("clear", lambda row: True))
    )


QUERIES = (
    (["conditions.age_band", "personal.gender"], {"n": ("records", "size")}),
    (["conditions.age_band10"], {"patients": ("cardinality.patient_id", "nunique")}),
    (["personal.gender"], {"mean_fbg": ("fbg", "mean"), "n": ("records", "size")}),
    ([], {"lo": ("fbg", "min"), "hi": ("fbg", "max"), "s": ("sdnn", "mean")}),
)


def _canon(table: Table) -> list[tuple]:
    return sorted(tuple(sorted(r.items(), key=lambda kv: kv[0])) for r in table.to_rows())


def _assert_twins_equal(system: DDDGMS, model: DDDGMS) -> None:
    """Flat view byte-equal; every reference query byte-equal."""
    assert system.cube.flat.to_rows() == model.cube.flat.to_rows()
    for levels, aggs in QUERIES:
        got = system.cube.snapshot().aggregate(list(levels), dict(aggs))
        want = model.cube.aggregate(list(levels), dict(aggs))
        assert _canon(got) == _canon(want)


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.uninstall()


@pytest.fixture(params=["vector", "scalar"])
def kernels(request, monkeypatch):
    if request.param == "scalar":
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    return request.param


class TestDeltaParity:
    """The parity oracle: delta-folded == full-rebuilt, bit for bit."""

    def test_delta_system_equals_full_rebuild_twin(self, kernels):
        source = _cohort()
        system = DDDGMS(source)
        model = DDDGMS(source, incremental=False)
        system.materialize_lattice()
        model.materialize_lattice()

        for i, seed in enumerate((99, 123)):
            batch = _batch_for(system.source, seed=seed)
            a = system.ingest_visits(batch, batch=f"y{i + 2}")
            b = model.ingest_visits(batch, batch=f"y{i + 2}")
            assert a == b == batch.num_rows
            _assert_twins_equal(system, model)

        assert system.maintenance["delta_publishes"] == 2
        assert system.maintenance["full_rebuilds"] == 0
        assert model.maintenance["delta_publishes"] == 0
        assert model.maintenance["full_rebuilds"] == 2

    def test_folded_lattice_nodes_bit_identical_to_rebuilt(self, kernels):
        source = _cohort()
        system = DDDGMS(source)
        model = DDDGMS(source, incremental=False)
        system.materialize_lattice()
        model.materialize_lattice()
        batch = _batch_for(system.source)
        system.ingest_visits(batch, batch="y2")
        model.ingest_visits(batch, batch="y2")

        folded = system.cube.lattice
        rebuilt = model.cube.lattice
        assert folded is not None and rebuilt is not None
        assert folded.is_fresh() and rebuilt.is_fresh()
        assert len(folded._nodes) == len(rebuilt._nodes)
        # parallel materialisation stores nodes in completion order; the
        # fold preserves request order — match nodes by their grain
        by_grain = {tuple(n.levels): n for n in rebuilt._nodes}
        for node in folded._nodes:
            assert node.table.equals(by_grain[tuple(node.levels)].table)

    def test_feedback_fold_retags_then_delta_keys_match_replay(self):
        source = _cohort()
        system = DDDGMS(source)
        model = DDDGMS(source, incremental=False)
        system.materialize_lattice()
        system.fold_feedback(_builder())
        model.fold_feedback(_builder())
        assert system.maintenance["retags"] == 1
        assert system.cube.lattice is not None and system.cube.lattice.is_fresh()

        # the next batch resolves feedback keys through the resolver on
        # the delta path and through a full predicate replay on the model
        batch = _batch_for(system.source)
        system.ingest_visits(batch, batch="y2")
        model.ingest_visits(batch, batch="y2")
        assert system.maintenance["delta_publishes"] == 1
        _assert_twins_equal(system, model)
        assert "clinician_flag.assessment" in system.cube.flat.column_names


class TestFallbackDecisionTable:
    def test_disabled_maintenance_always_rebuilds(self):
        source = _cohort(n_patients=10)
        system = DDDGMS(source, incremental=False)
        system.ingest_visits(_batch_for(source, n_patients=3), batch="y2")
        assert system.maintenance == {
            "delta_publishes": 0,
            "full_rebuilds": 1,
            "retags": 0,
            "last_fallback_reason": "incremental maintenance disabled",
            "fallback_reasons": {"incremental maintenance disabled": 1},
            "planner": {
                "adaptive_selections": 0,
                "materialized_nodes": 0,
                "evicted_nodes": 0,
                "last_decision": None,
            },
        }

    def test_back_dated_visit_forces_rebuild_then_delta_resumes(self):
        source = _cohort(n_patients=10)
        system = DDDGMS(source)
        model = DDDGMS(source, incremental=False)

        # a follow-up visit for an existing patient, dated *before* their
        # latest known visit: cardinality ordinals would renumber
        row = max(source.to_rows(), key=lambda r: r["visit_id"])
        import datetime as dt

        row = {**row, "visit_id": row["visit_id"] + 1,
               "visit_date": dt.date(2001, 1, 1)}
        back_dated = Table.from_rows([row], schema=dict(source.schema))
        for sys_ in (system, model):
            sys_.ingest_visits(back_dated, batch="y2")
        assert system.maintenance["full_rebuilds"] == 1
        assert "predates" in system.maintenance["last_fallback_reason"]
        _assert_twins_equal(system, model)

        # eligibility is restored once the rebuild resynced the ledger
        batch = _batch_for(system.source, n_patients=3)
        for sys_ in (system, model):
            sys_.ingest_visits(batch, batch="y3")
        assert system.maintenance["delta_publishes"] == 1
        _assert_twins_equal(system, model)

    def test_interrupted_batch_disqualifies_delta_until_resync(self):
        source = _cohort()
        system = DDDGMS(source, quarantine=QuarantineStore(), ingest_chunk_rows=8)
        batch = _batch_for(source, n_patients=8)
        faults.install(FaultPlan([FaultRule("ingest.oltp", mode="kill", nth=2)]))
        with pytest.raises(SimulatedCrash):
            system.ingest_visits(batch, batch="y2")
        faults.uninstall()

        # the operational store kept the first chunk; the warehouse did
        # not — the resumed ingest must not trust the delta ledger
        system.ingest_visits(batch, batch="y2")
        assert system.maintenance["full_rebuilds"] == 1
        assert "lags the operational store" in (
            system.maintenance["last_fallback_reason"]
        )
        health = system.ingest_health()
        assert health["incremental"] is True
        assert health["maintenance"]["fallback_reasons"] == {
            "warehouse lags the operational store (interrupted batch)": 1
        }

        # a clean follow-up batch rides the delta path again, and the
        # whole history matches an uninterrupted twin
        follow_up = _batch_for(system.source, n_patients=3, seed=5)
        system.ingest_visits(follow_up, batch="y3")
        assert system.maintenance["delta_publishes"] == 1

        model = DDDGMS(source, incremental=False)
        model.ingest_visits(batch, batch="y2")
        model.ingest_visits(follow_up, batch="y3")
        _assert_twins_equal(system, model)


class TestDeltaMergeFaults:
    """The fold-forward boundary: retry, degrade, recover."""

    def test_transient_delta_merge_heals_with_backoff(self):
        source = _cohort()
        system = DDDGMS(source, quarantine=QuarantineStore())
        system.materialize_lattice()
        faults.install(
            FaultPlan([FaultRule("lattice.delta_merge", mode="transient", nth=1)])
        )
        system.ingest_visits(_batch_for(source), batch="y2")
        health = system.ingest_health()
        assert health["retries_by_boundary"] == {"lattice.delta_merge": 1}
        assert health["degraded"] == {}
        assert system.maintenance["delta_publishes"] == 1
        assert system.cube.lattice is not None and system.cube.lattice.is_fresh()

    def test_permanent_delta_merge_degrades_then_recovers(self):
        source = _cohort()
        system = DDDGMS(source, quarantine=QuarantineStore())
        system.materialize_lattice()
        faults.install(
            FaultPlan([FaultRule("lattice.delta_merge", mode="permanent", nth=1)])
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            accepted = system.ingest_visits(_batch_for(source), batch="y2")
        faults.uninstall()

        # the epoch moved (the batch is queryable); only the lattice fell
        assert accepted > 0
        assert system.maintenance["delta_publishes"] == 1
        assert "lattice" in system.ingest_health()["degraded"]
        assert system.cube.lattice is None
        assert any("lattice" in str(w.message) for w in caught)
        grid = (
            system.query().rows("bloods.fbg_band").count_records("n").execute()
        )
        assert grid.cells

        # the next clean ingest re-materialises and clears the flag
        system.ingest_visits(
            _batch_for(system.source, n_patients=3, seed=5), batch="y3"
        )
        assert system.ingest_health()["degraded"] == {}
        assert system.cube.lattice is not None and system.cube.lattice.is_fresh()

    def test_kill_at_delta_merge_recovers_to_clean_pass(self, tmp_path):
        source = _cohort()
        batch = _batch_for(source)

        clean = DDDGMS(source, durable_root=tmp_path / "clean")
        clean.materialize_lattice()
        clean.ingest_visits(batch, batch="y2")
        reference = sorted(map(str, clean.cube.flat.to_rows()))

        root = tmp_path / "sys"
        system = DDDGMS(source, durable_root=root)
        system.materialize_lattice()
        faults.install(
            FaultPlan([FaultRule("lattice.delta_merge", mode="kill", nth=1)])
        )
        try:
            system.ingest_visits(batch, batch="y2")
        except SimulatedCrash:
            pass
        finally:
            faults.uninstall()

        recovered = DDDGMS.recover(root)
        recovered.ingest_visits(batch, batch="y2")
        assert sorted(map(str, recovered.cube.flat.to_rows())) == reference


class _DeltaVsRebuildMachine(RuleBasedStateMachine):
    """Random interleavings of the public write/read surface.

    The system under test keeps incremental maintenance on; the model is
    an ``incremental=False`` twin fed the exact same calls.  After every
    step the flat views and reference queries must be byte-equal, and
    snapshots pinned at any earlier epoch must still answer exactly what
    they answered when pinned.
    """

    LATTICE_GROUPS = (
        ("conditions.age_band", "personal.gender"),
        ("bloods.fbg_band",),
    )

    def __init__(self):
        super().__init__()
        source = _cohort(n_patients=8, seed=3)
        self.system = DDDGMS(source)
        self.model = DDDGMS(source, incremental=False)
        self.batch_no = 0
        self.folds = 0
        self.pinned: list[tuple[object, list[tuple]]] = []

    @rule(n=st.integers(1, 3), seed=st.integers(0, 2**16))
    def ingest(self, n, seed):
        batch = _batch_for(self.system.source, n_patients=n, seed=seed)
        self.batch_no += 1
        a = self.system.ingest_visits(batch, batch=f"b{self.batch_no}")
        b = self.model.ingest_visits(batch, batch=f"b{self.batch_no}")
        assert a == b

    @rule()
    def fold(self):
        self.folds += 1
        name = f"risk_{self.folds}"
        self.system.fold_feedback(_builder(name))
        self.model.fold_feedback(_builder(name))

    @rule()
    def materialize(self):
        self.system.materialize_lattice(self.LATTICE_GROUPS)

    @rule()
    def pin_snapshot(self):
        snap = self.system.current_epoch()
        levels, aggs = QUERIES[0]
        seen = _canon(snap.aggregate(list(levels), dict(aggs)))
        self.pinned.append((snap, seen))
        del self.pinned[:-2]  # keep the last two epochs pinned

    @invariant()
    def twins_agree_and_snapshots_hold(self):
        _assert_twins_equal(self.system, self.model)
        levels, aggs = QUERIES[0]
        for snap, seen in self.pinned:
            assert _canon(snap.aggregate(list(levels), dict(aggs))) == seen


_MACHINE_SETTINGS = settings(
    max_examples=5, stateful_step_count=5, deadline=None
)


def test_interleavings_vector_kernels(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    run_state_machine_as_test(_DeltaVsRebuildMachine, settings=_MACHINE_SETTINGS)


def test_interleavings_scalar_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    run_state_machine_as_test(_DeltaVsRebuildMachine, settings=_MACHINE_SETTINGS)
