"""Tests for the trial-report generator and system episodes."""

import pytest

from repro.errors import ReproError
from repro.dgms.report import generate_trial_report
from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.knowledge.findings import FindingKind


@pytest.fixture(scope="module")
def system():
    return DDDGMS(DiScRiGenerator(n_patients=100, seed=29).generate())


class TestReport:
    def test_contains_every_section(self, system):
        report = generate_trial_report(system)
        for heading in (
            "## Cohort",
            "## Transformation audit",
            "## Diabetic patients by age band and gender",
            "## Hypertension duration by age band",
            "## Glycaemic episodes",
            "## Most likely next glycaemic phase",
            "## Knowledge base",
        ):
            assert heading in report, heading

    def test_cohort_numbers_correct(self, system):
        report = generate_trial_report(system)
        assert f"patients: **{system.source.column('patient_id').n_unique()}**" in report
        assert f"attendances: **{system.source.num_rows}**" in report

    def test_written_to_disk(self, system, tmp_path):
        path = tmp_path / "report.md"
        text = generate_trial_report(system, path=path)
        assert path.read_text(encoding="utf-8") == text

    def test_deterministic(self, system):
        assert generate_trial_report(system) == generate_trial_report(system)

    def test_reflects_knowledge_base(self, system):
        system.record_finding(
            "report.test", FindingKind.AGGREGATE, "a very specific statement",
            source="test", description="d",
        )
        assert "a very specific statement" in generate_trial_report(system)


class TestSystemEpisodes:
    def test_fbg_episodes(self, system):
        episodes = system.episodes("fbg")
        assert episodes.num_rows > 0
        states = set(episodes.column("state").to_list())
        assert states <= {"very good", "high", "preDiabetic", "Diabetic"}

    def test_unknown_measure_rejected(self, system):
        with pytest.raises(ReproError, match="no clinical scheme"):
            system.episodes("sdnn")
