"""The ``repro.open_system`` facade and the DDDGMS query entry points."""

from __future__ import annotations

import pytest

import repro
from repro import obs
from repro.dgms.system import DDDGMS, SystemConfig
from repro.discri.generator import DiScRiGenerator
from repro.errors import OLAPError
from repro.obs.explain import ExplainReport
from repro.olap.query import QueryBuilder


@pytest.fixture(scope="module")
def source():
    return DiScRiGenerator(n_patients=60, seed=7).generate()


@pytest.fixture(scope="module")
def system(source):
    return repro.open_system(source)


FIG4_MDX = (
    "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
    "[conditions].[age_band].MEMBERS ON ROWS "
    "FROM discri "
    "WHERE [personal].[family_history_diabetes].[yes]"
)


class TestFacade:
    def test_returns_a_system(self, system):
        assert isinstance(system, DDDGMS)

    def test_lazy_exports_resolve(self):
        assert repro.DDDGMS is DDDGMS
        assert repro.SystemConfig is SystemConfig
        with pytest.raises(AttributeError):
            repro.no_such_export

    def test_config_defaults_leave_obs_alone(self, source):
        obs.disable()
        repro.open_system(source)
        assert obs.enabled() is False

    def test_config_enables_observability(self, source):
        try:
            repro.open_system(source, config=SystemConfig(observability="ring"))
            assert obs.enabled() is True
        finally:
            obs.disable()
            obs.configure_from_env()

    def test_config_threshold_alone_implies_ring(self, source):
        try:
            repro.open_system(
                source, config=SystemConfig(slow_query_threshold_s=0.5)
            )
            assert obs.enabled() is True
            assert obs.slow_log().threshold_s == 0.5
        finally:
            obs.disable()
            obs.configure_from_env()

    def test_config_materializes_the_default_lattice(self, source):
        sys2 = repro.open_system(
            source, config=SystemConfig(materialize_lattice=True)
        )
        report = sys2.explain(
            sys2.query()
            .rows("conditions.age_band")
            .columns("personal.gender")
            .where("personal.family_history_diabetes", "yes")
        )
        lookup = report.plan.find("lattice.lookup")
        assert lookup is not None
        assert lookup.attrs["outcome"] == "rollup"

    def test_promotion_threshold_reaches_the_kb(self, source):
        sys2 = repro.open_system(
            source, config=SystemConfig(promotion_threshold=9.0)
        )
        assert sys2.knowledge_base.promotion_threshold == 9.0


class TestQueryEntryPoints:
    def test_query_returns_builder_on_the_cube(self, system):
        builder = system.query()
        assert isinstance(builder, QueryBuilder)
        grid = (
            builder.rows("conditions.age_band")
            .columns("personal.gender")
            .count_records()
            .execute()
        )
        assert grid.grand_total() > 0

    def test_olap_is_an_alias_of_query(self, system):
        a = (
            system.query().rows("conditions.age_band").count_records().execute()
        )
        b = system.olap().rows("conditions.age_band").count_records().execute()
        assert a.grand_total() == b.grand_total()

    def test_mdx_runs_a_statement(self, system):
        grid = system.mdx(FIG4_MDX)
        assert grid.grand_total() > 0

    def test_mdx_explain_prefix_returns_report(self, system):
        report = system.mdx("EXPLAIN " + FIG4_MDX)
        assert isinstance(report, ExplainReport)

    def test_explain_accepts_builder(self, system):
        report = system.explain(
            system.query().rows("conditions.age_band").count_records()
        )
        assert isinstance(report, ExplainReport)
        assert report.plan.find("cube.aggregate") is not None

    def test_explain_accepts_mdx_string_without_prefix(self, system):
        report = system.explain(FIG4_MDX)
        assert isinstance(report, ExplainReport)
        assert report.plan.find("mdx.parse") is not None

    def test_explain_rejects_other_types(self, system):
        with pytest.raises(OLAPError):
            system.explain(42)


class TestLatticeLifecycle:
    def test_ingest_rematerializes_the_lattice(self, source):
        sys2 = repro.open_system(
            source, config=SystemConfig(materialize_lattice=True)
        )
        from repro.discri.generator import offset_identifiers

        more = DiScRiGenerator(n_patients=12, seed=91).generate()
        max_pid = max(sys2.source.column("patient_id").to_list())
        max_vid = max(sys2.source.column("visit_id").to_list())
        sys2.ingest_visits(offset_identifiers(more, max_pid, max_vid))

        report = sys2.explain(
            sys2.query()
            .rows("conditions.age_band")
            .columns("personal.gender")
            .where("personal.family_history_diabetes", "yes")
        )
        lookup = report.plan.find("lattice.lookup")
        assert lookup is not None
        assert lookup.attrs["outcome"] == "rollup"  # fresh, not fallback
