"""Tests for CSV import/export."""

import datetime as dt

from repro.tabular import Table, read_csv, write_csv
from repro.tabular.dtypes import DType


def test_round_trip(tmp_path, tiny_table):
    path = tmp_path / "t.csv"
    write_csv(tiny_table, path)
    back = read_csv(path, schema=tiny_table.schema)
    assert back.equals(tiny_table)


def test_missing_markers_become_null(tmp_path):
    path = tmp_path / "m.csv"
    path.write_text("a,b\n1,N/A\n?,x\n,y\n", encoding="utf-8")
    table = read_csv(path)
    assert table.column("a").to_list() == [1, None, None]
    assert table.column("b").to_list() == [None, "x", "y"]


def test_type_inference(tmp_path):
    path = tmp_path / "i.csv"
    path.write_text(
        "n,f,s,d,b\n1,2.5,abc,2013-04-08,true\n2,3.5,def,2013-04-09,false\n",
        encoding="utf-8",
    )
    table = read_csv(path)
    assert table.schema == {
        "n": DType.INT,
        "f": DType.FLOAT,
        "s": DType.STR,
        "d": DType.DATE,
        "b": DType.BOOL,
    }
    assert table.row(0)["d"] == dt.date(2013, 4, 8)


def test_schema_restricts_columns(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("a,b\n1,2\n", encoding="utf-8")
    table = read_csv(path, schema={"a": "int"})
    assert table.column_names == ["a"]


def test_dates_written_iso(tmp_path):
    table = Table.from_rows([{"d": dt.date(2010, 1, 2)}])
    path = tmp_path / "d.csv"
    write_csv(table, path)
    assert "2010-01-02" in path.read_text(encoding="utf-8")
