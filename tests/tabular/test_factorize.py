"""Tests for the factorisation kernels."""

import datetime as dt

import numpy as np
import pytest

from repro.tabular import Column, Table, factorize, factorize_column


class TestFactorizeColumn:
    def test_codes_index_uniques(self):
        column = Column.from_values(["b", "a", "b", "c", "a"])
        codes, uniques = factorize_column(column)
        assert uniques == ["a", "b", "c"]
        assert [uniques[c] for c in codes] == ["b", "a", "b", "c", "a"]

    def test_nulls_share_one_trailing_code(self):
        column = Column.from_values([3, None, 3, None, 1])
        codes, uniques = factorize_column(column)
        assert uniques == [1, 3, None]
        assert codes.tolist() == [1, 2, 1, 2, 0]

    def test_all_null(self):
        column = Column.from_values([None, None], dtype="int")
        codes, uniques = factorize_column(column)
        assert uniques == [None]
        assert codes.tolist() == [0, 0]

    def test_empty(self):
        column = Column.from_values([], dtype="float")
        codes, uniques = factorize_column(column)
        assert uniques == [] and len(codes) == 0

    def test_uniques_are_python_values(self):
        column = Column.from_values([dt.date(2020, 1, 2), dt.date(2019, 5, 5)])
        _, uniques = factorize_column(column)
        assert uniques == [dt.date(2019, 5, 5), dt.date(2020, 1, 2)]
        assert all(isinstance(u, dt.date) for u in uniques)

    def test_column_method_delegates(self):
        column = Column.from_values([True, False, True])
        codes, uniques = column.factorize()
        assert uniques == [False, True]
        assert codes.tolist() == [1, 0, 1]


class TestFactorizeKeys:
    @pytest.fixture()
    def table(self):
        return Table.from_rows(
            [
                {"g": "F", "band": "a", "v": 1},
                {"g": "F", "band": "a", "v": 2},
                {"g": "M", "band": "a", "v": 3},
                {"g": "F", "band": "b", "v": 4},
                {"g": None, "band": "b", "v": 5},
            ]
        )

    def test_first_occurrence_order(self, table):
        fact = factorize(table, ["g", "band"])
        assert fact.group_keys == [
            ("F", "a"), ("M", "a"), ("F", "b"), (None, "b"),
        ]
        assert fact.first_rows.tolist() == [0, 2, 3, 4]

    def test_codes_cover_all_rows(self, table):
        fact = factorize(table, ["g", "band"])
        assert fact.codes.tolist() == [0, 0, 1, 2, 3]
        assert fact.n_groups == 4

    def test_group_rows_ascending(self, table):
        fact = factorize(table, ["g"])
        rows = fact.group_rows()
        assert [r.tolist() for r in rows] == [[0, 1, 3], [2], [4]]

    def test_empty_table(self):
        table = Table.empty({"k": "str"})
        fact = factorize(table, ["k"])
        assert fact.n_groups == 0 and len(fact.codes) == 0

    def test_high_cardinality_radix_compression(self):
        # many wide int keys force the mixed-radix overflow guard
        rng = np.random.default_rng(5)
        n = 500
        data = {
            f"k{i}": rng.integers(0, 1 << 48, size=n).tolist() for i in range(8)
        }
        table = Table.from_columns(data)
        fact = factorize(table, list(data))
        seen = set()
        for row, key in zip(fact.first_rows.tolist(), fact.group_keys):
            assert tuple(table.row(row)[k] for k in data) == key
            seen.add(key)
        assert len(seen) == fact.n_groups == n  # keys that wide never collide
