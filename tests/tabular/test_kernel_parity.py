"""Property suite: the vectorised kernels ≡ the scalar parity oracle.

Every supported aggregation function, over random tables with nulls in
both the keys and the values, must produce cell-for-cell identical output
on both kernel paths — including float cells, since the vector path
reduces each group's segment with the same numpy calls the oracle makes.
Same contract for ``groups()``, ``hash_join`` and ``Table.distinct``.
"""

import os
from contextlib import contextmanager

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.tabular import SCALAR_KERNELS_ENV, Table, hash_join
from repro.tabular.groupby import AGGREGATORS


@contextmanager
def scalar_kernels():
    previous = os.environ.get(SCALAR_KERNELS_ENV)
    os.environ[SCALAR_KERNELS_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SCALAR_KERNELS_ENV, None)
        else:
            os.environ[SCALAR_KERNELS_ENV] = previous


def _column(draw, n, values):
    return draw(st.lists(values, min_size=n, max_size=n))


@st.composite
def tables(draw):
    n = draw(st.integers(0, 50))
    data = {
        "k_str": _column(draw, n, st.one_of(st.none(), st.sampled_from("abc"))),
        "k_int": _column(draw, n, st.one_of(st.none(), st.integers(0, 3))),
        "x": _column(
            draw, n,
            st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
        ),
        "m": _column(draw, n, st.one_of(st.none(), st.integers(-9, 9))),
    }
    return Table.from_columns(
        data,
        schema={"k_str": "str", "k_int": "int", "x": "float", "m": "int"},
    )


ALL_FUNCS = sorted(AGGREGATORS)


def _assert_tables_identical(got: Table, expected: Table):
    assert got.column_names == expected.column_names
    assert got.schema == expected.schema
    assert got.to_rows() == expected.to_rows()


@given(tables())
@settings(max_examples=60, deadline=None)
def test_agg_matches_scalar_oracle_for_every_function(table):
    aggs = {f"x_{f}": ("x", f) for f in ALL_FUNCS}
    aggs.update({f"m_{f}": ("m", f) for f in ALL_FUNCS})
    aggs.update({f"k_{f}": ("k_str", f) for f in ("count", "min", "max", "nunique")})
    vec = table.groupby("k_str", "k_int").agg(**aggs)
    with scalar_kernels():
        ref = table.groupby("k_str", "k_int").agg(**aggs)
    _assert_tables_identical(vec, ref)


@given(tables())
@settings(max_examples=40, deadline=None)
def test_groups_match_scalar_oracle(table):
    vec = table.groupby("k_str", "k_int").groups()
    with scalar_kernels():
        ref = table.groupby("k_str", "k_int").groups()
    assert list(vec) == list(ref)
    for key, rows in ref.items():
        assert vec[key].tolist() == rows.tolist()


@given(tables())
@settings(max_examples=40, deadline=None)
def test_distinct_matches_scalar_oracle(table):
    vec = table.distinct("k_str", "k_int")
    with scalar_kernels():
        ref = table.distinct("k_str", "k_int")
    _assert_tables_identical(vec, ref)


@st.composite
def join_inputs(draw):
    def side(n):
        return {
            "k_str": _column(
                draw, n, st.one_of(st.none(), st.sampled_from("abc"))
            ),
            "k_int": _column(draw, n, st.one_of(st.none(), st.integers(0, 2))),
            "payload": _column(draw, n, st.integers(0, 99)),
        }

    left = Table.from_columns(
        side(draw(st.integers(0, 25))),
        schema={"k_str": "str", "k_int": "int", "payload": "int"},
    )
    right = Table.from_columns(
        side(draw(st.integers(0, 25))),
        schema={"k_str": "str", "k_int": "int", "payload": "int"},
    )
    how = draw(st.sampled_from(["inner", "left"]))
    return left, right, how


@given(join_inputs())
@settings(max_examples=60, deadline=None)
def test_hash_join_matches_scalar_oracle(inputs):
    left, right, how = inputs
    vec = hash_join(left, right, on=["k_str", "k_int"], how=how)
    with scalar_kernels():
        ref = hash_join(left, right, on=["k_str", "k_int"], how=how)
    _assert_tables_identical(vec, ref)


# ---------------------------------------------------------------------------
# Deterministic cases forcing the kernels' sparse fallback branches, which
# the small random tables above never reach.
# ---------------------------------------------------------------------------


def test_nunique_sparse_grid_matches_scalar_oracle():
    """group x value grid too large for the scatter kernel -> sort path."""
    n = 600
    table = Table.from_columns(
        {
            "g": [i // 2 for i in range(n)],  # 300 groups
            "v": [(i * 7) % 299 for i in range(n)],  # 299 distinct values
        },
        schema={"g": "int", "v": "int"},
    )
    vec = table.groupby("g").agg(n=("v", "nunique"))
    with scalar_kernels():
        ref = table.groupby("g").agg(n=("v", "nunique"))
    _assert_tables_identical(vec, ref)


def test_join_sparse_code_space_matches_scalar_oracle():
    """Composite keys whose radix product outgrows direct indexing."""
    left = Table.from_columns(
        {
            "a": [(i * 13) % 997 for i in range(120)],
            "b": [(i * 29) % 991 for i in range(120)],
            "x": list(range(120)),
        },
        schema={"a": "int", "b": "int", "x": "int"},
    )
    right = Table.from_columns(
        {
            "a": [(i * 13) % 997 for i in range(0, 120, 3)],
            "b": [(i * 29) % 991 for i in range(0, 120, 3)],
            "y": list(range(40)),
        },
        schema={"a": "int", "b": "int", "y": "int"},
    )
    for how in ("inner", "left"):
        vec = hash_join(left, right, on=["a", "b"], how=how)
        with scalar_kernels():
            ref = hash_join(left, right, on=["a", "b"], how=how)
        assert vec.num_rows > 0
        _assert_tables_identical(vec, ref)
