"""Tests for group-by aggregation."""

import pytest

from repro.errors import ColumnNotFoundError, TabularError
from repro.tabular import Table


@pytest.fixture()
def visits():
    return Table.from_rows(
        [
            {"sex": "F", "band": "60-80", "fbg": 7.0, "pid": 1},
            {"sex": "F", "band": "60-80", "fbg": 8.0, "pid": 1},
            {"sex": "M", "band": "60-80", "fbg": 6.0, "pid": 2},
            {"sex": "F", "band": "40-60", "fbg": None, "pid": 3},
            {"sex": None, "band": "40-60", "fbg": 5.0, "pid": 4},
        ]
    )


@pytest.mark.usefixtures("kernel_mode")
class TestGroups:
    def test_first_occurrence_order(self, visits):
        keys = list(visits.groupby("sex").groups())
        assert keys == [("F",), ("M",), (None,)]

    def test_null_keys_form_a_group(self, visits):
        groups = visits.groupby("sex").groups()
        assert len(groups[(None,)]) == 1

    def test_multi_key(self, visits):
        groups = visits.groupby("sex", "band").groups()
        assert ("F", "60-80") in groups and ("F", "40-60") in groups

    def test_unknown_key_raises(self, visits):
        with pytest.raises(ColumnNotFoundError):
            visits.groupby("nope")

    def test_no_keys_raises(self, visits):
        with pytest.raises(TabularError):
            visits.groupby()


@pytest.mark.usefixtures("kernel_mode")
class TestAgg:
    def test_size_vs_count(self, visits):
        result = visits.groupby("band").agg(
            size=("fbg", "size"), present=("fbg", "count")
        )
        by_band = {row["band"]: row for row in result.to_rows()}
        assert by_band["40-60"]["size"] == 2
        assert by_band["40-60"]["present"] == 1

    def test_mean_skips_nulls(self, visits):
        result = visits.groupby("sex").agg(mean_fbg=("fbg", "mean"))
        by_sex = {row["sex"]: row["mean_fbg"] for row in result.to_rows()}
        assert by_sex["F"] == pytest.approx(7.5)

    def test_sum_min_max(self, visits):
        result = visits.groupby("band").agg(
            total=("fbg", "sum"), low=("fbg", "min"), high=("fbg", "max")
        )
        row = next(r for r in result.to_rows() if r["band"] == "60-80")
        assert (row["total"], row["low"], row["high"]) == (21.0, 6.0, 8.0)

    def test_nunique(self, visits):
        result = visits.groupby("band").agg(patients=("pid", "nunique"))
        by_band = {row["band"]: row["patients"] for row in result.to_rows()}
        assert by_band == {"60-80": 2, "40-60": 2}

    def test_first_last(self, visits):
        result = visits.groupby("sex").agg(
            first=("fbg", "first"), last=("fbg", "last")
        )
        row = next(r for r in result.to_rows() if r["sex"] == "F")
        assert (row["first"], row["last"]) == (7.0, None)

    def test_unknown_function_raises(self, visits):
        with pytest.raises(TabularError, match="unknown aggregation"):
            visits.groupby("sex").agg(x=("fbg", "median"))

    def test_bad_spec_raises(self, visits):
        with pytest.raises(TabularError, match="must be"):
            visits.groupby("sex").agg(x="fbg")  # type: ignore[arg-type]

    def test_empty_agg_raises(self, visits):
        with pytest.raises(TabularError):
            visits.groupby("sex").agg()

    def test_size_shorthand(self, visits):
        assert visits.groupby("sex").size().column("size").to_list() == [3, 1, 1]

    def test_apply(self, visits):
        result = visits.groupby("sex").apply(lambda sub: sub.num_rows)
        assert result[("F",)] == 3
