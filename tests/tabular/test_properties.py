"""Property-based tests for the tabular kernels (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.tabular import Table, col
from repro.tabular.column import Column

ints_or_none = st.lists(st.one_of(st.integers(-1000, 1000), st.none()), max_size=50)
floats = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=50
)


@given(ints_or_none)
def test_column_round_trip(values):
    assert Column.from_values(values, dtype="int").to_list() == values


@given(ints_or_none)
def test_null_count_plus_count_is_length(values):
    column = Column.from_values(values, dtype="int")
    assert column.null_count + column.count() == len(column)


@given(ints_or_none)
def test_fill_null_removes_all_nulls(values):
    filled = Column.from_values(values, dtype="int").fill_null(0)
    assert filled.null_count == 0
    assert len(filled) == len(values)


@given(floats)
def test_sum_matches_python(values):
    column = Column.from_values(values, dtype="float")
    assert abs(column.sum() - sum(values)) <= 1e-6 * max(1.0, abs(sum(values)))


@given(ints_or_none, st.integers(-1000, 1000))
def test_filter_partition(values, threshold):
    """filter(p) and filter(~p) partition the non-null rows; nulls vanish."""
    table = Table.from_columns({"v": values}, schema={"v": "int"})
    above = table.filter(col("v") > threshold)
    below_or_null = table.filter(~(col("v") > threshold))
    assert above.num_rows + below_or_null.num_rows == table.num_rows
    nulls = sum(1 for v in values if v is None)
    strictly_above = sum(1 for v in values if v is not None and v > threshold)
    assert above.num_rows == strictly_above
    assert below_or_null.num_rows == len(values) - strictly_above
    __ = nulls


@given(ints_or_none)
def test_sort_is_permutation_with_nulls_last(values):
    table = Table.from_columns({"v": values}, schema={"v": "int"})
    ordered = table.sort_by("v").column("v").to_list()
    assert sorted((v for v in ordered if v is not None)) == [
        v for v in ordered if v is not None
    ]
    # nulls all at the end
    if None in ordered:
        first_null = ordered.index(None)
        assert all(v is None for v in ordered[first_null:])
    assert sorted(ordered, key=lambda v: (v is None, v if v is not None else 0)) == sorted(
        values, key=lambda v: (v is None, v if v is not None else 0)
    )


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_groupby_sums_match_total(pairs):
    """Sum of per-group sums equals the global sum (cube-consistency core)."""
    table = Table.from_rows([{"k": k, "v": v} for k, v in pairs])
    grouped = table.groupby("k").agg(total=("v", "sum"))
    assert sum(grouped.column("total").to_list()) == sum(v for _, v in pairs)


@given(
    st.lists(st.integers(0, 5), min_size=0, max_size=30),
    st.lists(st.integers(0, 5), min_size=0, max_size=30),
)
@settings(max_examples=50)
def test_inner_join_count_matches_product(left_keys, right_keys):
    """|join| = Σ_k count_left(k)·count_right(k)."""
    from collections import Counter

    from repro.tabular import hash_join

    left = Table.from_rows([{"k": k, "l": i} for i, k in enumerate(left_keys)])
    right = Table.from_rows([{"k": k, "r": i} for i, k in enumerate(right_keys)])
    if not left_keys or not right_keys:
        return  # join requires the key column to exist on both sides
    joined = hash_join(left, right, on="k")
    left_counts = Counter(left_keys)
    right_counts = Counter(right_keys)
    expected = sum(left_counts[k] * right_counts.get(k, 0) for k in left_counts)
    assert joined.num_rows == expected
