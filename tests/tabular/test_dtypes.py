"""Tests for logical types and coercion."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.tabular.dtypes import (
    DType,
    coerce_value,
    date_to_ordinal,
    infer_dtype,
    ordinal_to_date,
)


class TestDTypeCoerce:
    def test_accepts_enum(self):
        assert DType.coerce(DType.INT) is DType.INT

    def test_accepts_string(self):
        assert DType.coerce("float") is DType.FLOAT

    def test_rejects_unknown(self):
        with pytest.raises(DTypeError, match="unknown dtype"):
            DType.coerce("decimal")

    def test_numpy_dtype_mapping(self):
        assert DType.INT.numpy_dtype == np.dtype(np.int64)
        assert DType.STR.numpy_dtype == np.dtype(object)

    def test_is_numeric(self):
        assert DType.INT.is_numeric
        assert DType.FLOAT.is_numeric
        assert not DType.STR.is_numeric
        assert not DType.DATE.is_numeric


class TestDates:
    def test_epoch_is_zero(self):
        assert date_to_ordinal(dt.date(1970, 1, 1)) == 0

    def test_round_trip(self):
        day = dt.date(2013, 4, 8)
        assert ordinal_to_date(date_to_ordinal(day)) == day

    def test_iso_string_accepted(self):
        assert date_to_ordinal("2013-04-08") == date_to_ordinal(dt.date(2013, 4, 8))

    def test_datetime_truncates_to_date(self):
        stamp = dt.datetime(2013, 4, 8, 15, 30)
        assert date_to_ordinal(stamp) == date_to_ordinal(dt.date(2013, 4, 8))

    def test_garbage_rejected(self):
        with pytest.raises(DTypeError):
            date_to_ordinal(3.14)  # type: ignore[arg-type]


class TestInference:
    def test_all_int(self):
        assert infer_dtype([1, 2, None, 3]) is DType.INT

    def test_bool_before_int(self):
        assert infer_dtype([True, False]) is DType.BOOL

    def test_mixed_int_float_is_float(self):
        assert infer_dtype([1, 2.5]) is DType.FLOAT

    def test_dates(self):
        assert infer_dtype([dt.date(2020, 1, 1), None]) is DType.DATE

    def test_mixed_falls_back_to_str(self):
        assert infer_dtype([1, "a"]) is DType.STR

    def test_empty_is_str(self):
        assert infer_dtype([]) is DType.STR

    def test_all_null_is_str(self):
        assert infer_dtype([None, None]) is DType.STR


class TestCoerceValue:
    def test_none_passes_through(self):
        assert coerce_value(None, DType.INT) is None

    def test_int_from_whole_float(self):
        assert coerce_value(4.0, DType.INT) == 4

    def test_int_rejects_fractional(self):
        with pytest.raises(DTypeError):
            coerce_value(4.5, DType.INT)

    def test_float_from_int(self):
        assert coerce_value(4, DType.FLOAT) == 4.0

    def test_str_coerces_anything(self):
        assert coerce_value(12, DType.STR) == "12"

    def test_bool_from_01(self):
        assert coerce_value(1, DType.BOOL) is True
        assert coerce_value(0, DType.BOOL) is False

    def test_bool_rejects_other_numbers(self):
        with pytest.raises(DTypeError):
            coerce_value(2, DType.BOOL)

    def test_date_from_date(self):
        assert coerce_value(dt.date(1970, 1, 2), DType.DATE) == 1

    def test_date_from_int_kept(self):
        assert coerce_value(100, DType.DATE) == 100

    def test_float_rejects_text(self):
        with pytest.raises(DTypeError):
            coerce_value("abc", DType.FLOAT)
