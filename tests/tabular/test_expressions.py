"""Tests for filter expressions."""

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.tabular import Table, col, lit


class TestComparisons:
    def test_greater(self, tiny_table):
        mask = (col("age") > 60).evaluate(tiny_table)
        assert mask.tolist() == [True, False, True, False]

    def test_less_equal(self, tiny_table):
        mask = (col("age") <= 58).evaluate(tiny_table)
        assert mask.tolist() == [False, True, False, True]

    def test_eq_string(self, tiny_table):
        mask = col("sex").eq("F").evaluate(tiny_table)
        assert mask.tolist() == [True, False, True, False]

    def test_eq_operator_builds_expression(self, tiny_table):
        mask = (col("sex") == "M").evaluate(tiny_table)
        assert mask.tolist() == [False, True, False, False]

    def test_ne(self, tiny_table):
        mask = (col("sex") != "F").evaluate(tiny_table)
        # null sex is neither == nor != a value? NOT(eq) includes null rows
        assert mask.tolist() == [False, True, False, True]

    def test_null_never_matches_comparison(self, tiny_table):
        mask = (col("fbg") > 0).evaluate(tiny_table)
        assert mask.tolist() == [True, True, False, True]

    def test_comparing_against_none_is_all_false(self, tiny_table):
        mask = col("sex").eq(None).evaluate(tiny_table)
        assert not mask.any()

    def test_between(self, tiny_table):
        mask = col("age").between(45, 61).evaluate(tiny_table)
        assert mask.tolist() == [True, True, False, True]

    def test_between_exclusive(self, tiny_table):
        mask = col("age").between(45, 61, inclusive=False).evaluate(tiny_table)
        assert mask.tolist() == [False, True, False, True]


class TestSetsAndNulls:
    def test_isin(self, tiny_table):
        mask = col("pid").isin([1, 4]).evaluate(tiny_table)
        assert mask.tolist() == [True, False, False, True]

    def test_isin_ignores_none_entries(self, tiny_table):
        mask = col("sex").isin(["F", None]).evaluate(tiny_table)
        assert mask.tolist() == [True, False, True, False]

    def test_is_null(self, tiny_table):
        mask = col("fbg").is_null().evaluate(tiny_table)
        assert mask.tolist() == [False, False, True, False]

    def test_is_not_null(self, tiny_table):
        mask = col("sex").is_not_null().evaluate(tiny_table)
        assert mask.tolist() == [True, True, True, False]


class TestCombinators:
    def test_and(self, tiny_table):
        mask = ((col("age") > 50) & col("sex").eq("F")).evaluate(tiny_table)
        assert mask.tolist() == [True, False, True, False]

    def test_or(self, tiny_table):
        mask = ((col("age") < 50) | col("fbg").is_null()).evaluate(tiny_table)
        assert mask.tolist() == [False, True, True, False]

    def test_not(self, tiny_table):
        mask = (~col("sex").eq("F")).evaluate(tiny_table)
        assert mask.tolist() == [False, True, False, True]

    def test_describe_renders(self):
        text = ((col("a") > 1) & ~col("b").eq("x")).describe()
        assert "a" in text and "NOT" in text and "AND" in text


class TestErrors:
    def test_bare_column_must_be_bool(self, tiny_table):
        with pytest.raises(DTypeError):
            col("age").evaluate(tiny_table)

    def test_bool_column_as_filter(self):
        table = Table.from_rows([{"flag": True}, {"flag": False}, {"flag": None}])
        mask = col("flag").evaluate(table)
        assert mask.tolist() == [True, False, False]

    def test_literal_not_a_predicate(self, tiny_table):
        with pytest.raises(DTypeError):
            lit(1).evaluate(tiny_table)

    def test_comparison_coerces_operand(self, tiny_table):
        mask = (col("age") > 60.0).evaluate(tiny_table)
        assert mask.tolist() == [True, False, True, False]
