"""Tests for the typed column."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import DTypeError, LengthMismatchError
from repro.tabular.column import Column
from repro.tabular.dtypes import DType


class TestConstruction:
    def test_from_values_infers(self):
        column = Column.from_values([1, 2, None])
        assert column.dtype is DType.INT
        assert column.to_list() == [1, 2, None]

    def test_from_values_explicit_dtype(self):
        column = Column.from_values([1, 2], dtype="float")
        assert column.dtype is DType.FLOAT
        assert column.to_list() == [1.0, 2.0]

    def test_from_numpy_floats_mask_nan(self):
        column = Column.from_numpy(np.array([1.0, np.nan, 3.0]), "float")
        assert column.null_count == 1
        assert column.to_list() == [1.0, None, 3.0]

    def test_nulls_constructor(self):
        column = Column.nulls("str", 3)
        assert column.to_list() == [None, None, None]

    def test_mismatched_mask_rejected(self):
        with pytest.raises(LengthMismatchError):
            Column(DType.INT, np.array([1, 2]), np.array([True]))

    def test_dates_round_trip(self):
        days = [dt.date(2010, 5, 1), None, dt.date(2011, 6, 2)]
        column = Column.from_values(days, dtype="date")
        assert column.to_list() == days


class TestTransforms:
    def test_take_reorders(self):
        column = Column.from_values([10, 20, 30])
        assert column.take(np.array([2, 0])).to_list() == [30, 10]

    def test_mask_filters(self):
        column = Column.from_values([10, 20, 30])
        assert column.mask(np.array([True, False, True])).to_list() == [10, 30]

    def test_mask_length_checked(self):
        column = Column.from_values([1, 2])
        with pytest.raises(LengthMismatchError):
            column.mask(np.array([True]))

    def test_concat_same_dtype(self):
        a = Column.from_values([1, None])
        b = Column.from_values([3])
        assert a.concat(b).to_list() == [1, None, 3]

    def test_concat_rejects_mixed_dtypes(self):
        with pytest.raises(DTypeError):
            Column.from_values([1]).concat(Column.from_values(["x"]))

    def test_fill_null(self):
        column = Column.from_values([1, None, 3]).fill_null(0)
        assert column.to_list() == [1, 0, 3]
        assert column.null_count == 0

    def test_map_preserves_nulls(self):
        column = Column.from_values([1, None, 3]).map(lambda v: v * 2)
        assert column.to_list() == [2, None, 6]

    def test_cast_int_to_str(self):
        assert Column.from_values([1, None]).cast("str").to_list() == ["1", None]

    def test_cast_identity_returns_same(self):
        column = Column.from_values([1])
        assert column.cast("int") is column


class TestReductions:
    def test_sum_skips_nulls(self):
        assert Column.from_values([1, None, 3]).sum() == 4

    def test_sum_all_null_is_none(self):
        assert Column.nulls("int", 2).sum() is None

    def test_sum_rejects_strings(self):
        with pytest.raises(DTypeError):
            Column.from_values(["a"]).sum()

    def test_mean(self):
        assert Column.from_values([2.0, None, 4.0]).mean() == pytest.approx(3.0)

    def test_min_max_str(self):
        column = Column.from_values(["b", "a", None])
        assert column.min() == "a"
        assert column.max() == "b"

    def test_min_max_dates(self):
        column = Column.from_values([dt.date(2011, 1, 1), dt.date(2009, 1, 1)])
        assert column.min() == dt.date(2009, 1, 1)
        assert column.max() == dt.date(2011, 1, 1)

    def test_count_excludes_nulls(self):
        assert Column.from_values([1, None, 3]).count() == 2

    def test_n_unique(self):
        assert Column.from_values(["a", "b", "a", None]).n_unique() == 2

    def test_unique_sorted(self):
        assert Column.from_values([3, 1, 3, None]).unique() == [1, 3]

    def test_value_counts(self):
        counts = Column.from_values(["x", "y", "x", None]).value_counts()
        assert counts == {"x": 2, "y": 1}

    def test_std_population(self):
        assert Column.from_values([2.0, 4.0]).std() == pytest.approx(1.0)

    def test_equality(self):
        assert Column.from_values([1, None]) == Column.from_values([1, None])
        assert Column.from_values([1]) != Column.from_values([2])
