"""Tests for Table.describe()."""

import pytest

from repro.tabular import Table


@pytest.fixture()
def summary(tiny_table):
    table = tiny_table.describe()
    return {row["column"]: row for row in table.to_rows()}


def test_one_row_per_column(tiny_table, summary):
    assert set(summary) == set(tiny_table.column_names)


def test_numeric_statistics(summary):
    age = summary["age"]
    assert age["dtype"] == "int"
    assert age["count"] == 4
    assert age["nulls"] == 0
    assert age["mean"] == pytest.approx((61 + 45 + 72 + 58) / 4)
    assert age["min"] == 45 and age["max"] == 72
    assert age["mode"] is None


def test_null_accounting(summary):
    fbg = summary["fbg"]
    assert fbg["count"] == 3
    assert fbg["nulls"] == 1


def test_categorical_mode(summary):
    sex = summary["sex"]
    assert sex["mode"] == "F"
    assert sex["distinct"] == 2
    assert sex["mean"] is None


def test_describe_of_describe_works(tiny_table):
    # describe() output is itself a well-formed table
    assert tiny_table.describe().describe().num_rows == 10
