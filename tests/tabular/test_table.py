"""Tests for the Table container."""

import numpy as np
import pytest

from repro.errors import (
    ColumnNotFoundError,
    LengthMismatchError,
    SchemaMismatchError,
)
from repro.tabular import Table, col
from repro.tabular.dtypes import DType


class TestConstruction:
    def test_from_rows_first_seen_order(self):
        table = Table.from_rows([{"a": 1}, {"b": 2, "a": 3}])
        assert table.column_names == ["a", "b"]
        assert table.row(0) == {"a": 1, "b": None}

    def test_from_rows_with_schema_rejects_extras(self):
        with pytest.raises(SchemaMismatchError, match="row 0"):
            Table.from_rows([{"a": 1, "zz": 2}], schema={"a": "int"})

    def test_from_columns(self):
        table = Table.from_columns({"x": [1, 2], "y": ["a", "b"]})
        assert table.num_rows == 2
        assert table.schema == {"x": DType.INT, "y": DType.STR}

    def test_empty(self):
        table = Table.empty({"a": "int"})
        assert table.num_rows == 0
        assert table.schema == {"a": DType.INT}

    def test_unequal_columns_rejected(self):
        from repro.tabular.column import Column

        with pytest.raises(LengthMismatchError):
            Table({"a": Column.from_values([1]), "b": Column.from_values([1, 2])})


class TestAccess:
    def test_missing_column_lists_available(self, tiny_table):
        with pytest.raises(ColumnNotFoundError, match="available"):
            tiny_table.column("nope")

    def test_row_negative_index(self, tiny_table):
        assert tiny_table.row(-1)["pid"] == 4

    def test_row_out_of_range(self, tiny_table):
        with pytest.raises(IndexError):
            tiny_table.row(4)

    def test_contains(self, tiny_table):
        assert "age" in tiny_table
        assert "nope" not in tiny_table

    def test_to_rows_round_trip(self, tiny_table):
        rebuilt = Table.from_rows(tiny_table.to_rows(), schema=tiny_table.schema)
        assert rebuilt.equals(tiny_table)


class TestRowOps:
    def test_filter_expression(self, tiny_table):
        result = tiny_table.filter(col("age") > 50)
        assert result.column("pid").to_list() == [1, 3, 4]

    def test_filter_mask(self, tiny_table):
        result = tiny_table.filter(np.array([True, False, False, True]))
        assert result.num_rows == 2

    def test_filter_mask_length_checked(self, tiny_table):
        with pytest.raises(LengthMismatchError):
            tiny_table.filter(np.array([True]))

    def test_take_duplicates(self, tiny_table):
        result = tiny_table.take([0, 0, 2])
        assert result.column("pid").to_list() == [1, 1, 3]

    def test_head(self, tiny_table):
        assert tiny_table.head(2).num_rows == 2
        assert tiny_table.head(99).num_rows == 4

    def test_sort_by_ascending_nulls_last(self, tiny_table):
        result = tiny_table.sort_by("fbg")
        assert result.column("fbg").to_list() == [5.1, 6.3, 7.2, None]

    def test_sort_by_descending_nulls_still_last(self, tiny_table):
        result = tiny_table.sort_by("fbg", descending=True)
        assert result.column("fbg").to_list() == [7.2, 6.3, 5.1, None]

    def test_sort_by_two_keys_stable(self):
        table = Table.from_rows(
            [
                {"g": "b", "v": 1},
                {"g": "a", "v": 2},
                {"g": "a", "v": 1},
            ]
        )
        result = table.sort_by("g", "v")
        assert result.to_rows() == [
            {"g": "a", "v": 1},
            {"g": "a", "v": 2},
            {"g": "b", "v": 1},
        ]

    def test_append(self, tiny_table):
        doubled = tiny_table.append(tiny_table)
        assert doubled.num_rows == 8

    def test_append_schema_checked(self, tiny_table):
        other = Table.from_rows([{"pid": 1}])
        with pytest.raises(SchemaMismatchError):
            tiny_table.append(other)

    def test_distinct_on_column(self, tiny_table):
        assert tiny_table.distinct("sex").column("sex").to_list() == ["F", "M", None]

    def test_distinct_full_rows(self):
        table = Table.from_rows([{"a": 1}, {"a": 1}, {"a": 2}])
        assert table.distinct().num_rows == 2


class TestColumnOps:
    def test_select_order(self, tiny_table):
        assert tiny_table.select(["fbg", "pid"]).column_names == ["fbg", "pid"]

    def test_drop(self, tiny_table):
        assert "fbg" not in tiny_table.drop("fbg")

    def test_drop_missing_raises(self, tiny_table):
        with pytest.raises(ColumnNotFoundError):
            tiny_table.drop("nope")

    def test_rename(self, tiny_table):
        renamed = tiny_table.rename({"fbg": "glucose"})
        assert "glucose" in renamed and "fbg" not in renamed

    def test_with_column_replaces(self, tiny_table):
        result = tiny_table.with_column("age", [0, 0, 0, 0])
        assert result.column("age").to_list() == [0, 0, 0, 0]

    def test_with_column_length_checked(self, tiny_table):
        with pytest.raises(LengthMismatchError):
            tiny_table.with_column("new", [1, 2])

    def test_with_derived(self, tiny_table):
        result = tiny_table.with_derived(
            "senior", lambda row: row["age"] >= 65, dtype="bool"
        )
        assert result.column("senior").to_list() == [False, False, True, False]

    def test_to_text_contains_values(self, tiny_table):
        text = tiny_table.to_text()
        assert "pid" in text and "7.2" in text
