"""Tests for hash joins."""

import pytest

from repro.errors import TabularError
from repro.tabular import Table, hash_join


@pytest.fixture()
def facts():
    return Table.from_rows(
        [
            {"pid": 1, "fbg": 7.0},
            {"pid": 2, "fbg": 5.0},
            {"pid": 9, "fbg": 6.0},
            {"pid": None, "fbg": 4.0},
        ]
    )


@pytest.fixture()
def dims():
    return Table.from_rows(
        [
            {"pid": 1, "sex": "F"},
            {"pid": 2, "sex": "M"},
            {"pid": 3, "sex": "F"},
        ]
    )


class TestInnerJoin:
    def test_matches_only(self, facts, dims):
        joined = hash_join(facts, dims, on="pid")
        assert joined.num_rows == 2
        assert set(joined.column("sex").to_list()) == {"F", "M"}

    def test_null_keys_never_match(self, facts, dims):
        joined = hash_join(facts, dims, on="pid")
        assert None not in joined.column("pid").to_list()

    def test_one_to_many_fanout(self, dims):
        many = Table.from_rows([{"pid": 1, "v": 1}, {"pid": 1, "v": 2}])
        joined = hash_join(dims, many, on="pid")
        assert joined.num_rows == 2

    def test_name_collision_suffixed(self, facts):
        other = Table.from_rows([{"pid": 1, "fbg": 99.0}])
        joined = hash_join(facts, other, on="pid")
        assert "fbg_right" in joined.column_names


class TestLeftJoin:
    def test_unmatched_rows_kept_with_nulls(self, facts, dims):
        joined = hash_join(facts, dims, on="pid", how="left")
        assert joined.num_rows == 4
        by_pid = {row["pid"]: row["sex"] for row in joined.to_rows()}
        assert by_pid[9] is None
        assert by_pid[1] == "F"

    def test_multi_key_join(self):
        left = Table.from_rows([{"a": 1, "b": "x", "v": 10}])
        right = Table.from_rows(
            [{"a": 1, "b": "x", "w": 1}, {"a": 1, "b": "y", "w": 2}]
        )
        joined = hash_join(left, right, on=["a", "b"])
        assert joined.num_rows == 1
        assert joined.row(0)["w"] == 1


class TestErrors:
    def test_unknown_how(self, facts, dims):
        with pytest.raises(TabularError):
            hash_join(facts, dims, on="pid", how="outer")

    def test_empty_keys(self, facts, dims):
        with pytest.raises(TabularError):
            hash_join(facts, dims, on=[])
