"""Tests for hash joins."""

import pytest

from repro.errors import TabularError
from repro.tabular import Table, hash_join


@pytest.fixture()
def facts():
    return Table.from_rows(
        [
            {"pid": 1, "fbg": 7.0},
            {"pid": 2, "fbg": 5.0},
            {"pid": 9, "fbg": 6.0},
            {"pid": None, "fbg": 4.0},
        ]
    )


@pytest.fixture()
def dims():
    return Table.from_rows(
        [
            {"pid": 1, "sex": "F"},
            {"pid": 2, "sex": "M"},
            {"pid": 3, "sex": "F"},
        ]
    )


@pytest.mark.usefixtures("kernel_mode")
class TestInnerJoin:
    def test_matches_only(self, facts, dims):
        joined = hash_join(facts, dims, on="pid")
        assert joined.num_rows == 2
        assert set(joined.column("sex").to_list()) == {"F", "M"}

    def test_null_keys_never_match(self, facts, dims):
        joined = hash_join(facts, dims, on="pid")
        assert None not in joined.column("pid").to_list()

    def test_one_to_many_fanout(self, dims):
        many = Table.from_rows([{"pid": 1, "v": 1}, {"pid": 1, "v": 2}])
        joined = hash_join(dims, many, on="pid")
        assert joined.num_rows == 2

    def test_name_collision_suffixed(self, facts):
        other = Table.from_rows([{"pid": 1, "fbg": 99.0}])
        joined = hash_join(facts, other, on="pid")
        assert "fbg_right" in joined.column_names


@pytest.mark.usefixtures("kernel_mode")
class TestLeftJoin:
    def test_unmatched_rows_kept_with_nulls(self, facts, dims):
        joined = hash_join(facts, dims, on="pid", how="left")
        assert joined.num_rows == 4
        by_pid = {row["pid"]: row["sex"] for row in joined.to_rows()}
        assert by_pid[9] is None
        assert by_pid[1] == "F"

    def test_multi_key_join(self):
        left = Table.from_rows([{"a": 1, "b": "x", "v": 10}])
        right = Table.from_rows(
            [{"a": 1, "b": "x", "w": 1}, {"a": 1, "b": "y", "w": 2}]
        )
        joined = hash_join(left, right, on=["a", "b"])
        assert joined.num_rows == 1
        assert joined.row(0)["w"] == 1


@pytest.mark.usefixtures("kernel_mode")
class TestEmptyRight:
    """Regression: a left join against an empty right table raised
    IndexError (gathering index 0 from zero-length arrays)."""

    @pytest.fixture()
    def empty_dims(self):
        return Table.empty({"pid": "int", "sex": "str"})

    def test_left_join_empty_right_emits_nulls(self, facts, empty_dims):
        joined = hash_join(facts, empty_dims, on="pid", how="left")
        assert joined.num_rows == facts.num_rows
        assert joined.column("sex").to_list() == [None] * facts.num_rows
        assert joined.column("fbg").to_list() == facts.column("fbg").to_list()

    def test_inner_join_empty_right_is_empty(self, facts, empty_dims):
        joined = hash_join(facts, empty_dims, on="pid")
        assert joined.num_rows == 0
        assert joined.column_names == ["pid", "fbg", "sex"]
        assert joined.schema["sex"].value == "str"

    def test_both_sides_empty(self, empty_dims):
        empty_facts = Table.empty({"pid": "int", "fbg": "float"})
        for how in ("inner", "left"):
            joined = hash_join(empty_facts, empty_dims, on="pid", how=how)
            assert joined.num_rows == 0


class TestErrors:
    def test_unknown_how(self, facts, dims):
        with pytest.raises(TabularError):
            hash_join(facts, dims, on="pid", how="outer")

    def test_empty_keys(self, facts, dims):
        with pytest.raises(TabularError):
            hash_join(facts, dims, on=[])
