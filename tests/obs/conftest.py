"""Obs tests mutate the module-level switch; restore it per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _isolated_obs():
    yield
    obs.disable()
    obs.metrics().reset()
    obs.slow_log().clear()
    obs.configure_from_env()  # restore whatever the CI env asked for
