"""Module-level switch: configure_mode, REPRO_OBS parsing, slow-query log."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.obs import ConsoleSink, JsonLinesSink, RingBufferSink


class TestConfigureMode:
    @pytest.mark.parametrize("mode", ["", "0", "off"])
    def test_off_modes_disable(self, mode):
        obs.configure(sinks=[RingBufferSink()])
        assert obs.configure_mode(mode) is False
        assert obs.enabled() is False

    @pytest.mark.parametrize("mode", ["1", "ring"])
    def test_ring_modes(self, mode):
        assert obs.configure_mode(mode) is True
        assert obs.enabled() is True
        assert any(isinstance(s, RingBufferSink) for s in obs.tracer().sinks)

    def test_console_mode(self):
        assert obs.configure_mode("console") is True
        assert any(isinstance(s, ConsoleSink) for s in obs.tracer().sinks)

    def test_jsonl_mode_writes_span_trees(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert obs.configure_mode(f"jsonl:{out}") is True
        with obs.span("op_a", rows=3):
            with obs.span("op_b"):
                pass
        for sink in obs.tracer().sinks:
            if isinstance(sink, JsonLinesSink):
                sink.close()
        lines = out.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 1
        tree = json.loads(lines[0])
        assert tree["name"] == "op_a"
        assert tree["attrs"]["rows"] == 3
        assert [c["name"] for c in tree["children"]] == ["op_b"]

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="REPRO_OBS"):
            obs.configure_mode("carrier-pigeon")

    def test_threshold_passes_through(self):
        obs.configure_mode("ring", slow_query_threshold_s=1.5)
        assert obs.slow_log().threshold_s == 1.5


class TestConfigureFromEnv:
    def test_env_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        obs.configure(sinks=[RingBufferSink()])
        assert obs.configure_from_env() is False
        assert obs.enabled() is False

    def test_env_ring(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "ring")
        assert obs.configure_from_env() is True
        assert obs.enabled() is True

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "ring")
        monkeypatch.setenv("REPRO_OBS_SLOW_S", "0.75")
        obs.configure_from_env()
        assert obs.slow_log().threshold_s == 0.75


class TestSlowQueryLog:
    def test_slow_root_query_span_is_captured(self):
        obs.configure(sinks=[RingBufferSink()], slow_query_threshold_s=0.0)
        with obs.span("query", query="SELECT slow"):
            time.sleep(0.001)
        entries = obs.slow_log().entries
        assert len(entries) == 1
        assert entries[0].query == "SELECT slow"
        assert entries[0].duration_s > 0.0

    def test_spans_without_query_attr_are_ignored(self):
        obs.configure(sinks=[RingBufferSink()], slow_query_threshold_s=0.0)
        with obs.span("checkpoint"):
            pass
        assert len(obs.slow_log()) == 0

    def test_fast_queries_below_threshold_are_ignored(self):
        obs.configure(sinks=[RingBufferSink()], slow_query_threshold_s=30.0)
        with obs.span("query", query="SELECT fast"):
            pass
        assert len(obs.slow_log()) == 0

    def test_render_includes_query_text(self):
        obs.configure(sinks=[RingBufferSink()], slow_query_threshold_s=0.0)
        with obs.span("query", query="ROWS conditions.age_band"):
            pass
        assert "ROWS conditions.age_band" in obs.slow_log().render()
