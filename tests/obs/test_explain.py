"""EXPLAIN goldens for the paper's Figure 4 query, via both front doors.

The Fig 4 crosstab (attendances by age band x gender for patients with a
family history of diabetes) is the paper's running example; these tests
pin the measured plan tree it produces, with the lattice attached so the
plan must name the rollup node that answered it.

The group-by stage differs between the vectorized and scalar kernel
builds (CI runs both): the vector path reports ``path=vector`` plus a
``factorize`` child, the scalar fallback reports ``path=scalar`` with no
factorize step.  Goldens branch on :func:`repro.tabular.scalar_kernels_enabled`.
"""

from __future__ import annotations

import pytest

from repro.obs.explain import ExplainReport
from repro.olap.materialized import MaterializedCube
from repro.olap.mdx.evaluator import execute_mdx
from repro.olap.query import QueryBuilder, measure
from repro.tabular import scalar_kernels_enabled

FIG4_GROUP = ("conditions.age_band", "personal.gender", "personal.family_history_diabetes")

FIG4_MDX = (
    "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
    "[conditions].[age_band].MEMBERS ON ROWS "
    "FROM discri "
    "WHERE [personal].[family_history_diabetes].[yes]"
)


@pytest.fixture(scope="module")
def fig4_cube(cube):
    """The session cube with the Fig 4 lattice node attached."""
    lattice = MaterializedCube(cube).materialize([list(FIG4_GROUP)])
    cube.attach_lattice(lattice)
    yield cube
    cube.detach_lattice()


def _fig4_builder(cube) -> QueryBuilder:
    return (
        cube.query()
        .rows("conditions.age_band")
        .columns("personal.gender")
        .where("personal.family_history_diabetes", "yes")
        .measure(measure("records").size().named("attendances"))
    )


def _assert_fig4_plan(report: ExplainReport) -> None:
    root = report.plan
    agg = root.find("cube.aggregate")
    assert agg is not None
    assert agg.attrs["levels"] == "conditions.age_band,personal.gender"
    assert agg.attrs["filtered"] is True

    # The plan must name the lattice node that answered the query.
    lookup = root.find("lattice.lookup")
    assert lookup is not None
    assert lookup.attrs["outcome"] == "rollup"
    assert lookup.attrs["node"] == ",".join(FIG4_GROUP)

    groupby = root.find("groupby.agg")
    assert groupby is not None
    if scalar_kernels_enabled():
        assert groupby.attrs["path"] == "scalar"
        assert groupby.find("factorize") is None
    else:
        assert groupby.attrs["path"] == "vector"
        assert groupby.find("factorize") is not None

    # Every stage carries a measured wall-clock duration.
    for node in root.walk():
        assert node.duration_ms >= 0.0


class TestBuilderPath:
    def test_fig4_plan_tree(self, fig4_cube):
        report = _fig4_builder(fig4_cube).explain()
        assert isinstance(report, ExplainReport)
        _assert_fig4_plan(report)
        assert report.plan.op == "query"

    def test_to_text_stable_form(self, fig4_cube):
        text = _fig4_builder(fig4_cube).explain().to_text(timings=False)
        assert text.startswith("EXPLAIN ")
        assert "ROWS conditions.age_band" in text
        assert "WHERE personal.family_history_diabetes IN (yes)" in text
        assert "lattice.lookup" in text
        assert "outcome=rollup" in text
        assert "ms)" not in text  # timings suppressed

    def test_explain_carries_the_result_grid(self, fig4_cube):
        report = _fig4_builder(fig4_cube).explain()
        grid = report.result
        assert grid is not None
        # explain() must return the same numbers execute() would
        executed = _fig4_builder(fig4_cube).execute()
        assert grid.grand_total() == executed.grand_total()

    def test_explain_does_not_consume_the_builder(self, fig4_cube):
        builder = _fig4_builder(fig4_cube)
        first = builder.explain()
        second = builder.explain()
        assert first.result.grand_total() == second.result.grand_total()


class TestMdxPath:
    def test_explain_prefix_returns_report(self, fig4_cube):
        result = execute_mdx(fig4_cube, "EXPLAIN " + FIG4_MDX)
        assert isinstance(result, ExplainReport)
        _assert_fig4_plan(result)

    def test_mdx_plan_has_parser_and_pivot_stages(self, fig4_cube):
        report = execute_mdx(fig4_cube, "EXPLAIN " + FIG4_MDX)
        for stage in ("mdx.parse", "mdx.resolve", "mdx.pivot"):
            assert report.plan.find(stage) is not None, stage

    def test_header_echoes_the_mdx_source(self, fig4_cube):
        text = execute_mdx(fig4_cube, "EXPLAIN " + FIG4_MDX).to_text(timings=False)
        first_line = text.splitlines()[0]
        assert first_line == "EXPLAIN " + FIG4_MDX

    def test_both_paths_agree_on_the_lattice_node(self, fig4_cube):
        via_mdx = execute_mdx(fig4_cube, "EXPLAIN " + FIG4_MDX)
        via_builder = _fig4_builder(fig4_cube).explain()
        assert (
            via_mdx.plan.find("lattice.lookup").attrs["node"]
            == via_builder.plan.find("lattice.lookup").attrs["node"]
            == ",".join(FIG4_GROUP)
        )


class TestWithoutLattice:
    def test_base_table_scan_is_reported(self, fresh_built):
        from repro.olap.cube import Cube

        report = _fig4_builder(Cube(fresh_built.warehouse)).explain()
        agg = report.plan.find("cube.aggregate")
        assert agg is not None
        assert report.plan.find("lattice.lookup") is None
        assert report.plan.find("groupby.agg") is not None
