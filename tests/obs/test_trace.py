"""Span/Tracer semantics: nesting, exceptions, context propagation, no-op."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs import NULL_SPAN, RingBufferSink, Tracer, activate


def _recording_tracer() -> tuple[Tracer, RingBufferSink]:
    ring = RingBufferSink()
    return Tracer(sinks=[ring]), ring


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer, ring = _recording_tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        root = ring.last()
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_only_root_reaches_sinks(self):
        tracer, ring = _recording_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in ring.spans] == ["root"]

    def test_durations_are_measured_and_ordered(self):
        tracer, ring = _recording_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                time.sleep(0.002)
        root = ring.last()
        child = root.children[0]
        assert child.duration_s >= 0.002
        assert root.duration_s >= child.duration_s

    def test_walk_and_find(self):
        tracer, ring = _recording_tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        root = ring.last()
        assert [s.name for s in root.walk()] == ["root", "a", "b"]
        assert root.find("b").name == "b"
        assert root.find("absent") is None


class TestExceptions:
    def test_error_recorded_and_not_swallowed(self):
        tracer, ring = _recording_tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise ValueError("boom")
        root = ring.last()
        assert root.error == "ValueError: boom"
        assert root.children[0].error == "ValueError: boom"

    def test_stack_restored_after_exception(self):
        """A span that dies mid-tree must not corrupt later nesting."""
        tracer, ring = _recording_tracer()
        with tracer.span("first"):
            with pytest.raises(RuntimeError):
                with tracer.span("dies"):
                    raise RuntimeError("x")
            with tracer.span("after"):
                pass
        root = ring.last()
        assert [c.name for c in root.children] == ["dies", "after"]
        assert obs.current_span() is None

    def test_root_flushes_to_sink_even_on_error(self):
        tracer, ring = _recording_tracer()
        with pytest.raises(KeyError):
            with tracer.span("root"):
                raise KeyError("k")
        assert len(ring) == 1


class TestContextPropagation:
    def test_activate_overrides_global(self):
        global_ring = RingBufferSink()
        obs.configure(sinks=[global_ring])
        local_tracer, local_ring = _recording_tracer()
        with activate(local_tracer):
            with obs.span("local_op"):
                pass
        assert [s.name for s in local_ring.spans] == ["local_op"]
        assert len(global_ring) == 0

    def test_activate_restores_previous_tracer(self):
        tracer, _ = _recording_tracer()
        with activate(tracer):
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is None


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        obs.disable()
        assert obs.span("anything", rows=9) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(rows=1) is NULL_SPAN
            assert span.recording is False

    def test_metric_helpers_do_not_register_while_disabled(self):
        obs.disable()
        obs.metrics().reset()
        obs.count("x.count")
        obs.observe("x.hist", 0.5)
        obs.set_gauge("x.gauge", 2.0)
        assert obs.metrics().names() == []

    def test_noop_overhead_guard(self):
        """The disabled fast path must stay allocation- and work-free.

        Budget is deliberately loose (5 µs/call vs the ~100 ns it takes):
        this is a tripwire for accidentally moving real work onto the
        disabled path, not a microbenchmark.
        """
        obs.disable()
        calls = 50_000
        start = time.perf_counter()
        for _ in range(calls):
            with obs.span("probe"):
                pass
        per_call = (time.perf_counter() - start) / calls
        assert per_call < 5e-6

    def test_recording_flag_guards_attribute_computation(self):
        obs.disable()
        span = obs.span("probe")
        assert span.recording is False
        tracer, _ = _recording_tracer()
        assert tracer.span("probe").recording is True
