"""MetricsRegistry: counters, gauges, histogram percentiles, rendering."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registry_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_mean_and_count(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)

    def test_percentile_interpolates(self):
        h = Histogram("lat", buckets=tuple(float(b) for b in range(10, 110, 10)))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=10.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=10.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_percentile_never_exceeds_observed_max(self):
        h = Histogram("lat")
        h.observe(0.7)
        h.observe(123.4)
        assert h.percentile(99) <= 123.4

    def test_empty_histogram_percentile(self):
        h = Histogram("lat")
        assert h.percentile(95) == 0.0
        assert h.mean == 0.0


class TestRegistry:
    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.gauge("depth").set(4.0)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["hits"]["value"] == 2
        assert snap["depth"]["value"] == 4.0
        assert snap["lat"]["count"] == 1
        assert {"p50", "p95", "p99"} <= set(snap["lat"])

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.reset()
        assert reg.names() == []

    def test_render_mentions_each_metric(self):
        reg = MetricsRegistry()
        reg.counter("storage.checkpoints").inc()
        reg.histogram("query.seconds").observe(0.01)
        text = reg.render()
        assert "storage.checkpoints" in text
        assert "query.seconds" in text
