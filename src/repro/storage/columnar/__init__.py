"""Partitioned, compressed columnar storage with zone-map pruning.

The flat view is sharded horizontally into immutable
:class:`~repro.storage.columnar.segment.Segment`\\ s — by patient-id hash
and/or visit-date band (:class:`PartitioningSpec`) — each carrying
dictionary/RLE-encoded columns and a zone map (min/max, null counts,
distinct-count hints).  :class:`PartitionedStore` prunes segments whose
zones exclude a predicate before any kernel runs, fans surviving scans
out per partition (serial / threads / ``REPRO_SCAN_PROCS`` processes)
and reassembles flat-view row order so answers stay byte-identical to
the unpartitioned engine.

Configured through the redesigned storage API::

    SystemConfig(storage=StorageConfig(partitioning="auto",
                                       encodings="auto",
                                       scan_executor="threads"))
"""

from repro.storage.columnar.config import (
    PartitioningSpec,
    StorageConfig,
    coerce_storage,
)
from repro.storage.columnar.encodings import (
    DictColumn,
    EncodedColumn,
    PlainColumn,
    RLEColumn,
    choose_encoding,
    encode_column,
)
from repro.storage.columnar.segment import Segment
from repro.storage.columnar.store import PartitionedStore, ScanStats
from repro.storage.columnar.zonemap import ColumnZone, ZoneMap

__all__ = [
    "PartitioningSpec",
    "StorageConfig",
    "coerce_storage",
    "EncodedColumn",
    "PlainColumn",
    "DictColumn",
    "RLEColumn",
    "encode_column",
    "choose_encoding",
    "Segment",
    "ZoneMap",
    "ColumnZone",
    "PartitionedStore",
    "ScanStats",
]
