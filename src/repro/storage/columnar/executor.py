"""Scan executors: serial, thread-pool, and multiprocess partition fan-out.

Partition scans are embarrassingly parallel — each surviving segment
decodes and filters independently and the store reassembles global order
afterwards — but the thread pool in :mod:`repro.serving.parallel` only
beats the GIL while numpy holds it released.  Decode-heavy scans over
dictionary/RLE columns spend real time in Python, so this module adds a
**process** executor: a fork-based pool whose children inherit the
segments through :data:`_FORK_STATE` (set immediately before the fork),
so tasks ship only ``(segment index, predicate)`` and results ship only
the kept rows — the encoded data itself is never pickled.

Mode selection (config wins, then environment, then serial)::

    StorageConfig(scan_executor="processes", scan_procs=4)   # explicit
    REPRO_SCAN_PROCS=4 python ...                            # env opt-in

``REPRO_SCAN_PROCS=N`` (N >= 2) selects the process executor with N
workers when the config leaves ``scan_executor`` unset.  Platforms
without ``fork`` (and single-survivor scans, where fan-out is pure
overhead) degrade to the serial loop — identical results, same contract
as every other degradation rung in the engine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.columnar.segment import Segment
    from repro.tabular.expressions import Expression

#: Environment opt-in for the multiprocess scan executor (worker count).
SCAN_PROCS_ENV = "REPRO_SCAN_PROCS"

#: segments inherited by forked scan workers (set around pool creation)
_FORK_STATE: dict = {"segments": None}

#: process-local count of processes→serial degradations, readable even
#: with observability disabled (surfaced via ``ingest_health()["storage"]``)
_DEGRADED = {"count": 0}


def degraded_count() -> int:
    """How many scans fell back from the process pool to serial."""
    return _DEGRADED["count"]


def _note_degraded(reason: str) -> None:
    """Record a processes→serial fallback: counter + one-shot warning.

    The fallback itself is the right call (identical answers, no
    fan-out), but it used to be silent — a chaos sweep configured for
    process scans would happily "pass" while measuring the serial path.
    """
    _DEGRADED["count"] += 1
    obs.warn_once(
        "storage.scan.procs_degraded",
        f"multiprocess partition scan degraded to serial: {reason} "
        f"(answers identical; further degradations counted silently)",
    )


@dataclass(frozen=True)
class ScanMode:
    """Resolved executor choice: name + worker budget."""

    name: str
    workers: int


def _env_procs() -> int:
    raw = os.environ.get(SCAN_PROCS_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def resolve_mode(executor: str | None, procs: int | None) -> ScanMode:
    """Resolve the executor spelling to a concrete mode.

    Explicit config wins; with no config, ``REPRO_SCAN_PROCS >= 2``
    opts into processes; otherwise scans run serially (the bit-identical
    default, mirroring ``REPRO_WORKERS``'s opt-in philosophy).
    """
    if executor is None:
        env = _env_procs()
        if env >= 2:
            return ScanMode("processes", env)
        return ScanMode("serial", 1)
    if executor == "serial":
        return ScanMode("serial", 1)
    if executor == "threads":
        from repro.serving.parallel import default_workers

        workers = procs if procs is not None else max(default_workers(), 2)
        return ScanMode("threads", max(2, workers))
    if executor == "processes":
        workers = procs if procs is not None else (_env_procs() or 2)
        return ScanMode("processes", max(2, workers))
    raise StorageError(f"unknown scan executor {executor!r}")


def _fork_available() -> bool:
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _scan_one(segments: Sequence["Segment"], idx: int, predicate):
    from repro.storage.columnar.store import filter_segment

    return filter_segment(segments[idx], predicate)


def _child_scan(task):
    """Executed in a forked worker: scan one inherited segment."""
    idx, predicate = task
    segments = _FORK_STATE["segments"]
    return _scan_one(segments, idx, predicate)


def run_scan(
    segments: Sequence["Segment"],
    survivors: Sequence[int],
    predicate: "Expression | None",
    mode: ScanMode,
) -> list:
    """Scan the surviving segments under ``mode``; results in survivor order.

    Each result is ``filter_segment``'s ``(kept_row_index, kept_columns,
    elapsed_ms)`` tuple.
    """
    if not survivors:
        return []
    if mode.name == "serial" or len(survivors) == 1:
        return [_scan_one(segments, i, predicate) for i in survivors]
    if mode.name == "threads":
        from repro.serving.parallel import parallel_map

        return parallel_map(
            lambda i: _scan_one(segments, i, predicate),
            list(survivors),
            max_workers=mode.workers,
        )
    if mode.name == "processes":
        if not _fork_available():
            _note_degraded("fork start method unavailable on this platform")
            return [_scan_one(segments, i, predicate) for i in survivors]
        return _run_forked(segments, survivors, predicate, mode.workers)
    raise StorageError(f"unknown scan mode {mode.name!r}")


def _run_forked(
    segments: Sequence["Segment"],
    survivors: Sequence[int],
    predicate: "Expression | None",
    workers: int,
) -> list:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    # children inherit the segments via fork: publish them before the
    # pool starts, clear after — tasks carry only (index, predicate)
    _FORK_STATE["segments"] = segments
    try:
        with ctx.Pool(processes=min(workers, len(survivors))) as pool:
            tasks = [(i, predicate) for i in survivors]
            results = pool.map(_child_scan, tasks)
    except Exception as exc:
        # pool setup/pickling trouble: degrade to the serial rung —
        # identical answers, just no process fan-out
        _note_degraded(f"fork pool failed ({type(exc).__name__}: {exc})")
        return [_scan_one(segments, i, predicate) for i in survivors]
    finally:
        _FORK_STATE["segments"] = None
    obs.count("storage.scan.procs_used")
    return results
