"""Column encodings for partition segments: dictionary, RLE, plain.

A segment stores each column in an *encoded* form chosen per column (see
:func:`choose_encoding`); :meth:`EncodedColumn.decode` reconstructs the
original :class:`~repro.tabular.column.Column` **exactly** — same dtype,
same data array values (sentinels included for null slots where the
encoding preserves them, otherwise the canonical sentinel), same validity
mask.  Exact round-trip is the invariant everything above relies on:
partition-pruned scans must be byte-identical to full scans, so an
encoding is never allowed to be lossy.  The hypothesis suite in
``tests/storage/test_columnar_properties.py`` asserts the round-trip for
every dtype, nulls and date payloads included.

Two space-saving encodings are implemented:

``dict``
    Dense integer codes into a unique-value dictionary — the columnar
    form of the warehouse's low-cardinality attributes (gender, bands,
    statuses).  Nulls share one dedicated code.  Not used for float
    columns (NaN identity makes uniquing treacherous; floats RLE or stay
    plain).
``rle``
    Run-length encoding — the natural fit for sorted/banded columns
    (visit-year bands, repeated per-patient attributes).  Runs compare
    validity-aware, so null runs compress even though their data slots
    hold sentinels.

``plain`` keeps the numpy buffers as-is (still a private copy, so a
segment never aliases the table it was built from).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import StorageError
from repro.tabular.column import Column
from repro.tabular.dtypes import NULL_SENTINELS, DType

#: encoding names accepted by :func:`encode_column`
ENCODINGS = ("auto", "plain", "dict", "rle")

#: per-pointer overhead assumed when sizing object (str) arrays
_OBJECT_POINTER_BYTES = 8


def _object_nbytes(data: np.ndarray, valid: np.ndarray) -> int:
    """Estimated heap footprint of an object (str) array."""
    total = len(data) * _OBJECT_POINTER_BYTES
    for value, ok in zip(data.tolist(), valid.tolist()):
        if ok and value is not None:
            total += len(value)
    return total


def column_nbytes(column: Column) -> int:
    """Estimated in-memory footprint of a decoded column."""
    if column.dtype is DType.STR:
        return _object_nbytes(column.data, column.valid) + column.valid.nbytes
    return int(column.data.nbytes) + int(column.valid.nbytes)


class EncodedColumn:
    """Base class: an immutable encoded column of one logical dtype."""

    encoding = "plain"

    def __init__(self, dtype: DType, length: int):
        self.dtype = dtype
        self.length = length

    def __len__(self) -> int:
        return self.length

    def decode(self) -> Column:
        """Reconstruct the original column exactly."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Estimated encoded footprint in bytes."""
        raise NotImplementedError

    def null_count(self) -> int:
        """Number of null slots (without decoding)."""
        raise NotImplementedError


class PlainColumn(EncodedColumn):
    """Identity encoding: private copies of the data + validity buffers."""

    encoding = "plain"

    def __init__(self, dtype: DType, data: np.ndarray, valid: np.ndarray):
        super().__init__(dtype, len(data))
        self.data = data
        self.valid = valid

    @classmethod
    def from_column(cls, column: Column) -> "PlainColumn":
        return cls(column.dtype, column.data.copy(), column.valid.copy())

    def decode(self) -> Column:
        return Column(self.dtype, self.data, self.valid)

    @property
    def nbytes(self) -> int:
        if self.dtype is DType.STR:
            return _object_nbytes(self.data, self.valid) + self.valid.nbytes
        return int(self.data.nbytes) + int(self.valid.nbytes)

    def null_count(self) -> int:
        return int((~self.valid).sum())


def _smallest_code_dtype(n_codes: int) -> np.dtype:
    if n_codes <= np.iinfo(np.uint8).max:
        return np.dtype(np.uint8)
    if n_codes <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


class DictColumn(EncodedColumn):
    """Dictionary encoding: codes into a unique-value array.

    ``uniques`` holds the distinct present values in storage
    representation; nulls map to the dedicated code ``len(uniques)``.
    Decoding gathers ``uniques[codes]`` and writes the dtype's canonical
    sentinel into null slots, so the reconstructed buffers match what
    :meth:`Column.from_values` would have produced.
    """

    encoding = "dict"

    def __init__(self, dtype: DType, codes: np.ndarray, uniques: np.ndarray):
        super().__init__(dtype, len(codes))
        self.codes = codes
        self.uniques = uniques

    @classmethod
    def from_column(cls, column: Column) -> "DictColumn":
        if column.dtype is DType.FLOAT:
            raise StorageError(
                "dict encoding is not defined for float columns "
                "(NaN identity); use rle or plain"
            )
        valid = column.valid
        present = column.data[valid]
        if column.dtype is DType.STR:
            mapping: dict[object, int] = {}
            uniques_list: list[object] = []
            codes = np.empty(len(column), dtype=np.int64)
            for i, (value, ok) in enumerate(
                zip(column.data.tolist(), valid.tolist())
            ):
                if not ok:
                    codes[i] = -1
                    continue
                code = mapping.get(value)
                if code is None:
                    code = len(uniques_list)
                    mapping[value] = code
                    uniques_list.append(value)
                codes[i] = code
            uniques = np.array(uniques_list, dtype=object)
        else:
            uniques, inverse = np.unique(present, return_inverse=True)
            codes = np.full(len(column), -1, dtype=np.int64)
            codes[valid] = inverse
        null_code = len(uniques)
        codes[codes < 0] = null_code
        width = _smallest_code_dtype(null_code + 1)
        return cls(column.dtype, codes.astype(width, copy=False), uniques)

    def decode(self) -> Column:
        null_code = len(self.uniques)
        codes = self.codes.astype(np.int64, copy=False)
        valid = codes != null_code
        sentinel = NULL_SENTINELS[self.dtype]
        if self.dtype is DType.STR:
            data = np.empty(len(codes), dtype=object)
            present_codes = codes[valid]
            data[valid] = self.uniques[present_codes]
            data[~valid] = sentinel
        else:
            # gather via a dictionary extended with the sentinel slot
            extended = np.concatenate(
                [self.uniques, np.array([sentinel], dtype=self.uniques.dtype)]
            )
            data = extended[codes].astype(self.dtype.numpy_dtype, copy=False)
        return Column(self.dtype, data, valid)

    @property
    def nbytes(self) -> int:
        if self.dtype is DType.STR:
            uniques_bytes = len(self.uniques) * _OBJECT_POINTER_BYTES + sum(
                len(v) for v in self.uniques.tolist() if v is not None
            )
        else:
            uniques_bytes = int(self.uniques.nbytes)
        return int(self.codes.nbytes) + uniques_bytes

    def null_count(self) -> int:
        return int((self.codes == len(self.uniques)).sum())

    def n_distinct(self) -> int:
        """Distinct present values — free with this encoding."""
        return len(self.uniques)


class RLEColumn(EncodedColumn):
    """Run-length encoding: (value, validity, length) per run.

    Run boundaries are validity-aware: two adjacent null slots always
    share a run (their data sentinels are not compared), and two adjacent
    valid slots share a run exactly when their data compares equal.
    Floats compare *bitwise*, not by value: ``-0.0`` never merges with
    ``0.0`` (value equality would drop the sign bit on decode) and two
    NaNs merge exactly when their payload bits match — either way the
    round-trip stays byte-exact.
    """

    encoding = "rle"

    def __init__(
        self,
        dtype: DType,
        values: np.ndarray,
        valids: np.ndarray,
        lengths: np.ndarray,
    ):
        super().__init__(dtype, int(lengths.sum()))
        self.values = values
        self.valids = valids
        self.lengths = lengths

    @staticmethod
    def _run_starts(data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        if len(data) == 0:
            return np.zeros(0, dtype=np.int64)
        valid_change = valid[1:] != valid[:-1]
        if data.dtype.kind == "f":
            # bitwise compare: value equality would merge -0.0 with 0.0
            # (losing the sign bit on decode) and split bit-identical NaNs
            bits = np.ascontiguousarray(data).view(f"u{data.dtype.itemsize}")
            raw_diff = bits[1:] != bits[:-1]
        else:
            with np.errstate(all="ignore"):
                raw_diff = data[1:] != data[:-1]
        both_valid = valid[1:] & valid[:-1]
        change = valid_change | (both_valid & np.asarray(raw_diff, dtype=bool))
        return np.concatenate(
            [np.zeros(1, dtype=np.int64), np.flatnonzero(change) + 1]
        )

    @classmethod
    def from_column(cls, column: Column) -> "RLEColumn":
        starts = cls._run_starts(column.data, column.valid)
        if len(starts) == 0:
            return cls(
                column.dtype,
                np.empty(0, dtype=column.dtype.numpy_dtype),
                np.zeros(0, dtype=bool),
                np.zeros(0, dtype=np.int64),
            )
        ends = np.concatenate([starts[1:], np.array([len(column)], dtype=np.int64)])
        values = column.data[starts].copy()
        valids = column.valid[starts].copy()
        # null runs store the canonical sentinel so equal stores produce
        # identical bytes regardless of what the source sentinel slot held
        sentinel = NULL_SENTINELS[column.dtype]
        if values.dtype == object:
            values[~valids] = sentinel
        else:
            values[~valids] = sentinel
        return cls(column.dtype, values, valids, ends - starts)

    def decode(self) -> Column:
        data = np.repeat(self.values, self.lengths)
        valid = np.repeat(self.valids, self.lengths)
        return Column(self.dtype, data, valid)

    @property
    def nbytes(self) -> int:
        if self.dtype is DType.STR:
            values_bytes = _object_nbytes(self.values, self.valids)
        else:
            values_bytes = int(self.values.nbytes)
        return values_bytes + int(self.valids.nbytes) + int(self.lengths.nbytes)

    def null_count(self) -> int:
        return int(self.lengths[~self.valids].sum())

    def run_count(self) -> int:
        """Number of runs — the compression denominator."""
        return len(self.lengths)


def choose_encoding(column: Column) -> str:
    """Pick the cheapest encoding for one column (the ``auto`` policy).

    Deterministic and O(n): runs are counted from the run-boundary mask;
    cardinality is probed only for non-float dtypes.  A column must earn
    its encoding — anything high-cardinality and run-free stays plain.
    """
    n = len(column)
    if n == 0:
        return "plain"
    runs = len(RLEColumn._run_starts(column.data, column.valid))
    if runs <= max(1, n // 4):
        return "rle"
    if column.dtype is not DType.FLOAT:
        distinct = column.n_unique() + (1 if column.null_count else 0)
        if distinct <= max(1, n // 2) and distinct <= np.iinfo(np.uint16).max:
            return "dict"
    return "plain"


def encode_column(column: Column, encoding: str = "auto") -> EncodedColumn:
    """Encode one column; ``auto`` applies :func:`choose_encoding`."""
    if encoding not in ENCODINGS:
        raise StorageError(
            f"unknown encoding {encoding!r} (valid: {', '.join(ENCODINGS)})"
        )
    if encoding == "auto":
        encoding = choose_encoding(column)
    if encoding == "dict" and column.dtype is DType.FLOAT:
        encoding = "rle"
    if encoding == "plain":
        return PlainColumn.from_column(column)
    if encoding == "dict":
        return DictColumn.from_column(column)
    return RLEColumn.from_column(column)


def resolve_encodings(
    spec: "str | Mapping[str, str]", column_names: list[str]
) -> dict[str, str]:
    """Per-column encoding names from a config spec.

    ``spec`` is either one name applied to every column or a mapping of
    column → name (missing columns default to ``auto``).
    """
    if isinstance(spec, str):
        if spec not in ENCODINGS:
            raise StorageError(
                f"unknown encoding {spec!r} (valid: {', '.join(ENCODINGS)})"
            )
        return {name: spec for name in column_names}
    resolved = {}
    for name in column_names:
        resolved[name] = spec.get(name, "auto")
        if resolved[name] not in ENCODINGS:
            raise StorageError(
                f"unknown encoding {resolved[name]!r} for column {name!r}"
            )
    return resolved
