"""Storage configuration: partitioning spec, encodings, scan executor.

The redesigned storage API is configured in one place::

    SystemConfig(storage=StorageConfig(
        partitioning=PartitioningSpec(hash_column="cardinality.patient_id",
                                      hash_partitions=4,
                                      band_column="cardinality.visit_year"),
        encodings="auto",
        scan_executor="threads",
    ))

``partitioning="auto"`` resolves against the flat view's schema when the
store is built: the hash column is the first patient-id-shaped int
column, the band column the first DATE column (falling back to an int
column named like a visit year).  Resolution happens once — the resolved
spec is stored on the :class:`~repro.storage.columnar.store.PartitionedStore`
so delta appends and compactions route rows to the *same* partitions the
original build chose, which is what keeps zone maps selective across a
store's lifetime.

Partition assignment must be stable across processes and runs (Python's
``hash`` is salted), so hashing uses a fixed multiplicative mix for
ints/dates and CRC32 for strings.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import StorageError
from repro.tabular.dtypes import DType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table

#: default number of hash partitions when a hash column is used.  Kept
#: deliberately small: every extra partition pays a fixed per-column cost
#: at scan time (the cohort flat view is ~277 columns wide), so more
#: partitions only help once per-row work dwarfs that overhead.
DEFAULT_HASH_PARTITIONS = 4

#: Fibonacci multiplicative-hash constant (2^64 / golden ratio, odd)
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class PartitioningSpec:
    """How the flat view is sharded into horizontal partition segments.

    Rows are grouped by ``(band, hash_bucket)``: the band comes from an
    absolute integer division of the band column (so band identity is
    stable as deltas arrive), the bucket from a stable hash of the hash
    column.  Either part may be absent; with neither, the store holds a
    single partition per publish.
    """

    hash_column: str | None = None
    hash_partitions: int = DEFAULT_HASH_PARTITIONS
    band_column: str | None = None
    band_width: int = 1

    def __post_init__(self) -> None:
        if self.hash_partitions < 1:
            raise StorageError("hash_partitions must be >= 1")
        if self.band_width < 1:
            raise StorageError("band_width must be >= 1")

    def to_dict(self) -> dict:
        return {
            "hash_column": self.hash_column,
            "hash_partitions": self.hash_partitions,
            "band_column": self.band_column,
            "band_width": self.band_width,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PartitioningSpec":
        return cls(
            hash_column=payload.get("hash_column"),
            hash_partitions=int(payload.get("hash_partitions", DEFAULT_HASH_PARTITIONS)),
            band_column=payload.get("band_column"),
            band_width=int(payload.get("band_width", 1)),
        )

    # ------------------------------------------------------------------
    # Resolution & assignment
    # ------------------------------------------------------------------

    @classmethod
    def resolve_auto(cls, table: "Table") -> "PartitioningSpec":
        """Pick partition columns from a flat view's schema.

        Hash column: first INT column whose name is ``patient_id`` or
        ends with ``.patient_id``.  Band column: first DATE column
        (banded per ~year of day ordinals), otherwise the first INT
        column whose (qualified) name contains ``visit_year`` or
        ``year``.  Either may end up absent.
        """
        schema = table.schema
        hash_column = None
        for name, dtype in schema.items():
            if dtype is DType.INT and (
                name == "patient_id" or name.endswith(".patient_id")
            ):
                hash_column = name
                break
        band_column = None
        band_width = 1
        for name, dtype in schema.items():
            if dtype is DType.DATE:
                band_column = name
                band_width = 365  # day ordinals → one band per ~year
                break
        if band_column is None:
            for name, dtype in schema.items():
                if dtype is DType.INT and (
                    "visit_year" in name or name.endswith("year")
                ):
                    band_column = name
                    break
        return cls(
            hash_column=hash_column,
            band_column=band_column,
            band_width=band_width,
        )

    def partition_parts(self, table: "Table") -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(bands, buckets)`` arrays (both int64).

        The band is an *absolute* division of the band column
        (``value // band_width``), so band identity never shifts as
        deltas extend the value range; the bucket is a stable hash.
        Rows with a null band/hash value fall into band/bucket 0 of that
        dimension.
        """
        n = table.num_rows
        if self.band_column is not None:
            column = table.column(self.band_column)
            if column.dtype not in (DType.INT, DType.DATE):
                raise StorageError(
                    f"band column {self.band_column!r} must be int or date, "
                    f"got {column.dtype.value}"
                )
            values = column.data.astype(np.int64, copy=False)
            bands = np.floor_divide(values, self.band_width)
            bands = np.where(column.valid, bands, np.int64(0))
        else:
            bands = np.zeros(n, dtype=np.int64)
        if self.hash_column is not None:
            buckets = stable_bucket(
                table.column(self.hash_column), self.hash_partitions
            )
        else:
            buckets = np.zeros(n, dtype=np.int64)
        return bands, buckets


def stable_bucket(column, n_buckets: int) -> np.ndarray:
    """Stable hash bucket per row (independent of PYTHONHASHSEED)."""
    if column.dtype in (DType.INT, DType.DATE, DType.BOOL):
        raw = column.data.astype(np.int64, copy=False).view(np.uint64)
        mixed = raw * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(29)
        buckets = (mixed % np.uint64(n_buckets)).astype(np.int64)
    elif column.dtype is DType.STR:
        buckets = np.array(
            [
                zlib.crc32(v.encode("utf-8")) % n_buckets if ok and v is not None else 0
                for v, ok in zip(column.data.tolist(), column.valid.tolist())
            ],
            dtype=np.int64,
        )
    else:
        raise StorageError(
            f"hash partitioning is not defined for {column.dtype.value} columns"
        )
    return np.where(column.valid, buckets, np.int64(0))


@dataclass(frozen=True)
class StorageConfig:
    """Configuration for the partitioned columnar store.

    ``partitioning`` is a :class:`PartitioningSpec`, the string ``"auto"``
    (resolve from the schema at build time) or ``None`` (single
    partition).  ``encodings`` is an encoding name applied to every
    column or a per-column mapping (see
    :mod:`repro.storage.columnar.encodings`).  ``scan_executor`` picks
    how surviving partitions are scanned: ``"serial"``, ``"threads"`` or
    ``"processes"`` (``None`` defers to ``REPRO_SCAN_PROCS`` / serial).
    ``scan_procs`` bounds the process pool when the process executor is
    used.
    """

    partitioning: "PartitioningSpec | str | None" = "auto"
    encodings: "str | Mapping[str, str]" = "auto"
    scan_executor: str | None = None
    scan_procs: int | None = None

    _EXECUTORS = (None, "serial", "threads", "processes")

    def __post_init__(self) -> None:
        if isinstance(self.partitioning, Mapping):
            object.__setattr__(
                self, "partitioning", PartitioningSpec.from_dict(self.partitioning)
            )
        if self.scan_executor not in self._EXECUTORS:
            raise StorageError(
                f"unknown scan_executor {self.scan_executor!r} "
                "(valid: serial, threads, processes)"
            )
        if self.scan_procs is not None and self.scan_procs < 1:
            raise StorageError("scan_procs must be >= 1")
        if isinstance(self.partitioning, str) and self.partitioning != "auto":
            raise StorageError(
                f"partitioning must be a PartitioningSpec, 'auto' or None, "
                f"got {self.partitioning!r}"
            )

    def resolve_partitioning(self, table: "Table") -> "PartitioningSpec | None":
        if self.partitioning == "auto":
            return PartitioningSpec.resolve_auto(table)
        return self.partitioning


def coerce_storage(value: "StorageConfig | Mapping | bool | None") -> "StorageConfig | None":
    """Normalise the ``SystemConfig(storage=...)`` spelling.

    Accepts a ready :class:`StorageConfig`, a plain mapping of its
    fields, ``True`` (all defaults) or ``None``/``False`` (storage off).
    """
    if value is None or value is False:
        return None
    if value is True:
        return StorageConfig()
    if isinstance(value, StorageConfig):
        return value
    if isinstance(value, Mapping):
        return StorageConfig(**dict(value))
    raise StorageError(
        f"storage must be a StorageConfig, mapping, bool or None, got {value!r}"
    )
