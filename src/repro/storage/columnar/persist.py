"""Durable segment persistence: checksummed generations + atomic manifest.

On-disk layout (the PR 2 snapshot-generation pattern, per segment)::

    <root>/
      MANIFEST.json            # {"generation_dir": ..., "generation": N}
      gen-0000/
        store.json             # layout + per-segment checksums
        seg-g0000-00000.seg    # pickled encoded segment, CRC in store.json
      gen-0001/ ...

Writers build a complete new generation directory *next to* the live
one, then swap the root ``MANIFEST.json`` atomically.  The manifest swap
is the commit point: a crash anywhere before it (including the
``storage.compaction`` fault point fired immediately before the swap)
leaves the old generation fully intact and still referenced — kill a
compaction mid-flight and recovery serves the old segments, verified by
the fault-matrix test.  Segment files are written through the
``storage.segment.write`` boundary so torn/corrupt/killed segment writes
are injectable too; every segment's CRC32 is checked on load.

Old generations are pruned only after the swap commits (keep=2,
matching the snapshot store).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from pathlib import Path

from repro.errors import ChecksumError, PersistenceError
from repro.storage import faults
from repro.storage.columnar.config import PartitioningSpec, StorageConfig
from repro.storage.columnar.segment import Segment
from repro.storage.columnar.store import PartitionedStore
from repro.storage.durable import atomic_write_bytes, atomic_write_json, crc32_hex
from repro.tabular.dtypes import DType

MANIFEST_NAME = "MANIFEST.json"
STORE_META_NAME = "store.json"

#: committed generations retained after a successful swap
KEEP_GENERATIONS = 2

#: fault boundary: one hit per segment file written
SEGMENT_WRITE_POINT = "storage.segment.write"

#: fault boundary: fired immediately before the manifest swap — the
#: commit point of a compaction/save; a kill here serves old segments
COMPACTION_POINT = "storage.compaction"


def _generation_dirs(root: Path) -> list[Path]:
    if not root.exists():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir() and p.name.startswith("gen-"))


def _next_generation_dir(root: Path) -> Path:
    existing = _generation_dirs(root)
    if not existing:
        return root / "gen-0000"
    last = max(int(p.name.split("-")[1]) for p in existing)
    return root / f"gen-{last + 1:04d}"


def save_store(store: PartitionedStore, root: str | Path) -> Path:
    """Persist ``store`` as a new committed generation under ``root``.

    Returns the generation directory.  Atomic at the manifest swap:
    until the swap succeeds, readers (and :func:`load_store`) keep
    resolving the previous generation.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    gen_dir = _next_generation_dir(root)
    gen_dir.mkdir()

    segment_entries = []
    for segment in store.segments:
        payload = pickle.dumps(segment, protocol=pickle.HIGHEST_PROTOCOL)
        filename = f"{segment.segment_id}.seg"
        atomic_write_bytes(gen_dir / filename, payload, point=SEGMENT_WRITE_POINT)
        segment_entries.append(
            {
                "segment_id": segment.segment_id,
                "file": filename,
                "crc32": crc32_hex(payload),
                "num_rows": segment.num_rows,
                "key": list(segment.key),
            }
        )

    meta = {
        "format": 1,
        "generation": store.generation,
        "num_rows": store.num_rows,
        "spec": store.spec.to_dict() if store.spec else None,
        "encodings": store.encodings,
        "schema": {name: dtype.value for name, dtype in store.schema.items()},
        "segments": segment_entries,
    }
    atomic_write_json(gen_dir / STORE_META_NAME, meta, point=SEGMENT_WRITE_POINT)

    # the commit point: everything above is invisible until this swap
    faults.fire(COMPACTION_POINT)
    atomic_write_json(
        root / MANIFEST_NAME,
        {"generation_dir": gen_dir.name, "generation": store.generation},
        point=COMPACTION_POINT + ".manifest",
    )
    _prune(root, keep=KEEP_GENERATIONS)
    return gen_dir


def _prune(root: Path, keep: int) -> None:
    manifest = _read_manifest(root)
    live = manifest["generation_dir"] if manifest else None
    dirs = _generation_dirs(root)
    # never prune the live generation; drop oldest beyond the keep window
    victims = [p for p in dirs if p.name != live][: max(0, len(dirs) - keep)]
    for victim in victims:
        shutil.rmtree(victim, ignore_errors=True)


def _read_manifest(root: Path) -> dict | None:
    path = root / MANIFEST_NAME
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_store(root: str | Path, config: "StorageConfig | None" = None) -> PartitionedStore:
    """Load the committed generation under ``root``, verifying checksums."""
    root = Path(root)
    manifest = _read_manifest(root)
    if manifest is None:
        raise PersistenceError(f"no columnar store manifest under {root}")
    gen_dir = root / manifest["generation_dir"]
    meta_path = gen_dir / STORE_META_NAME
    if not meta_path.exists():
        raise PersistenceError(
            f"manifest references {gen_dir.name!r} but its store.json is missing"
        )
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)

    segments: list[Segment] = []
    for entry in meta["segments"]:
        path = gen_dir / entry["file"]
        with open(path, "rb") as handle:
            payload = handle.read()
        actual = crc32_hex(payload)
        if actual != entry["crc32"]:
            raise ChecksumError(
                f"segment {entry['segment_id']} is corrupt: "
                f"crc {actual} != recorded {entry['crc32']}"
            )
        segments.append(pickle.loads(payload))

    spec = PartitioningSpec.from_dict(meta["spec"]) if meta["spec"] else None
    schema = {name: DType.coerce(value) for name, value in meta["schema"].items()}
    return PartitionedStore(
        tuple(segments),
        spec,
        meta["encodings"],
        schema,
        int(meta["num_rows"]),
        config or StorageConfig(),
        generation=int(meta["generation"]),
    )


def discard_uncommitted(root: str | Path) -> list[str]:
    """Remove generation directories the manifest does not reference.

    The recovery sweep after a mid-compaction crash: a half-written
    generation (segments present, swap never happened) is garbage.
    Returns the names removed.
    """
    root = Path(root)
    manifest = _read_manifest(root)
    live = manifest["generation_dir"] if manifest else None
    removed = []
    for gen_dir in _generation_dirs(root):
        if gen_dir.name == live:
            continue
        incomplete = not (gen_dir / STORE_META_NAME).exists()
        # a generation numbered past the live one never got its swap —
        # that is exactly the mid-compaction-crash leftover
        newer_than_live = live is not None and gen_dir.name > live
        if incomplete or newer_than_live or live is None:
            shutil.rmtree(gen_dir, ignore_errors=True)
            removed.append(gen_dir.name)
    # stray tmp files from torn atomic writes
    for tmp in root.rglob("*.tmp"):
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return removed
