"""The partitioned columnar store: build, append, scan, compact.

A :class:`PartitionedStore` is an immutable collection of
:class:`~repro.storage.columnar.segment.Segment`\\ s that together hold
exactly the rows of one flat-view epoch.  Stores are versioned the same
way cube states are: ``append`` and ``compact`` return a **new** store
sharing unchanged segments, so a pinned :class:`~repro.olap.cube.CubeSnapshot`
keeps serving the segments of its epoch no matter how many deltas or
compactions land after it.

``scan_filter`` is the partition-aware replacement for
``flat.filter(predicate)`` and is answer-identical to it **byte for
byte**: segments whose zone maps exclude the predicate are pruned,
survivors are scanned (optionally in parallel — see
:mod:`repro.storage.columnar.executor`), and the kept rows are put back
into flat-view order using each segment's global row index before any
order-sensitive float kernel sees them.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.errors import SchemaMismatchError, StorageError
from repro.storage.columnar.config import PartitioningSpec, StorageConfig
from repro.storage.columnar.encodings import column_nbytes, resolve_encodings
from repro.storage.columnar.segment import Segment
from repro.tabular.column import Column
from repro.tabular.expressions import Expression
from repro.tabular.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


class ScanStats:
    """What one ``scan_filter`` call did — the EXPLAIN partition contract.

    ``partitions`` holds one entry per *scanned* segment:
    ``{segment_id, key, band, bucket, est_rows, actual_rows, ms}`` where
    ``est_rows`` is the zone-map estimate made before the scan and
    ``actual_rows`` the rows the predicate actually kept.
    """

    __slots__ = (
        "segments_total",
        "segments_scanned",
        "segments_pruned",
        "rows_scanned",
        "rows_kept",
        "executor",
        "partitions",
    )

    def __init__(self, segments_total: int, executor: str):
        self.segments_total = segments_total
        self.segments_scanned = 0
        self.segments_pruned = 0
        self.rows_scanned = 0
        self.rows_kept = 0
        self.executor = executor
        self.partitions: list[dict] = []

    def to_dict(self) -> dict:
        return {
            "segments_total": self.segments_total,
            "partitions_scanned": self.segments_scanned,
            "partitions_pruned": self.segments_pruned,
            "rows_scanned": self.rows_scanned,
            "rows_kept": self.rows_kept,
            "executor": self.executor,
            "partitions": list(self.partitions),
        }


def _estimate_rows(segment: Segment, predicate: "Expression | None") -> int:
    """Pre-scan row estimate for one surviving segment.

    Equality against a column with a distinct-count hint estimates
    ``rows / n_distinct`` (uniform assumption); everything else uses the
    segment row count — an upper bound, which is the honest estimate a
    min/max zone can give.
    """
    if predicate is None:
        return segment.num_rows
    from repro.tabular.expressions import _Compare

    if isinstance(predicate, _Compare) and predicate.symbol == "==":
        zone = segment.zones.zones.get(predicate.name)
        if zone is not None and zone.n_distinct:
            return max(1, segment.num_rows // zone.n_distinct)
    return segment.num_rows


def filter_segment(
    segment: Segment, predicate: "Expression | None"
) -> tuple[np.ndarray, dict[str, Column], float]:
    """Scan one segment: decode, evaluate, keep matching rows.

    Returns ``(kept_global_row_index, kept_columns, elapsed_ms)``.  This
    is the unit of work every scan executor runs — in the calling
    thread, a pool thread, or a forked worker process.
    """
    started = time.perf_counter()
    table = segment.table()
    if predicate is None:
        keep = None
    else:
        keep = predicate.evaluate(table)
        if keep.all():
            keep = None  # whole segment kept: skip per-column masking
    if keep is None:
        kept_index = segment.row_index
        kept = {name: table.column(name) for name in table.column_names}
    else:
        kept_index = segment.row_index[keep]
        kept = {
            name: table.column(name).mask(keep) for name in table.column_names
        }
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return kept_index, kept, elapsed_ms


class PartitionedStore:
    """Immutable set of partition segments holding one flat-view epoch."""

    __slots__ = (
        "segments",
        "spec",
        "encodings",
        "schema",
        "num_rows",
        "config",
        "generation",
    )

    def __init__(
        self,
        segments: tuple[Segment, ...],
        spec: "PartitioningSpec | None",
        encodings: Mapping[str, str],
        schema: dict,
        num_rows: int,
        config: StorageConfig,
        generation: int = 0,
    ):
        self.segments = segments
        self.spec = spec
        self.encodings = dict(encodings)
        self.schema = schema
        self.num_rows = num_rows
        self.config = config
        self.generation = generation

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, table: Table, config: "StorageConfig | None" = None) -> "PartitionedStore":
        """Partition + encode a flat view into a fresh store."""
        config = config or StorageConfig()
        spec = config.resolve_partitioning(table)
        encodings = resolve_encodings(config.encodings, table.column_names)
        segments = cls._shard(
            table,
            spec,
            encodings,
            row_offset=0,
            generation=0,
            seq_start=0,
        )
        return cls(
            tuple(segments),
            spec,
            encodings,
            dict(table.schema),
            table.num_rows,
            config,
            generation=0,
        )

    @staticmethod
    def _shard(
        table: Table,
        spec: "PartitioningSpec | None",
        encodings: Mapping[str, str],
        row_offset: int,
        generation: int,
        seq_start: int,
    ) -> list[Segment]:
        n = table.num_rows
        if n == 0:
            return []
        if spec is None:
            bands = np.zeros(n, dtype=np.int64)
            buckets = np.zeros(n, dtype=np.int64)
        else:
            bands, buckets = spec.partition_parts(table)
        # lexsort is stable → within a partition, rows keep ascending
        # global order (last key is the primary sort key)
        order = np.lexsort((buckets, bands))
        sorted_bands = bands[order]
        sorted_buckets = buckets[order]
        change = (sorted_bands[1:] != sorted_bands[:-1]) | (
            sorted_buckets[1:] != sorted_buckets[:-1]
        )
        boundaries = np.concatenate(
            [
                np.zeros(1, dtype=np.int64),
                np.flatnonzero(change) + 1,
                np.array([n], dtype=np.int64),
            ]
        )
        segments: list[Segment] = []
        for seq, (lo, hi) in enumerate(zip(boundaries[:-1], boundaries[1:])):
            indices = order[lo:hi]
            key = (int(sorted_bands[lo]), int(sorted_buckets[lo]))
            shard = table.take(indices)
            segment_id = f"seg-g{generation:04d}-{seq_start + seq:05d}"
            segments.append(
                Segment.build(
                    segment_id,
                    key,
                    shard,
                    indices.astype(np.int64) + row_offset,
                    encodings,
                )
            )
        return segments

    def append(self, delta: Table) -> "PartitionedStore":
        """A new store with ``delta`` appended as fresh segments.

        Routed through the *resolved* spec captured at build time, so a
        delta row lands in the same ``(band, bucket)`` partition its
        batch-mates did — segments multiply per publish, zone selectivity
        does not degrade.  Existing segments are shared, not copied.
        """
        if dict(delta.schema) != self.schema:
            raise SchemaMismatchError(
                "delta schema does not match the partitioned store's schema"
            )
        generation = self.generation + 1
        new_segments = self._shard(
            delta,
            self.spec,
            self.encodings,
            row_offset=self.num_rows,
            generation=generation,
            seq_start=0,
        )
        return PartitionedStore(
            self.segments + tuple(new_segments),
            self.spec,
            self.encodings,
            self.schema,
            self.num_rows + delta.num_rows,
            self.config,
            generation=generation,
        )

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def scan(
        self, predicate: "Expression | None" = None
    ) -> Iterator[tuple[Segment, Table]]:
        """Iterate surviving ``(segment, decoded chunk)`` pairs.

        The partition-aware counterpart of reading the whole flat view:
        segments whose zone maps exclude ``predicate`` are skipped
        entirely; the chunks yielded are the segments' full decoded
        tables (apply the predicate per chunk if exact rows are needed —
        :meth:`scan_filter` does that and restores global order).
        """
        for segment in self.segments:
            if predicate is not None and not segment.zones.may_match(predicate):
                continue
            yield segment, segment.table()

    def estimate_rows(self, predicate: "Expression | None") -> int:
        """Zone-map row estimate for ``scan_filter`` — never scans.

        Pruned segments contribute nothing; each survivor contributes
        its :func:`_estimate_rows` guess.  This is the base-scan work
        estimate the cost-based planner compares lattice nodes against,
        so it must stay cheap (a pure zone-map walk).
        """
        total = 0
        for segment in self.segments:
            if predicate is not None and not segment.zones.may_match(predicate):
                continue
            total += _estimate_rows(segment, predicate)
        return total

    def scan_filter(
        self,
        predicate: "Expression | None",
        executor: str | None = None,
        procs: int | None = None,
    ) -> tuple[Table, ScanStats]:
        """Pruned, fanned-out equivalent of ``flat.filter(predicate)``.

        Byte-identical to the flat-view filter: kept rows are reordered
        into ascending global row index before the table is assembled.
        """
        from repro.storage.columnar import executor as scan_executor

        mode = scan_executor.resolve_mode(
            executor if executor is not None else self.config.scan_executor,
            procs if procs is not None else self.config.scan_procs,
        )
        stats = ScanStats(len(self.segments), mode.name)
        survivors: list[int] = []
        for i, segment in enumerate(self.segments):
            if predicate is not None and not segment.zones.may_match(predicate):
                stats.segments_pruned += 1
            else:
                survivors.append(i)
        stats.segments_scanned = len(survivors)
        results = scan_executor.run_scan(self.segments, survivors, predicate, mode)

        kept_indices: list[np.ndarray] = []
        kept_columns: list[dict[str, Column]] = []
        for i, (kept_index, kept, elapsed_ms) in zip(survivors, results):
            segment = self.segments[i]
            band, bucket = segment.key
            stats.rows_scanned += segment.num_rows
            stats.rows_kept += len(kept_index)
            stats.partitions.append(
                {
                    "segment_id": segment.segment_id,
                    "band": band,
                    "bucket": bucket,
                    "est_rows": _estimate_rows(segment, predicate),
                    "actual_rows": int(len(kept_index)),
                    "ms": round(elapsed_ms, 3),
                }
            )
            if len(kept_index):
                kept_indices.append(kept_index)
                kept_columns.append(kept)
        return self._assemble(kept_indices, kept_columns), stats

    def _assemble(
        self,
        kept_indices: list[np.ndarray],
        kept_columns: list[dict[str, Column]],
    ) -> Table:
        if not kept_indices:
            return self._empty_table()
        all_index = np.concatenate(kept_indices)
        # inverse permutation: ascending global row index == flat-view order
        order = np.argsort(all_index, kind="stable")
        columns: dict[str, Column] = {}
        for name, dtype in self.schema.items():
            pieces = [chunk[name] for chunk in kept_columns]
            if len(pieces) == 1:
                data = pieces[0].data[order]
                valid = pieces[0].valid[order]
            else:
                data = np.concatenate([p.data for p in pieces])[order]
                valid = np.concatenate([p.valid for p in pieces])[order]
            columns[name] = Column(dtype, data, valid)
        return Table(columns)

    def _empty_table(self) -> Table:
        columns = {}
        for name, dtype in self.schema.items():
            columns[name] = Column(
                dtype,
                np.empty(0, dtype=dtype.numpy_dtype),
                np.zeros(0, dtype=bool),
            )
        return Table(columns)

    def to_table(self) -> Table:
        """Decode the full flat view in exact flat-view row order."""
        full, _ = self.scan_filter(None, executor="serial")
        return full

    # ------------------------------------------------------------------
    # Maintenance & accounting
    # ------------------------------------------------------------------

    def compact(self) -> "PartitionedStore":
        """Merge delta segments: back to one segment per partition key.

        Rebuilds from the decoded flat view with the same resolved spec,
        so row order and partition routing are unchanged — only the
        per-partition segment count collapses.  Returns a new store; the
        old one (and any snapshot pinning it) is untouched.
        """
        flat = self.to_table()
        generation = self.generation + 1
        segments = self._shard(
            flat,
            self.spec,
            self.encodings,
            row_offset=0,
            generation=generation,
            seq_start=0,
        )
        return PartitionedStore(
            tuple(segments),
            self.spec,
            self.encodings,
            self.schema,
            self.num_rows,
            self.config,
            generation=generation,
        )

    @property
    def nbytes(self) -> int:
        """Total encoded footprint of all segments."""
        return sum(s.nbytes for s in self.segments)

    def decoded_nbytes(self) -> int:
        """Footprint the same rows would occupy fully decoded."""
        total = 0
        for segment in self.segments:
            table = segment.table()
            for name in table.column_names:
                total += column_nbytes(table.column(name))
            total += int(segment.row_index.nbytes)
        return total

    def partition_count(self) -> int:
        """Distinct partition keys across all segments."""
        return len({s.key for s in self.segments})

    def stats(self) -> dict:
        """Store-level summary for health/bench surfaces."""
        encodings_used: dict[str, int] = {}
        for segment in self.segments:
            for enc in segment.encoding_summary().values():
                encodings_used[enc] = encodings_used.get(enc, 0) + 1
        return {
            "segments": len(self.segments),
            "partitions": self.partition_count(),
            "rows": self.num_rows,
            "generation": self.generation,
            "encoded_bytes": self.nbytes,
            "encodings": encodings_used,
            "spec": self.spec.to_dict() if self.spec else None,
        }

    def validate_same_layout(self, other: "PartitionedStore") -> None:
        """Raise unless ``other`` was built with this store's layout."""
        if self.spec != other.spec or self.schema != other.schema:
            raise StorageError("partitioned stores have different layouts")
