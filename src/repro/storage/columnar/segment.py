"""Immutable partition segments: encoded columns + zone map + row index.

A segment is one horizontal shard of the flat view at one publish: a set
of encoded columns (:mod:`repro.storage.columnar.encodings`), the zone
map used for pruning, and the **global row index** — each segment row's
position in the logical flat view.  The row index is what makes
partitioned answers byte-identical to flat-view answers: float
aggregation is order-sensitive, so after a fan-out scan the surviving
rows are put back into flat-view order before any kernel touches them
(see :meth:`~repro.storage.columnar.store.PartitionedStore.scan_filter`).

Segments are immutable; decoding is cached lazily under a lock so
concurrent readers share one decoded table per segment.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.storage.columnar.encodings import EncodedColumn, encode_column
from repro.storage.columnar.zonemap import ZoneMap
from repro.tabular.dtypes import DType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


class Segment:
    """One immutable horizontal shard of the flat view."""

    __slots__ = (
        "segment_id",
        "key",
        "row_index",
        "columns",
        "zones",
        "num_rows",
        "schema",
        "_table",
        "_lock",
    )

    def __init__(
        self,
        segment_id: str,
        key: tuple[int, int],
        row_index: np.ndarray,
        columns: dict[str, EncodedColumn],
        zones: ZoneMap,
        schema: dict[str, DType],
    ):
        self.segment_id = segment_id
        self.key = key
        self.row_index = row_index
        self.columns = columns
        self.zones = zones
        self.num_rows = len(row_index)
        self.schema = schema
        self._table: "Table | None" = None
        self._lock = threading.Lock()

    @classmethod
    def build(
        cls,
        segment_id: str,
        key: tuple[int, int],
        shard: "Table",
        row_index: np.ndarray,
        encodings: Mapping[str, str],
    ) -> "Segment":
        """Encode one shard of the flat view into a segment."""
        columns: dict[str, EncodedColumn] = {}
        hints: dict[str, int] = {}
        for name in shard.column_names:
            encoded = encode_column(shard.column(name), encodings.get(name, "auto"))
            columns[name] = encoded
            if hasattr(encoded, "n_distinct"):
                hints[name] = encoded.n_distinct()
        zones = ZoneMap.from_table(shard, distinct_hints=hints)
        return cls(
            segment_id,
            key,
            np.asarray(row_index, dtype=np.int64),
            columns,
            zones,
            dict(shard.schema),
        )

    def table(self) -> "Table":
        """Decode to a table (cached; concurrent readers share one copy)."""
        cached = self._table
        if cached is not None:
            return cached
        with self._lock:
            if self._table is None:
                from repro.tabular.table import Table

                self._table = Table(
                    {name: enc.decode() for name, enc in self.columns.items()}
                )
            return self._table

    @property
    def nbytes(self) -> int:
        """Encoded footprint (excluding the decoded cache)."""
        return sum(c.nbytes for c in self.columns.values()) + int(
            self.row_index.nbytes
        )

    def encoding_summary(self) -> dict[str, str]:
        """Column → encoding actually chosen (for EXPLAIN/bench output)."""
        return {name: enc.encoding for name, enc in self.columns.items()}

    def __getstate__(self):
        # Locks and the decoded cache don't cross process boundaries; the
        # fork-based scan executor re-creates them lazily per child.
        return {
            "segment_id": self.segment_id,
            "key": self.key,
            "row_index": self.row_index,
            "columns": self.columns,
            "zones": self.zones,
            "schema": self.schema,
        }

    def __setstate__(self, state):
        self.segment_id = state["segment_id"]
        self.key = state["key"]
        self.row_index = state["row_index"]
        self.columns = state["columns"]
        self.zones = state["zones"]
        self.num_rows = len(state["row_index"])
        self.schema = state["schema"]
        self._table = None
        self._lock = threading.Lock()
