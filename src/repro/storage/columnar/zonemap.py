"""Per-segment zone maps: column statistics that let scans skip segments.

A :class:`ZoneMap` records, for every column of a segment, the min/max of
present values (in storage representation — day ordinals for dates),
the null count and a distinct-count hint.  :meth:`ZoneMap.may_match`
answers the only question pruning is allowed to ask: *could any row of
this segment satisfy the predicate?*

Pruning must be **conservative**: ``may_match`` may return True for a
segment with no matching rows (a wasted scan, never a wrong answer) but
must never return False for a segment that has one.  The property suite
checks the contract directly — for random predicates, the pruned scan is
byte-identical to the full scan — so every rule below errs toward True:

* comparisons prune on the min/max envelope only (``<`` prunes when
  ``min >= v``; ``==`` prunes when ``v`` falls outside ``[min, max]``);
* null-comparison semantics are exploited: a predicate comparing an
  all-null column can never match (SQL-style three-valued logic
  collapsed to False in :mod:`repro.tabular.expressions`);
* ``AND`` prunes when *either* side prunes, ``OR`` only when both do;
* ``NOT`` and anything unrecognised never prune.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.tabular.dtypes import DType, coerce_value
from repro.tabular.expressions import (
    ColumnRef,
    Expression,
    _BoolOp,
    _Compare,
    _IsIn,
    _IsNull,
    _NotOp,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


class ColumnZone:
    """Statistics for one column of one segment."""

    __slots__ = ("dtype", "min", "max", "null_count", "n_distinct")

    def __init__(
        self,
        dtype: DType,
        minimum: object,
        maximum: object,
        null_count: int,
        n_distinct: int | None,
    ):
        self.dtype = dtype
        self.min = minimum
        self.max = maximum
        self.null_count = null_count
        #: distinct-count hint (present values); None when not computed
        self.n_distinct = n_distinct

    @classmethod
    def from_arrays(
        cls,
        dtype: DType,
        data: np.ndarray,
        valid: np.ndarray,
        n_distinct: int | None = None,
    ) -> "ColumnZone":
        present = data[valid]
        null_count = int((~valid).sum())
        if len(present) == 0:
            return cls(dtype, None, None, null_count, 0 if n_distinct is None else n_distinct)
        if dtype is DType.STR:
            values = present.tolist()
            lo, hi = min(values), max(values)
        else:
            lo, hi = present.min(), present.max()
            if dtype is DType.FLOAT:
                lo, hi = float(lo), float(hi)
            else:
                lo, hi = int(lo), int(hi)
        return cls(dtype, lo, hi, null_count, n_distinct)

    def to_dict(self) -> dict:
        return {
            "dtype": self.dtype.value,
            "min": self.min,
            "max": self.max,
            "null_count": self.null_count,
            "n_distinct": self.n_distinct,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ColumnZone":
        return cls(
            DType.coerce(payload["dtype"]),
            payload["min"],
            payload["max"],
            int(payload["null_count"]),
            payload.get("n_distinct"),
        )


class ZoneMap:
    """Zone statistics for every column of one segment."""

    __slots__ = ("zones", "num_rows")

    def __init__(self, zones: dict[str, ColumnZone], num_rows: int):
        self.zones = zones
        self.num_rows = num_rows

    @classmethod
    def from_table(
        cls, table: "Table", distinct_hints: Mapping[str, int] | None = None
    ) -> "ZoneMap":
        hints = distinct_hints or {}
        zones = {}
        for name in table.column_names:
            column = table.column(name)
            zones[name] = ColumnZone.from_arrays(
                column.dtype, column.data, column.valid, hints.get(name)
            )
        return cls(zones, table.num_rows)

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def may_match(self, predicate: Expression) -> bool:
        """Could any row in this segment satisfy ``predicate``?"""
        if self.num_rows == 0:
            return False
        return self._may(predicate)

    def _may(self, expr: Expression) -> bool:
        if isinstance(expr, _BoolOp):
            left, right = self._may(expr.left), self._may(expr.right)
            if expr.symbol == "AND":
                return left and right
            if expr.symbol == "OR":
                return left or right
            return True
        if isinstance(expr, _Compare):
            return self._may_compare(expr)
        if isinstance(expr, _IsIn):
            return self._may_isin(expr)
        if isinstance(expr, _IsNull):
            return self._may_isnull(expr)
        if isinstance(expr, ColumnRef):
            return self._may_bool_ref(expr)
        # _NotOp and anything unknown: never prune
        return True

    def _may_compare(self, expr: _Compare) -> bool:
        zone = self.zones.get(expr.name)
        if zone is None:
            return True
        if zone.min is None:
            return False  # all null: comparisons never match nulls
        try:
            operand = coerce_value(expr.operand, zone.dtype)
        except Exception:
            return True
        if operand is None:
            return False  # NULL comparisons are never true
        try:
            if expr.symbol == "<":
                return bool(zone.min < operand)
            if expr.symbol == "<=":
                return bool(zone.min <= operand)
            if expr.symbol == ">":
                return bool(zone.max > operand)
            if expr.symbol == ">=":
                return bool(zone.max >= operand)
            if expr.symbol == "==":
                return bool(zone.min <= operand <= zone.max)
        except TypeError:
            return True
        return True

    def _may_isin(self, expr: _IsIn) -> bool:
        zone = self.zones.get(expr.name)
        if zone is None:
            return True
        if zone.min is None:
            return False
        for value in expr.values:
            if value is None:
                continue  # NULL members never match
            try:
                coerced = coerce_value(value, zone.dtype)
                if coerced is not None and zone.min <= coerced <= zone.max:
                    return True
            except Exception:
                return True
        return False

    def _may_isnull(self, expr: _IsNull) -> bool:
        zone = self.zones.get(expr.name)
        if zone is None:
            return True
        if expr.want_null:
            return zone.null_count > 0
        return zone.null_count < self.num_rows

    def _may_bool_ref(self, expr: ColumnRef) -> bool:
        zone = self.zones.get(expr.name)
        if zone is None or zone.dtype is not DType.BOOL:
            return True
        if zone.min is None:
            return False  # all null: bool filter keeps only valid Trues
        return bool(zone.max)

    def to_dict(self) -> dict:
        return {
            "num_rows": self.num_rows,
            "zones": {name: zone.to_dict() for name, zone in self.zones.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ZoneMap":
        zones = {
            name: ColumnZone.from_dict(z) for name, z in payload["zones"].items()
        }
        return cls(zones, int(payload["num_rows"]))
