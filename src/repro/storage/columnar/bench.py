"""The ``bench-partition`` harness (``python -m repro bench-partition``).

Measures the partitioned-storage claims (DESIGN.md §"Partitioned
storage") and records them in ``BENCH_partition.json``:

* **parity** — pruned, partition-fanned scans must be *byte-identical*
  to filtering the flat view, for every probe predicate, on both kernel
  paths (vectorised and the scalar oracle);
* **speedup** — at ``scale``× the base row count, band-selective
  predicates must answer at least :data:`SPEED_TARGET`× faster through
  zone-map pruning than the monolithic flat filter;
* **memory** — dictionary/RLE encodings must shrink the encoded store
  below the decoded flat view's footprint.

The CI gate reads the top-level ``ok`` (and the per-section ``ok``
flags).  Timings use the best of ``repeats`` runs after a warm-up pass,
so segment decode caches are primed on both sides of the comparison.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.discri.generator import DiScRiGenerator
from repro.storage.columnar.config import StorageConfig
from repro.storage.columnar.store import PartitionedStore
from repro.tabular import SCALAR_KERNELS_ENV, Table
from repro.tabular.expressions import col

#: band-selective pruned scans must beat the flat filter by this factor
SPEED_TARGET = 2.0


def _probe_predicates(table: Table) -> list[tuple[str, object, bool]]:
    """(label, predicate, band_selective) probes over the cohort schema."""
    dates = [d for d in table.column("visit_date").to_list() if d is not None]
    lo, hi = min(dates), max(dates)
    span = (hi - lo).days or 1
    one_band_hi = lo.fromordinal(lo.toordinal() + max(1, span // 8))
    half_hi = lo.fromordinal(lo.toordinal() + span // 2)
    return [
        ("band:one-eighth-date-range", col("visit_date") <= one_band_hi, True),
        ("band:first-half-date-range", col("visit_date") <= half_hi, True),
        (
            "band:narrow-and-gender",
            (col("visit_date") <= one_band_hi) & (col("gender") == "F"),
            True,
        ),
        ("value:hba1c", col("hba1c") > 8.0, False),
        ("value:age-or-smoker", (col("age") > 70) | (col("smoking_status") == "current"), False),
        ("value:patient-ids", col("patient_id").isin([1, 2, 3]), False),
    ]


def _tables_byte_equal(a: Table, b: Table) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        if ca.dtype is not cb.dtype:
            return False
        if ca.valid.tobytes() != cb.valid.tobytes():
            return False
        if ca.dtype.value == "str":
            if ca.to_list() != cb.to_list():
                return False
        elif ca.data.tobytes() != cb.data.tobytes():
            return False
    return True


def _best_ms(fn, repeats: int) -> float:
    fn()  # warm-up: primes decode caches and numpy dispatch on both sides
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _bench_parity(store: PartitionedStore, flat: Table, probes) -> dict:
    """Byte parity of pruned scans vs the flat filter, both kernel paths."""
    results = []
    previous = os.environ.get(SCALAR_KERNELS_ENV)
    try:
        for kernels in ("vector", "scalar"):
            if kernels == "scalar":
                os.environ[SCALAR_KERNELS_ENV] = "1"
            else:
                os.environ.pop(SCALAR_KERNELS_ENV, None)
            for label, predicate, _ in probes:
                expected = flat.filter(predicate)
                got, stats = store.scan_filter(predicate)
                results.append(
                    {
                        "probe": label,
                        "kernels": kernels,
                        "rows": got.num_rows,
                        "byte_equal": _tables_byte_equal(got, expected),
                        "partitions_scanned": stats.segments_scanned,
                        "partitions_pruned": stats.segments_pruned,
                    }
                )
    finally:
        if previous is None:
            os.environ.pop(SCALAR_KERNELS_ENV, None)
        else:
            os.environ[SCALAR_KERNELS_ENV] = previous
    return {
        "probes": results,
        "ok": all(r["byte_equal"] for r in results),
    }


def _bench_speed(store: PartitionedStore, flat: Table, probes, repeats: int) -> dict:
    """Pruned scan vs monolithic flat filter, best-of-``repeats``."""
    rows = []
    for label, predicate, band_selective in probes:
        full_ms = _best_ms(lambda p=predicate: flat.filter(p), repeats)
        pruned_ms = _best_ms(
            lambda p=predicate: store.scan_filter(p), repeats
        )
        _, stats = store.scan_filter(predicate)
        rows.append(
            {
                "probe": label,
                "band_selective": band_selective,
                "full_ms": round(full_ms, 3),
                "pruned_ms": round(pruned_ms, 3),
                "speedup": round(full_ms / pruned_ms, 2) if pruned_ms else None,
                "prune_ratio": round(
                    stats.segments_pruned / stats.segments_total, 3
                )
                if stats.segments_total
                else 0.0,
                "partitions_scanned": stats.segments_scanned,
                "partitions_pruned": stats.segments_pruned,
            }
        )
    band = [r for r in rows if r["band_selective"]]
    best_band = max((r["speedup"] or 0.0) for r in band) if band else 0.0
    return {
        "probes": rows,
        "target": SPEED_TARGET,
        "best_band_speedup": best_band,
        "ok": best_band >= SPEED_TARGET,
    }


def _bench_memory(store: PartitionedStore) -> dict:
    encoded = store.nbytes
    decoded = store.decoded_nbytes()
    return {
        "encoded_bytes": encoded,
        "decoded_bytes": decoded,
        "ratio": round(encoded / decoded, 4) if decoded else None,
        "encodings": store.stats()["encodings"],
        "ok": decoded > 0 and encoded < decoded,
    }


def run_partition_bench(
    patients: int = 1200,
    scale: int = 10,
    seed: int = 42,
    repeats: int = 7,
    out: "Path | str" = "BENCH_partition.json",
) -> dict:
    """Run parity, speedup and memory phases; write ``BENCH_partition.json``.

    Parity runs on a small cohort (cheap, both kernel paths — the scalar
    oracle is a Python loop); the speedup and memory phases run at
    ``scale``× the base row count, the regime the acceptance gate
    targets: per-row savings from pruning must dominate the fixed
    per-partition overhead there.
    """
    small = DiScRiGenerator(
        n_patients=max(60, patients // 5), seed=seed
    ).generate()
    scaled = DiScRiGenerator(n_patients=patients * scale, seed=seed + 1).generate()
    config = StorageConfig()  # auto partitioning + auto encodings

    small_store = PartitionedStore.build(small, config)
    scaled_store = PartitionedStore.build(scaled, config)

    parity = _bench_parity(small_store, small, _probe_predicates(small))
    speed = _bench_speed(
        scaled_store, scaled, _probe_predicates(scaled), repeats=repeats
    )
    memory = _bench_memory(scaled_store)

    payload = {
        "bench": "partition",
        "config": {
            "patients": patients,
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "spec": scaled_store.spec.to_dict() if scaled_store.spec else None,
        },
        "cpu_count": os.cpu_count(),
        "parity_rows": small.num_rows,
        "scaled_rows": scaled.num_rows,
        "segments": len(scaled_store.segments),
        "parity": parity,
        "speedup": speed,
        "memory": memory,
        "ok": parity["ok"] and speed["ok"] and memory["ok"],
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_summary(payload: dict) -> str:
    parity, speed, memory = (
        payload["parity"], payload["speedup"], payload["memory"]
    )
    lines = ["== partitioned storage =="]
    lines.append(
        f"parity:  {sum(r['byte_equal'] for r in parity['probes'])}"
        f"/{len(parity['probes'])} probes byte-identical "
        f"-> {'ok' if parity['ok'] else 'FAILED'}"
    )
    lines.append(
        f"speedup: best band-selective {speed['best_band_speedup']}x "
        f"(target {speed['target']}x, {payload['scaled_rows']} rows, "
        f"{payload['segments']} segments) "
        f"-> {'ok' if speed['ok'] else 'FAILED'}"
    )
    ratio = memory["ratio"]
    lines.append(
        f"memory:  encoded/decoded = {ratio} "
        f"({memory['encoded_bytes']}/{memory['decoded_bytes']} bytes) "
        f"-> {'ok' if memory['ok'] else 'FAILED'}"
    )
    return "\n".join(lines)
