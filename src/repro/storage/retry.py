"""Retry with exponential backoff + jitter for transient ingest faults.

Ingest talks to storage at a handful of *named boundaries* (OLTP chunk
writes, the warehouse rebuild, the post-ingest checkpoint, ...).  Real
deployments see those boundaries fail transiently — a full disk that
clears, an fsync hiccup — and the right response is a short, jittered
backoff and another attempt, not an aborted batch.  :func:`with_retry`
wraps one boundary: each attempt first routes through the fault-injection
harness (:func:`repro.storage.faults.fire` under the boundary's name, so
``REPRO_FAULTS`` can fail any attempt deterministically), transient
failures back off and retry, and exhaustion or an explicitly permanent
failure surfaces as :class:`~repro.errors.PermanentIngestError` for the
caller to degrade on.

:class:`~repro.storage.faults.SimulatedCrash` is *not* retried — it
derives from ``BaseException`` precisely so that nothing in-process can
absorb it; a crash is recovered from disk, not retried.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro import obs
from repro.errors import (
    InjectedFault,
    PermanentIngestError,
    TransientIngestError,
)
from repro.storage import faults

#: Errors retried by default.  :class:`~repro.errors.InjectedFault` (the
#: harness's plain ``error`` mode) counts as transient so every existing
#: ``REPRO_FAULTS`` profile exercises the retry path without rewriting.
DEFAULT_TRANSIENT: tuple[type[BaseException], ...] = (
    TransientIngestError,
    InjectedFault,
)

_rng = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``n`` (1-based) failing transiently waits
    ``min(base * multiplier**(n-1), max) * (1 + jitter * U[0,1))`` before
    attempt ``n+1``; after ``attempts`` total attempts the boundary is
    declared permanently failed.
    """

    attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise PermanentIngestError(
                f"retry policy needs >= 1 attempt, got {self.attempts}"
            )

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before the attempt *after* 1-based ``attempt``."""
        base = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            base *= 1.0 + self.jitter * (rng or _rng).random()
        return base


# --------------------------------------------------------------------------
# Named policy registry
# --------------------------------------------------------------------------
#
# Retry tuning used to live as literals at each call site (ingest built a
# bare ``RetryPolicy()``, the serving layer would have grown its own).
# One registry gives every consumer a shared, named knob:
#
# ``ingest.default``
#     The write-path policy: quick, tight backoff — a batch stall is a
#     user-visible ingest delay.
# ``serving.breaker``
#     Interpreted by the serving circuit breakers rather than a retry
#     loop: ``attempts`` is the consecutive-failure threshold that opens
#     a breaker and ``max_delay_s`` the open-state delay before the
#     half-open probe.  Sharing the vocabulary keeps write-side retries
#     and read-side breakers tuned from one place.

_POLICIES: dict[str, RetryPolicy] = {
    "ingest.default": RetryPolicy(),
    "serving.breaker": RetryPolicy(
        attempts=3, base_delay_s=0.05, multiplier=2.0, max_delay_s=1.0
    ),
}


def get_policy(name: str) -> RetryPolicy:
    """The registered policy for ``name``.

    Unknown names raise :class:`~repro.errors.PermanentIngestError` —
    a misnamed policy is a configuration bug, not a retryable state.
    """
    try:
        return _POLICIES[name]
    except KeyError:
        raise PermanentIngestError(
            f"unknown retry policy {name!r} "
            f"(registered: {', '.join(sorted(_POLICIES))})"
        ) from None


def register_policy(name: str, policy: RetryPolicy) -> RetryPolicy:
    """Add or replace a named policy (deployment tuning hook)."""
    _POLICIES[name] = policy
    return policy


def with_retry(
    point: str,
    fn: Callable,
    *,
    policy: RetryPolicy | None = None,
    transient: Iterable[type[BaseException]] = DEFAULT_TRANSIENT,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    on_retry: Callable[[str, int, BaseException, float], None] | None = None,
):
    """Run ``fn`` under retry semantics at the named boundary ``point``.

    Each attempt fires the ``point`` fault hook first (deterministic
    injection via ``REPRO_FAULTS``) and then calls ``fn``.  Transient
    failures wait ``policy.delay`` and re-attempt, reporting each retry to
    ``on_retry(point, attempt, error, delay)`` and the ``ingest.retries``
    metrics; exhausting the policy raises
    :class:`~repro.errors.PermanentIngestError` chained to the last
    transient error.  :class:`~repro.errors.PermanentIngestError` from the
    boundary itself — injected or raised by ``fn`` — propagates
    immediately, as does :class:`~repro.storage.faults.SimulatedCrash`.
    """
    policy = policy or get_policy("ingest.default")
    transient_types = tuple(transient)
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            faults.fire(point)
            return fn()
        except PermanentIngestError:
            raise
        except transient_types as exc:
            last = exc
            if attempt == policy.attempts:
                break
            delay = policy.delay(attempt, rng)
            obs.count("ingest.retries")
            obs.count(f"ingest.retries.{point}")
            if on_retry is not None:
                on_retry(point, attempt, exc, delay)
            sleep(delay)
    raise PermanentIngestError(
        f"boundary {point!r} failed after {policy.attempts} attempts"
    ) from last
