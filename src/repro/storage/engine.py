"""The embedded storage engine: tables, CRUD, transactions, indexes."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from repro.errors import (
    IntegrityError,
    StorageError,
    TransactionError,
)
from repro.storage.catalog import Catalog, TableMeta
from repro.storage.durable import json_decode_value
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.wal import OP_DELETE, OP_INSERT, OP_UPDATE, WriteAheadLog
from repro.tabular.dtypes import DType, coerce_value, ordinal_to_date
from repro.tabular.table import Table


class _StoredTable:
    """Row store for one table: live rows keyed by internal row id."""

    def __init__(self, meta: TableMeta):
        self.meta = meta
        self.rows: dict[int, dict[str, object]] = {}
        self.next_row_id = 0
        self.pk_index: HashIndex | None = (
            HashIndex(meta.primary_key) if meta.primary_key else None
        )
        self.secondary: dict[str, HashIndex | SortedIndex] = {}


class StorageEngine:
    """A small single-process database with transactional row storage.

    Mutations must run inside :meth:`transaction`; reads may run any time.
    Rollback undoes every mutation of the failed transaction, and the WAL
    records committed mutations for :func:`replay_into` recovery.
    """

    def __init__(self, wal: WriteAheadLog | None = None):
        self.catalog = Catalog()
        self.wal = wal if wal is not None else WriteAheadLog()
        self._tables: dict[str, _StoredTable] = {}
        self._txn_id: int | None = None
        self._undo: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Mapping[str, DType | str],
        primary_key: str | None = None,
        not_null: set[str] | frozenset[str] = frozenset(),
        foreign_keys: Mapping[str, tuple[str, str]] | None = None,
    ) -> TableMeta:
        """Declare a new table."""
        meta = self.catalog.create(
            name, schema, primary_key=primary_key, not_null=not_null,
            foreign_keys=foreign_keys,
        )
        self._tables[name] = _StoredTable(meta)
        return meta

    def drop_table(self, name: str) -> None:
        """Remove a table and its rows."""
        self.catalog.drop(name)
        del self._tables[name]

    def add_column(self, name: str, column: str, dtype: DType | str) -> None:
        """Add a nullable column; existing rows read back as null."""
        self.catalog.add_column(name, column, dtype)

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Build a secondary index over existing and future rows."""
        stored = self._stored(table)
        if column not in stored.meta.schema:
            raise StorageError(f"cannot index unknown column {table}.{column}")
        if column in stored.secondary:
            raise StorageError(f"index on {table}.{column} already exists")
        if kind == "hash":
            index: HashIndex | SortedIndex = HashIndex(column)
        elif kind == "sorted":
            index = SortedIndex(column)
        else:
            raise StorageError(f"unknown index kind {kind!r} (hash|sorted)")
        for row_id, row in stored.rows.items():
            index.add(row.get(column), row_id)
        stored.secondary[column] = index

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[int]:
        """Open a transaction; commits on clean exit, rolls back on error."""
        if self._txn_id is not None:
            raise TransactionError("nested transactions are not supported")
        self._txn_id = self.wal.begin()
        self._undo = []
        try:
            yield self._txn_id
            # A failed commit (fsync error, injected fault) must leave the
            # engine as if the transaction never ran: undo in-memory state
            # before re-raising, mirroring the rollback path below.
            self.wal.commit(self._txn_id)
        except BaseException:
            for undo in reversed(self._undo):
                undo()
            self.wal.rollback(self._txn_id)
            raise
        finally:
            self._txn_id = None
            self._undo = []

    def _require_txn(self) -> int:
        if self._txn_id is None:
            raise TransactionError("mutation outside a transaction")
        return self._txn_id

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(
        self,
        table: str,
        row: Mapping[str, object],
        *,
        at_row_id: int | None = None,
    ) -> int:
        """Insert one row; returns its internal row id.

        ``at_row_id`` pins the internal id instead of allocating the next
        one — used by snapshot load and WAL replay so that physical row
        ids (which later update/delete records reference) are identical
        after recovery.
        """
        txn = self._require_txn()
        stored = self._stored(table)
        clean = self._validate_row(stored.meta, row)
        self._check_pk_unique(stored, clean)
        self._check_foreign_keys(stored.meta, clean)
        if at_row_id is None:
            row_id = stored.next_row_id
        else:
            row_id = at_row_id
            if row_id in stored.rows:
                raise StorageError(
                    f"row id {row_id} already occupied in table {table!r}"
                )
        stored.next_row_id = max(stored.next_row_id, row_id + 1)
        stored.rows[row_id] = clean
        self._index_add(stored, row_id, clean)
        # Undo is registered before the WAL append so a failed append (e.g.
        # an injected fault) still rolls this row back with the transaction.
        self._undo.append(lambda: self._undo_insert(stored, row_id))
        self.wal.append(txn, OP_INSERT, table, {"row_id": row_id, **clean})
        return row_id

    def insert_many(self, table: str, rows: list[Mapping[str, object]]) -> list[int]:
        """Insert a batch of rows (single validation loop, one undo each)."""
        return [self.insert(table, row) for row in rows]

    def update(
        self, table: str, row_id: int, changes: Mapping[str, object]
    ) -> None:
        """Apply a partial update to one row."""
        txn = self._require_txn()
        stored = self._stored(table)
        if row_id not in stored.rows:
            raise StorageError(f"row {row_id} not found in table {table!r}")
        old = dict(stored.rows[row_id])
        merged = dict(old)
        merged.update(changes)
        clean = self._validate_row(stored.meta, merged)
        pk = stored.meta.primary_key
        if pk and clean.get(pk) != old.get(pk):
            self._check_pk_unique(stored, clean)
        self._check_foreign_keys(stored.meta, clean)
        self._index_remove(stored, row_id, old)
        stored.rows[row_id] = clean
        self._index_add(stored, row_id, clean)
        self._undo.append(lambda: self._undo_update(stored, row_id, old))
        self.wal.append(txn, OP_UPDATE, table, {"row_id": row_id, **clean})

    def update_by_pk(
        self, table: str, key: object, changes: Mapping[str, object]
    ) -> None:
        """Apply a partial update to the row with primary key ``key``."""
        stored = self._stored(table)
        if stored.pk_index is None:
            raise StorageError(f"table {table!r} has no primary key")
        key = coerce_value(key, stored.meta.schema[stored.meta.primary_key])
        ids = stored.pk_index.lookup(key)
        if not ids:
            raise StorageError(
                f"no row with primary key {key!r} in table {table!r}"
            )
        self.update(table, next(iter(ids)), changes)

    def delete(self, table: str, row_id: int) -> None:
        """Delete one row by id."""
        txn = self._require_txn()
        stored = self._stored(table)
        if row_id not in stored.rows:
            raise StorageError(f"row {row_id} not found in table {table!r}")
        old = stored.rows.pop(row_id)
        self._index_remove(stored, row_id, old)
        self._undo.append(lambda: self._undo_delete(stored, row_id, old))
        self.wal.append(txn, OP_DELETE, table, {"row_id": row_id})

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def scan(self, table: str) -> Table:
        """All live rows as a :class:`Table` (column order = schema order)."""
        stored = self._stored(table)
        schema = stored.meta.schema
        rows = [stored.rows[rid] for rid in sorted(stored.rows)]
        return Table.from_rows(rows, schema=schema)

    def get_by_pk(self, table: str, key: object) -> dict[str, object] | None:
        """Point lookup through the primary-key index."""
        stored = self._stored(table)
        if stored.pk_index is None:
            raise StorageError(f"table {table!r} has no primary key")
        key = coerce_value(key, stored.meta.schema[stored.meta.primary_key])
        ids = stored.pk_index.lookup(key)
        if not ids:
            return None
        return self._decode_row(stored.meta, stored.rows[next(iter(ids))])

    def find(self, table: str, column: str, value: object) -> list[dict[str, object]]:
        """Equality lookup, via a secondary index when one exists."""
        stored = self._stored(table)
        if column not in stored.meta.schema:
            raise StorageError(f"unknown column {table}.{column}")
        value = coerce_value(value, stored.meta.schema[column])
        index = stored.secondary.get(column)
        if index is not None:
            ids = sorted(index.lookup(value))
            return [self._decode_row(stored.meta, stored.rows[rid]) for rid in ids]
        return [
            self._decode_row(stored.meta, row)
            for _, row in sorted(stored.rows.items())
            if row.get(column) == value
        ]

    def find_range(
        self, table: str, column: str, low: object = None, high: object = None
    ) -> list[dict[str, object]]:
        """Range lookup; requires (or falls back without) a sorted index."""
        stored = self._stored(table)
        if column not in stored.meta.schema:
            raise StorageError(f"unknown column {table}.{column}")
        dtype = stored.meta.schema[column]
        low = coerce_value(low, dtype) if low is not None else None
        high = coerce_value(high, dtype) if high is not None else None
        index = stored.secondary.get(column)
        if isinstance(index, SortedIndex):
            ids = sorted(index.range(low=low, high=high))
            return [self._decode_row(stored.meta, stored.rows[rid]) for rid in ids]
        out = []
        for _, row in sorted(stored.rows.items()):
            value = row.get(column)
            if value is None:
                continue
            if low is not None and value < low:  # type: ignore[operator]
                continue
            if high is not None and value > high:  # type: ignore[operator]
                continue
            out.append(self._decode_row(stored.meta, row))
        return out

    def row_count(self, table: str) -> int:
        """Number of live rows."""
        return len(self._stored(table).rows)

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return self.catalog.names()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stored(self, table: str) -> _StoredTable:
        self.catalog.get(table)  # raises TableNotFoundError with known names
        return self._tables[table]

    @staticmethod
    def _decode_row(meta: TableMeta, row: dict[str, object]) -> dict[str, object]:
        """Storage representation → Python values (dates back to dates).

        Keeps point lookups consistent with ``scan()``, which decodes
        through the Table layer.
        """
        out = dict(row)
        for name, dtype in meta.schema.items():
            value = out.get(name)
            if value is not None and dtype is DType.DATE:
                out[name] = ordinal_to_date(int(value))  # type: ignore[arg-type]
        return out

    def _validate_row(
        self, meta: TableMeta, row: Mapping[str, object]
    ) -> dict[str, object]:
        unknown = set(row) - set(meta.schema) - {"row_id"}
        if unknown:
            raise StorageError(
                f"unknown columns {sorted(unknown)} for table {meta.name!r}"
            )
        clean: dict[str, object] = {}
        for name, dtype in meta.schema.items():
            value = row.get(name)
            if value is None:
                if name in meta.not_null or name == meta.primary_key:
                    raise IntegrityError(
                        f"column {meta.name}.{name} may not be null"
                    )
                clean[name] = None
            else:
                clean[name] = coerce_value(value, dtype)
        return clean

    def _check_pk_unique(self, stored: _StoredTable, row: dict[str, object]) -> None:
        if stored.pk_index is None:
            return
        key = row[stored.meta.primary_key]  # type: ignore[index]
        if stored.pk_index.lookup(key):
            raise IntegrityError(
                f"duplicate primary key {key!r} in table {stored.meta.name!r}"
            )

    def _check_foreign_keys(self, meta: TableMeta, row: dict[str, object]) -> None:
        for local, (ref_table, ref_col) in meta.foreign_keys.items():
            value = row.get(local)
            if value is None:
                continue
            referenced = self._stored(ref_table)
            if referenced.meta.primary_key == ref_col and referenced.pk_index:
                found = bool(referenced.pk_index.lookup(value))
            else:
                found = any(
                    r.get(ref_col) == value for r in referenced.rows.values()
                )
            if not found:
                raise IntegrityError(
                    f"{meta.name}.{local}={value!r} has no match in "
                    f"{ref_table}.{ref_col}"
                )

    def _index_add(self, stored: _StoredTable, row_id: int, row: dict) -> None:
        if stored.pk_index is not None:
            stored.pk_index.add(row[stored.meta.primary_key], row_id)
        for column, index in stored.secondary.items():
            index.add(row.get(column), row_id)

    def _index_remove(self, stored: _StoredTable, row_id: int, row: dict) -> None:
        if stored.pk_index is not None:
            stored.pk_index.remove(row[stored.meta.primary_key], row_id)
        for column, index in stored.secondary.items():
            index.remove(row.get(column), row_id)

    def _undo_insert(self, stored: _StoredTable, row_id: int) -> None:
        row = stored.rows.pop(row_id, None)
        if row is not None:
            self._index_remove(stored, row_id, row)

    def _undo_update(self, stored: _StoredTable, row_id: int, old: dict) -> None:
        current = stored.rows.get(row_id)
        if current is not None:
            self._index_remove(stored, row_id, current)
        stored.rows[row_id] = old
        self._index_add(stored, row_id, old)

    def _undo_delete(self, stored: _StoredTable, row_id: int, old: dict) -> None:
        stored.rows[row_id] = old
        self._index_add(stored, row_id, old)


def replay_into(
    engine: StorageEngine, wal: WriteAheadLog, *, after_seq: int = 0
) -> int:
    """Re-apply committed WAL mutations with ``seq > after_seq`` to ``engine``.

    The engine must already have the schema (tables created).  Payload
    values are decoded against the catalog schema — tagged dates become
    ``datetime.date`` and then re-coerce through the normal insert path,
    so a replayed row is byte-identical to the original write (the old
    ``default=str`` serialisation turned dates into bare strings).
    Returns the number of entries applied.  ``after_seq`` lets recovery
    skip entries already captured by a snapshot generation.
    """
    applied = 0
    for entry in wal.committed_entries():
        if entry.seq <= after_seq:
            continue
        payload = {
            k: json_decode_value(v) for k, v in entry.payload.items()
        }
        with engine.transaction():
            if entry.op == OP_INSERT:
                # Entries from this format carry their physical row id so
                # later update/delete records resolve; legacy entries
                # (no id) fall back to sequential allocation.
                row_id = payload.pop("row_id", None)
                engine.insert(entry.table, payload, at_row_id=row_id)
            elif entry.op == OP_UPDATE:
                row_id = payload.pop("row_id")
                engine.update(entry.table, row_id, payload)
            elif entry.op == OP_DELETE:
                engine.delete(entry.table, payload["row_id"])
        applied += 1
    return applied
