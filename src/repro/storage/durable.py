"""Crash-safe file primitives: atomic writes and checksummed framing.

Two building blocks shared by the WAL, the snapshot store and the
warehouse/knowledge persistence modules:

* **Atomic whole-file writes** — write to a temp file in the same
  directory, flush + fsync, ``os.replace`` over the target, fsync the
  directory.  A crash at any point leaves either the old file or the new
  file, never a torn mix; stray ``*.tmp`` files are ignored by readers.

* **Record framing** — an append-only stream of length-prefixed records,
  each carrying a CRC32 over its sequence number and payload::

      <u32 payload length> <u32 crc32(seq || payload)> <u64 seq> <payload>

  :func:`scan_frames` distinguishes a *torn tail* (the final record is
  incomplete or fails its checksum — the expected signature of a crash
  mid-append, safely truncated away) from *mid-stream corruption* (a bad
  record followed by further data — bit rot or tampering, which must be
  surfaced, not silently dropped).

Every write is routed through :mod:`repro.storage.faults` under a caller
-supplied fault-point name, so the failure modes above are testable.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ChecksumError
from repro.storage import faults

#: Frame header: payload length (u32), crc32 (u32), sequence number (u64).
_FRAME_HEADER = struct.Struct("<IIQ")
FRAME_OVERHEAD = _FRAME_HEADER.size


def crc32_bytes(data: bytes) -> int:
    """CRC32 as an unsigned 32-bit int."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_hex(data: bytes) -> str:
    """CRC32 as fixed-width hex, the digest format used in manifests."""
    return f"{crc32_bytes(data):08x}"


def fsync_dir(directory: str | Path) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path, data: bytes, *, point: str = "atomic.write"
) -> None:
    """Atomically replace ``path`` with ``data`` (fsync file + directory).

    Fault points fired: ``<point>`` around the temp-file write and
    ``<point>.rename`` before the rename — a kill at the former leaves
    the old file intact, a kill at the latter leaves a complete temp file
    that readers never look at.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    data = faults.before_write(point, data)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    faults.after_write(point)
    faults.fire(point + ".rename")
    os.replace(tmp, target)
    fsync_dir(target.parent)


def atomic_write_json(
    path: str | Path, payload: object, *, point: str = "atomic.write", indent=None
) -> None:
    """:func:`atomic_write_bytes` for a JSON document."""
    data = json.dumps(payload, indent=indent).encode("utf-8")
    atomic_write_bytes(path, data, point=point)


def encode_frame(payload: bytes, seq: int) -> bytes:
    """Frame one record for an append-only checksummed stream."""
    crc = crc32_bytes(struct.pack("<Q", seq) + payload)
    return _FRAME_HEADER.pack(len(payload), crc, seq) + payload


@dataclass
class Frame:
    """One decoded record: its sequence number, payload and end offset."""

    seq: int
    payload: bytes
    end: int


@dataclass
class ScanResult:
    """Outcome of scanning a framed stream.

    ``valid_end`` is the byte offset just past the last intact frame;
    ``torn`` means trailing bytes after ``valid_end`` are a crash
    artefact safe to truncate; ``corrupt_at`` (when not ``None``) is the
    offset of a damaged frame with further data *after* it — mid-stream
    corruption the caller must refuse to repair silently.
    """

    frames: list[Frame]
    valid_end: int
    torn: bool = False
    corrupt_at: int | None = None


def scan_frames(data: bytes, start: int = 0) -> ScanResult:
    """Walk frames from ``start``, classifying any trailing damage."""
    frames: list[Frame] = []
    offset = start
    total = len(data)
    while offset < total:
        if offset + FRAME_OVERHEAD > total:
            return ScanResult(frames, offset, torn=True)
        length, crc, seq = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + FRAME_OVERHEAD
        body_end = body_start + length
        if body_end > total:
            # Frame claims more bytes than exist: either a torn append or
            # a corrupted length field — indistinguishable, and in both
            # cases nothing after it is recoverable.
            return ScanResult(frames, offset, torn=True)
        payload = data[body_start:body_end]
        if crc32_bytes(struct.pack("<Q", seq) + payload) != crc:
            if body_end >= total:
                # Damage confined to the final frame: torn tail.
                return ScanResult(frames, offset, torn=True)
            return ScanResult(frames, offset, corrupt_at=offset)
        frames.append(Frame(seq=seq, payload=payload, end=body_end))
        offset = body_end
    return ScanResult(frames, offset)


def json_encode_value(value: object) -> object:
    """JSON-safe encoding that keeps dates distinguishable from strings."""
    if isinstance(value, _dt.date):
        return {"__date__": value.isoformat()}
    return value


def json_decode_value(value: object) -> object:
    """Inverse of :func:`json_encode_value`."""
    if isinstance(value, dict) and "__date__" in value:
        return _dt.date.fromisoformat(value["__date__"])
    return value


def verify_digest(path: str | Path, expected_hex: str) -> bytes:
    """Read ``path`` and check its CRC32 digest; returns the bytes."""
    data = Path(path).read_bytes()
    actual = crc32_hex(data)
    if actual != expected_hex:
        raise ChecksumError(
            f"{path}: checksum mismatch (stored {expected_hex}, actual {actual})"
        )
    return data
