"""Secondary indexes: hash (equality) and sorted (range)."""

from __future__ import annotations

import bisect
from typing import Iterable


class HashIndex:
    """Value → set of row ids.  O(1) equality lookups.

    Null values are not indexed (SQL semantics: NULL never equals anything),
    so a lookup can never return a row whose key is null.
    """

    def __init__(self, column: str):
        self.column = column
        self._buckets: dict[object, set[int]] = {}

    def add(self, value: object, row_id: int) -> None:
        """Index ``row_id`` under ``value`` (ignored when value is null)."""
        if value is None:
            return
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: object, row_id: int) -> None:
        """Drop one entry; harmless if absent."""
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose key equals ``value`` (copy; safe to mutate)."""
        if value is None:
            return set()
        return set(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def distinct_values(self) -> list[object]:
        """All indexed key values (unsorted)."""
        return list(self._buckets)


class SortedIndex:
    """Sorted (value, row_id) pairs supporting range scans.

    Backed by two parallel lists kept in key order via ``bisect``; adequate
    for the operational-store sizes this engine targets and easy to reason
    about.  Null values are not indexed.
    """

    def __init__(self, column: str):
        self.column = column
        self._keys: list[object] = []
        self._row_ids: list[int] = []

    def add(self, value: object, row_id: int) -> None:
        """Insert an entry keeping key order."""
        if value is None:
            return
        pos = bisect.bisect_right(self._keys, value)
        self._keys.insert(pos, value)
        self._row_ids.insert(pos, row_id)

    def remove(self, value: object, row_id: int) -> None:
        """Drop one (value, row_id) entry; harmless if absent."""
        if value is None:
            return
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        for i in range(lo, hi):
            if self._row_ids[i] == row_id:
                del self._keys[i]
                del self._row_ids[i]
                return

    def range(
        self,
        low: object = None,
        high: object = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Row ids with key in the given (optionally open) interval."""
        if low is None:
            lo = 0
        elif include_low:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif include_high:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return self._row_ids[lo:hi]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose key equals ``value``."""
        if value is None:
            return set()
        return set(self.range(low=value, high=value))

    def __len__(self) -> int:
        return len(self._keys)

    def min_key(self) -> object:
        """Smallest indexed key (``None`` when empty)."""
        return self._keys[0] if self._keys else None

    def max_key(self) -> object:
        """Largest indexed key (``None`` when empty)."""
        return self._keys[-1] if self._keys else None


def build_hash_index(column: str, values: Iterable[object]) -> HashIndex:
    """Bulk-build a hash index over enumerated values."""
    index = HashIndex(column)
    for row_id, value in enumerate(values):
        index.add(value, row_id)
    return index


def build_sorted_index(column: str, values: Iterable[object]) -> SortedIndex:
    """Bulk-build a sorted index over enumerated values."""
    pairs = [(v, i) for i, v in enumerate(values) if v is not None]
    pairs.sort(key=lambda p: (p[0], p[1]))  # type: ignore[arg-type]
    index = SortedIndex(column)
    index._keys = [p[0] for p in pairs]
    index._row_ids = [p[1] for p in pairs]
    return index
