"""Write-ahead log: ordered, checksummed record of committed mutations.

The engine appends one entry per mutation inside a transaction and marks
the batch committed by writing a *commit record*; ``replay`` reapplies
committed entries to an empty engine — used by snapshot-plus-log recovery
and exercised by the failure-injection tests.

On-disk format (version 2) is an append-only stream::

    RWAL2\\x00 <u64 start_seq> <u32 header crc>   -- file header
    <frame>*                                      -- see repro.storage.durable

Each frame carries a monotonically increasing sequence number and a CRC32
over (seq || payload); payloads are JSON — either a mutation entry
(``{"t": "e", ...}``) or a commit mark (``{"t": "c", "txn": n}``).  A
transaction is durable iff its commit frame is intact, so
:meth:`WriteAheadLog.load` can classify damage precisely: an incomplete
or checksum-failing *final* frame is a torn tail (the expected residue of
a crash mid-append) and is truncated away; a bad frame with further data
behind it is mid-log corruption and raises
:class:`~repro.errors.WALCorruptionError`.  ``start_seq`` survives
:meth:`truncate` so sequence numbers never regress across checkpoints —
snapshot manifests record the last sequence they contain and recovery
replays only entries after it.

Version-1 logs (JSON lines with per-entry ``committed`` flags, dates
stringified by ``default=str``) are still readable: :meth:`load` detects
them by their first byte and transparently rewrites the file in the
framed format.
"""

from __future__ import annotations

import json
import os
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro import obs
from repro.errors import StorageError, WALCorruptionError
from repro.storage import faults
from repro.storage.durable import (
    atomic_write_bytes,
    encode_frame,
    json_decode_value,
    json_encode_value,
    scan_frames,
)

#: Mutation kinds recorded in the log.
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
_VALID_OPS = frozenset({OP_INSERT, OP_UPDATE, OP_DELETE})

_MAGIC = b"RWAL2\x00"
_HEADER = struct.Struct("<QI")  # start_seq, crc32(magic + start_seq)
HEADER_SIZE = len(_MAGIC) + _HEADER.size


def _header_bytes(start_seq: int) -> bytes:
    import zlib

    crc = zlib.crc32(_MAGIC + struct.pack("<Q", start_seq)) & 0xFFFFFFFF
    return _MAGIC + _HEADER.pack(start_seq, crc)


def _parse_header(data: bytes, path: Path) -> int:
    import zlib

    if len(data) < HEADER_SIZE:
        raise WALCorruptionError(f"{path}: WAL header truncated")
    start_seq, crc = _HEADER.unpack_from(data, len(_MAGIC))
    expected = zlib.crc32(_MAGIC + struct.pack("<Q", start_seq)) & 0xFFFFFFFF
    if crc != expected:
        raise WALCorruptionError(f"{path}: WAL header checksum mismatch")
    return start_seq


@dataclass
class LogEntry:
    """One mutation: operation, table, payload, owning transaction."""

    txn_id: int
    op: str
    table: str
    payload: dict
    committed: bool = False
    #: position in the global record sequence (0 = never persisted)
    seq: int = 0

    def to_json(self) -> str:
        """Serialise for the on-disk log (dates kept round-trippable)."""
        return json.dumps(
            {
                "t": "e",
                "txn": self.txn_id,
                "op": self.op,
                "table": self.table,
                "payload": {
                    k: json_encode_value(v) for k, v in self.payload.items()
                },
                "committed": self.committed,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "LogEntry":
        raw = json.loads(line)
        return cls(
            txn_id=raw["txn"],
            op=raw["op"],
            table=raw["table"],
            payload={
                k: json_decode_value(v) for k, v in raw["payload"].items()
            },
            committed=raw.get("committed", False),
        )


class WriteAheadLog:
    """Append-only WAL with checksummed file persistence.

    With ``path=None`` the log is purely in-memory (used by throwaway
    engines); with a path, entries are appended as framed records and
    :meth:`commit` makes them durable with a commit record + fsync.
    """

    def __init__(self, path: str | Path | None = None):
        self._entries: list[LogEntry] = []
        self._by_txn: dict[int, list[LogEntry]] = {}
        self._path = Path(path) if path is not None else None
        self._next_txn = 1
        self._next_seq = 1
        self._start_seq = 1
        self._fh = None
        self._initialized = False  # header written / file adopted
        self._dead = False  # a simulated crash froze this instance

    # ------------------------------------------------------------------
    # Transaction API
    # ------------------------------------------------------------------

    def begin(self) -> int:
        """Allocate a transaction id."""
        txn_id = self._next_txn
        self._next_txn += 1
        return txn_id

    def append(self, txn_id: int, op: str, table: str, payload: dict) -> None:
        """Record one mutation belonging to an open transaction."""
        if op not in _VALID_OPS:
            raise StorageError(f"unknown WAL operation {op!r}")
        entry = LogEntry(txn_id, op, table, dict(payload))
        entry.seq = self._alloc_seq()
        obs.count("storage.wal.append")
        started = time.perf_counter()
        self._write_frame(entry.to_json().encode("utf-8"), entry.seq, "wal.append")
        obs.observe("storage.wal.append_s", time.perf_counter() - started)
        self._entries.append(entry)
        self._by_txn.setdefault(txn_id, []).append(entry)

    def commit(self, txn_id: int) -> None:
        """Durably mark all entries of ``txn_id`` committed.

        The commit record is written, flushed and fsynced *before* the
        in-memory flags flip, so a failure here leaves the transaction
        uncommitted both on disk and in memory (the engine then rolls it
        back).
        """
        if self._path is not None:
            mark = json.dumps({"t": "c", "txn": txn_id}).encode("utf-8")
            self._write_frame(mark, self._alloc_seq(), "wal.commit")
            obs.count("storage.wal.commit")
            started = time.perf_counter()
            self._sync()
            obs.observe("storage.wal.fsync_s", time.perf_counter() - started)
        for entry in self._by_txn.get(txn_id, ()):
            entry.committed = True

    def rollback(self, txn_id: int) -> None:
        """Discard uncommitted entries of ``txn_id``.

        On disk their frames remain as dead weight — harmless, because
        replay only honours transactions with a commit record.
        """
        doomed = [
            e for e in self._by_txn.get(txn_id, ()) if not e.committed
        ]
        if not doomed:
            return
        doomed_ids = {id(e) for e in doomed}
        self._entries = [e for e in self._entries if id(e) not in doomed_ids]
        kept = [e for e in self._by_txn.get(txn_id, ()) if e.committed]
        if kept:
            self._by_txn[txn_id] = kept
        else:
            self._by_txn.pop(txn_id, None)

    def committed_entries(self) -> Iterator[LogEntry]:
        """Committed mutations in append order."""
        return (e for e in self._entries if e.committed)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently allocated record."""
        return self._next_seq - 1

    @property
    def committed_seq(self) -> int:
        """Highest sequence number among *committed* mutations (0 if none).

        This is the durable high-water mark resumable ingest batches
        checkpoint against: everything at or below it survives a crash,
        everything above it must be re-done.
        """
        return max((e.seq for e in self._entries if e.committed), default=0)

    def truncate(self) -> None:
        """Clear the log (after a snapshot has captured its effects).

        The replacement file keeps the sequence counter via its header's
        ``start_seq``, so records written after a checkpoint always sort
        after the checkpoint's manifest sequence.
        """
        self._entries = []
        self._by_txn = {}
        if self._path is None:
            return
        self._check_alive()
        self._close_handle()
        self._start_seq = self._next_seq
        try:
            atomic_write_bytes(
                self._path, _header_bytes(self._start_seq), point="wal.truncate"
            )
        except faults.SimulatedCrash:
            self._dead = True
            raise
        self._initialized = True

    def close(self) -> None:
        """Flush and close the file handle (safe to call repeatedly)."""
        self._close_handle()

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------

    def _alloc_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _check_alive(self) -> None:
        if self._dead:
            raise StorageError(
                "WAL instance is dead after a simulated crash; "
                "recover from disk instead"
            )

    def _ensure_handle(self):
        if self._fh is None:
            if not self._initialized:
                atomic_write_bytes(
                    self._path, _header_bytes(self._start_seq), point="wal.create"
                )
                self._initialized = True
            self._fh = open(self._path, "ab")
        return self._fh

    def _write_frame(self, payload: bytes, seq: int, point: str) -> None:
        if self._path is None:
            return
        self._check_alive()
        handle = self._ensure_handle()
        frame = encode_frame(payload, seq)
        try:
            frame = faults.before_write(point, frame)
        except faults.SimulatedCrash:
            self._die()
            raise
        handle.write(frame)
        try:
            faults.after_write(point)
        except faults.SimulatedCrash:
            self._die()
            raise

    def _sync(self) -> None:
        if self._fh is not None:
            try:
                faults.fire("wal.sync")
            except faults.SimulatedCrash:
                self._die()
                raise
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def _die(self) -> None:
        """Freeze the on-disk state at the crash point and go inert."""
        self._close_handle()
        self._dead = True

    def _close_handle(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            finally:
                self._fh.close()
                self._fh = None

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "WriteAheadLog":
        """Read a persisted log, repairing a torn tail in place.

        Raises :class:`~repro.errors.WALCorruptionError` for damage that
        is *not* a torn tail (a bad record with valid data after it, a
        broken header, sequence regressions) — silent repair there would
        drop committed work.
        """
        wal = cls(path)
        file_path = Path(path)
        if not file_path.exists():
            return wal
        data = file_path.read_bytes()
        if not data:
            return wal
        if data[:1] in (b"{",):
            wal._load_legacy(data, file_path)
            return wal
        if not data.startswith(_MAGIC):
            raise WALCorruptionError(
                f"{file_path}: not a WAL file (bad magic {data[:6]!r})"
            )
        start_seq = _parse_header(data, file_path)
        scan = scan_frames(data, HEADER_SIZE)
        if scan.corrupt_at is not None:
            raise WALCorruptionError(
                f"{file_path}: corrupted record at byte {scan.corrupt_at} "
                f"with valid data beyond it — refusing to repair silently"
            )
        if scan.torn:
            with open(file_path, "r+b") as handle:
                handle.truncate(scan.valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        committed_txns: set[int] = set()
        expected_seq = start_seq
        for frame in scan.frames:
            if frame.seq != expected_seq:
                raise WALCorruptionError(
                    f"{file_path}: sequence break (expected {expected_seq}, "
                    f"found {frame.seq})"
                )
            expected_seq += 1
            record = json.loads(frame.payload.decode("utf-8"))
            if record["t"] == "c":
                committed_txns.add(record["txn"])
            elif record["t"] == "e":
                entry = LogEntry(
                    txn_id=record["txn"],
                    op=record["op"],
                    table=record["table"],
                    payload={
                        k: json_decode_value(v)
                        for k, v in record["payload"].items()
                    },
                    seq=frame.seq,
                )
                wal._entries.append(entry)
                wal._by_txn.setdefault(entry.txn_id, []).append(entry)
            else:
                raise WALCorruptionError(
                    f"{file_path}: unknown record type {record['t']!r}"
                )
        for entry in wal._entries:
            if entry.txn_id in committed_txns:
                entry.committed = True
        wal._start_seq = start_seq
        wal._next_seq = expected_seq
        if wal._entries:
            wal._next_txn = max(e.txn_id for e in wal._entries) + 1
        if committed_txns:
            wal._next_txn = max(wal._next_txn, max(committed_txns) + 1)
        wal._initialized = True
        return wal

    def _load_legacy(self, data: bytes, file_path: Path) -> None:
        """Version-1 compatibility: JSON lines, then upgrade in place."""
        for line in data.decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            entry = LogEntry.from_json(line)
            entry.seq = self._alloc_seq()
            self._entries.append(entry)
            self._by_txn.setdefault(entry.txn_id, []).append(entry)
        if self._entries:
            self._next_txn = max(e.txn_id for e in self._entries) + 1
        # Rewrite in the framed format so future appends share one path.
        out = bytearray(_header_bytes(1))
        committed_txns = []
        for entry in self._entries:
            out += encode_frame(entry.to_json().encode("utf-8"), entry.seq)
            if entry.committed and entry.txn_id not in committed_txns:
                committed_txns.append(entry.txn_id)
        for txn_id in committed_txns:
            mark = json.dumps({"t": "c", "txn": txn_id}).encode("utf-8")
            out += encode_frame(mark, self._alloc_seq())
        atomic_write_bytes(file_path, bytes(out), point="wal.upgrade")
        self._initialized = True
