"""Write-ahead log: ordered record of committed mutations.

The engine appends one entry per mutation inside a transaction and marks
the batch committed atomically.  ``replay`` reapplies committed entries to
an empty engine — used by snapshot-plus-log recovery and exercised by the
failure-injection tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError

#: Mutation kinds recorded in the log.
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
_VALID_OPS = frozenset({OP_INSERT, OP_UPDATE, OP_DELETE})


@dataclass
class LogEntry:
    """One mutation: operation, table, payload, owning transaction."""

    txn_id: int
    op: str
    table: str
    payload: dict
    committed: bool = False

    def to_json(self) -> str:
        """Serialise for the on-disk log (dates must already be primitive)."""
        return json.dumps(
            {
                "txn": self.txn_id,
                "op": self.op,
                "table": self.table,
                "payload": self.payload,
                "committed": self.committed,
            },
            default=str,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogEntry":
        raw = json.loads(line)
        return cls(
            txn_id=raw["txn"],
            op=raw["op"],
            table=raw["table"],
            payload=raw["payload"],
            committed=raw["committed"],
        )


class WriteAheadLog:
    """In-memory WAL with optional file persistence."""

    def __init__(self, path: str | Path | None = None):
        self._entries: list[LogEntry] = []
        self._path = Path(path) if path is not None else None
        self._next_txn = 1

    def begin(self) -> int:
        """Allocate a transaction id."""
        txn_id = self._next_txn
        self._next_txn += 1
        return txn_id

    def append(self, txn_id: int, op: str, table: str, payload: dict) -> None:
        """Record one mutation belonging to an open transaction."""
        if op not in _VALID_OPS:
            raise StorageError(f"unknown WAL operation {op!r}")
        self._entries.append(LogEntry(txn_id, op, table, dict(payload)))

    def commit(self, txn_id: int) -> None:
        """Mark all entries of ``txn_id`` committed and flush if file-backed."""
        for entry in self._entries:
            if entry.txn_id == txn_id:
                entry.committed = True
        self._flush()

    def rollback(self, txn_id: int) -> None:
        """Discard uncommitted entries of ``txn_id``."""
        self._entries = [
            e for e in self._entries if e.txn_id != txn_id or e.committed
        ]

    def committed_entries(self) -> Iterator[LogEntry]:
        """Committed mutations in append order."""
        return (e for e in self._entries if e.committed)

    def __len__(self) -> int:
        return len(self._entries)

    def truncate(self) -> None:
        """Clear the log (after a snapshot has captured its effects)."""
        self._entries = []
        self._flush()

    def _flush(self) -> None:
        if self._path is None:
            return
        with open(self._path, "w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(entry.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "WriteAheadLog":
        """Read a persisted log back from disk."""
        wal = cls(path)
        file_path = Path(path)
        if file_path.exists():
            with open(file_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        wal._entries.append(LogEntry.from_json(line))
            if wal._entries:
                wal._next_txn = max(e.txn_id for e in wal._entries) + 1
        return wal
