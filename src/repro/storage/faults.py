"""Pluggable fault injection for the durability layer.

Every write boundary in the persistence stack (WAL append, commit mark,
snapshot temp write, rename, manifest write, ...) is named and routed
through this module, so tests can deterministically fail, tear, corrupt
or "kill the process" at the Nth write without monkeypatching file
objects.  Production runs pay one ``is None`` check per boundary.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s.  Each rule names
a fault *point* (e.g. ``wal.commit``), the 1-based occurrence ``nth`` at
which it fires, and a ``mode``:

``error``
    Raise :class:`~repro.errors.InjectedFault` *before* anything is
    written — the process survives and sees a clean failure.
``kill``
    Raise :class:`SimulatedCrash` before the write: the bytes never reach
    disk, and the in-process state must be considered lost.  Tests catch
    the crash and recover from disk alone.
``short``
    A torn write: only a prefix of the bytes reaches the file, then
    :class:`SimulatedCrash` is raised (a real torn write is only
    observable because the machine died mid-``write``).
``flip``
    Silent corruption: one bit of the payload is flipped and the write
    "succeeds".  Recovery must detect it via checksums.
``transient``
    Raise :class:`~repro.errors.TransientIngestError` — a failure that is
    expected to heal; :func:`repro.storage.retry.with_retry` backs off
    and re-attempts the boundary.
``permanent``
    Raise :class:`~repro.errors.PermanentIngestError` — never retried;
    non-essential ingest boundaries degrade gracefully instead.
``slow``
    Sleep ``delay_s`` (default 50 ms) then proceed normally — a slow
    dependency, not a broken one.  The sleep is *cooperative*: it
    honours the active serving deadline, so a slowed query still times
    out with :class:`~repro.errors.QueryTimeoutError` in bounded time.
``stall``
    Like ``slow`` but with a long default (2 s) — a hung dependency.
    Only a deadline rescues the caller; chaos tests use this to prove
    cancellation actually reaches every boundary.

The write boundaries of the durability layer are joined by *serving*
boundaries (``serving.scan``, ``serving.pool``, ``serving.cache``) fired
via :func:`fire` on the read path, so the same plans drive overload and
degradation chaos.

Plans can be installed programmatically (:func:`install` /
:func:`injected`) or parsed from the ``REPRO_FAULTS`` environment
variable (:func:`plan_from_env`), whose grammar is
``point[:mode][@nth]`` with commas or semicolons between rules; ``@0``
(or ``@*``) makes a rule fire on *every* hit::

    REPRO_FAULTS="wal.commit:kill@2,serving.cache:error@0"

Arming validates every rule's point against the registered-points set
(:func:`known_points`): a typo'd point used to silently never fire —
making chaos tests vacuously green — and now raises
:class:`~repro.errors.StorageError` at install/parse time.  New
boundaries self-register via :func:`register_point`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import (
    InjectedFault,
    PermanentIngestError,
    StorageError,
    TransientIngestError,
)

#: Environment variable holding a default fault plan (see module docs).
FAULTS_ENV = "REPRO_FAULTS"

_MODES = (
    "error", "kill", "short", "flip", "transient", "permanent", "slow", "stall",
)

#: default injected delays for the latency modes (seconds)
_SLOW_DELAY_S = 0.05
_STALL_DELAY_S = 2.0

# ---------------------------------------------------------------------------
# Registered fault points
# ---------------------------------------------------------------------------
#
# Every boundary the engine actually fires is registered here (plus the
# derived ``<point>.rename`` half of each atomic write).  Arming a plan
# validates rule points against this set, so a typo'd point fails fast
# at install time instead of silently never firing — which would make a
# chaos test vacuously green.  Out-of-tree boundaries (and test-local
# synthetic points) opt in via :func:`register_point`.

#: atomic-write boundaries; each also fires ``<point>.rename``
_ATOMIC_WRITE_POINTS = frozenset({
    "atomic.write",
    "wal.create", "wal.truncate", "wal.upgrade",
    "snapshot.data", "snapshot.manifest",
    "warehouse.data", "warehouse.manifest",
    "kb.write",
    "storage.segment.write",
    "storage.compaction.manifest",
})

#: plain boundaries fired via :func:`fire`/:func:`before_write`
_PLAIN_POINTS = frozenset({
    # durability
    "wal.append", "wal.commit", "wal.sync",
    "storage.compaction",
    # resilient-ingest retry boundaries
    "ingest.oltp", "ingest.rebuild", "ingest.quarantine",
    "ingest.feedback", "ingest.lattice", "ingest.checkpoint",
    "lattice.delta_merge",
    # serving / read path
    "serving.scan", "serving.cache", "serving.pool",
})

#: the built-in registered-points set (see :func:`known_points`)
CORE_POINTS: frozenset[str] = (
    _PLAIN_POINTS
    | _ATOMIC_WRITE_POINTS
    | frozenset(p + ".rename" for p in _ATOMIC_WRITE_POINTS)
)

_extra_points: set[str] = set()


def register_point(name: str) -> str:
    """Register an extra fault point so plans naming it pass validation.

    For boundaries added outside this module (or synthetic points in
    tests).  Returns the name for inline use.
    """
    name = name.strip()
    if not name:
        raise StorageError("fault point names cannot be empty")
    _extra_points.add(name)
    return name


def known_points() -> frozenset[str]:
    """Every currently registered fault point (core + extras)."""
    return CORE_POINTS | frozenset(_extra_points)


def validate_points(points: "list[str] | tuple[str, ...] | set[str]") -> None:
    """Fail fast on unknown fault-point names (arm-time validation)."""
    unknown = sorted(set(points) - known_points())
    if unknown:
        raise StorageError(
            f"unknown fault point(s) {', '.join(repr(p) for p in unknown)} — "
            f"a typo'd point would never fire, making the plan vacuously "
            f"inert (known points: {', '.join(sorted(known_points()))}; "
            f"extend with faults.register_point())"
        )


class SimulatedCrash(BaseException):
    """The injected equivalent of ``kill -9`` at a write boundary.

    Derives from :class:`BaseException` so ``except Exception`` blocks in
    the code under test cannot swallow it — exactly like a real crash.
    """

    def __init__(self, point: str, occurrence: int):
        self.point = point
        self.occurrence = occurrence
        super().__init__(f"simulated crash at {point!r} (occurrence {occurrence})")


@dataclass
class FaultRule:
    """Fire ``mode`` at the ``nth`` hit of ``point`` (1-based).

    ``nth=0`` means *every* hit — the chaos-plan spelling for a
    dependency that is persistently slow or broken.
    """

    point: str
    mode: str = "error"
    nth: int = 1
    #: for ``short``: fraction of the payload that reaches the file
    keep_fraction: float = 0.5
    #: for ``slow``/``stall``: injected latency (``None`` = mode default)
    delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise StorageError(
                f"unknown fault mode {self.mode!r} (valid: {', '.join(_MODES)})"
            )
        if self.nth < 0:
            raise StorageError(f"fault nth must be >= 0, got {self.nth}")

    def matches(self, point: str, count: int) -> bool:
        return self.point == point and (self.nth == 0 or count == self.nth)


@dataclass
class FaultPlan:
    """An installed set of rules plus per-point hit counters."""

    rules: list[FaultRule] = field(default_factory=list)
    _counts: dict[str, int] = field(default_factory=dict, repr=False)
    _pending_crash: SimulatedCrash | None = field(default=None, repr=False)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        return self._counts.get(point, 0)

    def before_write(self, point: str, data: bytes) -> bytes:
        """Account one hit of ``point``; transform or abort the write."""
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        for rule in self.rules:
            if not rule.matches(point, count):
                continue
            if rule.mode in ("slow", "stall"):
                delay = rule.delay_s
                if delay is None:
                    delay = _SLOW_DELAY_S if rule.mode == "slow" else _STALL_DELAY_S
                # honour the serving deadline inside the injected delay so
                # a stalled boundary cannot outlive the query it stalls
                # (lazy import: faults loads before the serving package)
                from repro.serving.resilience import cooperative_sleep

                cooperative_sleep(delay)
                continue
            if rule.mode == "error":
                raise InjectedFault(f"injected failure at {point!r} (hit {count})")
            if rule.mode == "transient":
                raise TransientIngestError(
                    f"injected transient fault at {point!r} (hit {count})"
                )
            if rule.mode == "permanent":
                raise PermanentIngestError(
                    f"injected permanent fault at {point!r} (hit {count})"
                )
            if rule.mode == "kill":
                raise SimulatedCrash(point, count)
            if rule.mode == "short":
                kept = int(len(data) * rule.keep_fraction)
                self._pending_crash = SimulatedCrash(point, count)
                return data[:kept]
            if rule.mode == "flip" and data:
                flipped = bytearray(data)
                flipped[len(flipped) // 2] ^= 0x04
                return bytes(flipped)
        return data

    def after_write(self, point: str) -> None:
        """Deliver the crash half of a ``short`` (torn) write."""
        crash, self._pending_crash = self._pending_crash, None
        if crash is not None:
            raise crash


_active: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` globally (replacing any previous plan).

    Rule points are validated against :func:`known_points` — an unknown
    point raises :class:`~repro.errors.StorageError` instead of arming a
    rule that can never fire.
    """
    validate_points([rule.point for rule in plan.rules])
    global _active
    _active = plan
    return plan


def uninstall() -> None:
    """Disarm fault injection."""
    global _active
    _active = None


def active() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _active


class injected:
    """Context manager: arm a plan for the duration of a ``with`` block."""

    def __init__(self, plan: FaultPlan | list[FaultRule]):
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan(list(plan))

    def __enter__(self) -> FaultPlan:
        return install(self.plan)

    def __exit__(self, *exc_info: object) -> None:
        uninstall()


def before_write(point: str, data: bytes) -> bytes:
    """Hook for the durability layer: called before bytes hit a file."""
    if _active is None:
        return data
    return _active.before_write(point, data)


def after_write(point: str) -> None:
    """Hook for the durability layer: called after bytes hit a file."""
    if _active is not None:
        _active.after_write(point)


def fire(point: str) -> None:
    """A data-less fault point (renames, fsyncs, directory syncs)."""
    before_write(point, b"")
    after_write(point)


def plan_from_env(value: str | None = None) -> FaultPlan | None:
    """Parse ``REPRO_FAULTS`` (or an explicit string) into a plan.

    Returns ``None`` when the variable is unset or empty.  Grammar per
    rule: ``point[:mode][@nth]``; rules separated by ``,`` or ``;``.
    """
    if value is None:
        value = os.environ.get(FAULTS_ENV, "")
    value = value.strip()
    if not value:
        return None
    rules = []
    for chunk in value.replace(";", ",").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        nth = 1
        if "@" in chunk:
            chunk, nth_text = chunk.rsplit("@", 1)
            if nth_text.strip() == "*":
                nth = 0  # every hit
            else:
                try:
                    nth = int(nth_text)
                except ValueError:
                    raise StorageError(
                        f"bad {FAULTS_ENV} occurrence {nth_text!r} in {chunk!r}"
                    ) from None
        point, _, mode = chunk.partition(":")
        point = point.strip()
        if not point:
            raise StorageError(f"empty fault point in {FAULTS_ENV}")
        rules.append(FaultRule(point=point, mode=mode.strip() or "error", nth=nth))
    validate_points([rule.point for rule in rules])
    return FaultPlan(rules)


# Arm any plan named by the environment as soon as the durability layer
# loads, so the knob works for plain processes too, not just the test
# suite (whose conftest re-installs a fresh plan per test).
_env_plan = plan_from_env()
if _env_plan is not None:
    install(_env_plan)
