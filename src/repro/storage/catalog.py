"""System catalog: table metadata and schema versioning."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import StorageError, TableExistsError, TableNotFoundError
from repro.tabular.dtypes import DType


@dataclass
class TableMeta:
    """Metadata for one stored table."""

    name: str
    schema: dict[str, DType]
    primary_key: str | None = None
    not_null: frozenset[str] = frozenset()
    #: monotonically increasing; bumped on every schema change
    version: int = 1
    #: foreign keys: local column -> (table, column)
    foreign_keys: dict[str, tuple[str, str]] = field(default_factory=dict)

    def validate(self) -> None:
        """Check internal consistency of the declaration."""
        if not self.schema:
            raise StorageError(f"table {self.name!r} declared with no columns")
        if self.primary_key is not None and self.primary_key not in self.schema:
            raise StorageError(
                f"primary key {self.primary_key!r} is not a column of "
                f"table {self.name!r}"
            )
        unknown = set(self.not_null) - set(self.schema)
        if unknown:
            raise StorageError(
                f"not-null constraint on unknown columns {sorted(unknown)} "
                f"in table {self.name!r}"
            )
        for local, (ref_table, ref_col) in self.foreign_keys.items():
            if local not in self.schema:
                raise StorageError(
                    f"foreign key column {local!r} is not a column of "
                    f"table {self.name!r}"
                )


class Catalog:
    """Registry of table metadata for one engine instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableMeta] = {}

    def create(
        self,
        name: str,
        schema: Mapping[str, DType | str],
        primary_key: str | None = None,
        not_null: set[str] | frozenset[str] = frozenset(),
        foreign_keys: Mapping[str, tuple[str, str]] | None = None,
    ) -> TableMeta:
        """Register a new table; raises when the name is taken."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        meta = TableMeta(
            name=name,
            schema={k: DType.coerce(v) for k, v in schema.items()},
            primary_key=primary_key,
            not_null=frozenset(not_null),
            foreign_keys=dict(foreign_keys or {}),
        )
        meta.validate()
        for local, (ref_table, ref_col) in meta.foreign_keys.items():
            referenced = self.get(ref_table)
            if ref_col not in referenced.schema:
                raise StorageError(
                    f"foreign key {name}.{local} references unknown column "
                    f"{ref_table}.{ref_col}"
                )
        self._tables[name] = meta
        return meta

    def get(self, name: str) -> TableMeta:
        """Fetch metadata; raises :class:`TableNotFoundError` when absent."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise TableNotFoundError(
                f"table {name!r} not found (known tables: {known})"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table's metadata."""
        self.get(name)
        del self._tables[name]

    def names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def add_column(self, name: str, column: str, dtype: DType | str) -> TableMeta:
        """Schema evolution: add a nullable column, bumping the version."""
        meta = self.get(name)
        if column in meta.schema:
            raise StorageError(f"column {column!r} already exists in {name!r}")
        meta.schema[column] = DType.coerce(dtype)
        meta.version += 1
        return meta
