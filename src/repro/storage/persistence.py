"""Whole-database snapshots: save/load an engine to a directory.

Layout::

    <dir>/catalog.json        table metadata (schema, keys, versions)
    <dir>/<table>.json        rows of each table (row_id -> values)

JSON is chosen over a binary format because snapshot sizes here are small
(operational clinical stores, not the warehouse) and inspectability during
a trial matters more than density.  Dates are stored as ISO strings.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path

from repro.errors import StorageError
from repro.storage.engine import StorageEngine
from repro.tabular.dtypes import DType


def _encode_value(value: object) -> object:
    if isinstance(value, _dt.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and "__date__" in value:
        return _dt.date.fromisoformat(value["__date__"])
    return value


def save_snapshot(engine: StorageEngine, directory: str | Path) -> None:
    """Write the engine's catalog and all rows under ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    catalog = {}
    for name in engine.table_names():
        meta = engine.catalog.get(name)
        catalog[name] = {
            "schema": {k: v.value for k, v in meta.schema.items()},
            "primary_key": meta.primary_key,
            "not_null": sorted(meta.not_null),
            "version": meta.version,
            "foreign_keys": {
                k: list(v) for k, v in meta.foreign_keys.items()
            },
            "indexes": sorted(engine._tables[name].secondary),
        }
    with open(path / "catalog.json", "w", encoding="utf-8") as handle:
        json.dump(catalog, handle, indent=2)
    for name in engine.table_names():
        stored = engine._tables[name]
        rows = {
            str(row_id): {k: _encode_value(v) for k, v in row.items()}
            for row_id, row in sorted(stored.rows.items())
        }
        with open(path / f"{name}.json", "w", encoding="utf-8") as handle:
            json.dump(rows, handle)


def load_snapshot(directory: str | Path) -> StorageEngine:
    """Reconstruct an engine (schema, rows, indexes) from a snapshot."""
    path = Path(directory)
    catalog_file = path / "catalog.json"
    if not catalog_file.exists():
        raise StorageError(f"no snapshot found at {path}")
    with open(catalog_file, encoding="utf-8") as handle:
        catalog = json.load(handle)

    engine = StorageEngine()
    # Create tables without FKs first, then attach FK metadata, so load
    # order between referencing/referenced tables does not matter.
    for name, meta in catalog.items():
        engine.create_table(
            name,
            {k: DType.coerce(v) for k, v in meta["schema"].items()},
            primary_key=meta["primary_key"],
            not_null=set(meta["not_null"]),
        )
    for name, meta in catalog.items():
        engine.catalog.get(name).foreign_keys = {
            k: tuple(v) for k, v in meta["foreign_keys"].items()
        }
        engine.catalog.get(name).version = meta["version"]

    for name in catalog:
        table_file = path / f"{name}.json"
        if not table_file.exists():
            continue
        with open(table_file, encoding="utf-8") as handle:
            rows = json.load(handle)
        stored = engine._tables[name]
        with engine.transaction():
            for row_id_text, row in sorted(rows.items(), key=lambda p: int(p[0])):
                decoded = {k: _decode_value(v) for k, v in row.items()}
                engine.insert(name, decoded)
        __ = stored  # rows inserted through the normal path keep indexes fresh

    for name, meta in catalog.items():
        for column in meta.get("indexes", []):
            engine.create_index(name, column)
    return engine
