"""Whole-database snapshots: checksummed generations plus recovery.

Layout (format 2)::

    <root>/gen-00000001/MANIFEST.json     commit point: per-file digests,
                                          table → filename map, WAL position
    <root>/gen-00000001/catalog.json      table metadata (schema, keys, ...)
    <root>/gen-00000001/table_<name>.json rows of each table (row_id -> values)
    <root>/gen-00000002/...               newer generations

A generation is *valid* iff its ``MANIFEST.json`` parses and every file
matches its recorded CRC32.  Writers create a fresh generation directory,
write the data files atomically (temp + fsync + rename + directory
fsync), and write the manifest **last** — so a crash at any point leaves
either a complete new generation or an ignorable partial one, never a
half-replaced snapshot.  :func:`recover` walks generations newest-first,
loads the first valid one, then replays committed WAL records appended
after the manifest's ``wal_seq``.

Table names are percent-escaped into filenames (``table_`` prefix keeps
them clear of ``catalog.json``/``MANIFEST.json``) and collisions — only
possible via case-folding filesystems — are rejected loudly.

Format-1 snapshots (a flat directory with bare ``<table>.json`` files and
no manifest) still load through a compatibility path.

JSON is chosen over a binary format because snapshot sizes here are small
(operational clinical stores, not the warehouse) and inspectability during
a trial matters more than density.  Dates are stored as ISO strings.
"""

from __future__ import annotations

import datetime as _dt
import json
import shutil
import urllib.parse
import warnings
from pathlib import Path

from repro import obs
from repro.errors import DurabilityError, SnapshotError, StorageError
from repro.storage.durable import (
    atomic_write_bytes,
    crc32_hex,
    fsync_dir,
    verify_digest,
)
from repro.storage.engine import StorageEngine, replay_into
from repro.storage.wal import WriteAheadLog
from repro.tabular.dtypes import DType

_FORMAT_VERSION = 2
_GEN_PREFIX = "gen-"
_MANIFEST = "MANIFEST.json"
_CATALOG = "catalog.json"
#: generations retained after a successful save (the newest plus fallbacks)
KEEP_GENERATIONS = 2


def _encode_value(value: object) -> object:
    if isinstance(value, _dt.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and "__date__" in value:
        return _dt.date.fromisoformat(value["__date__"])
    return value


def table_filename(name: str) -> str:
    """Escaped, collision-free data filename for a table.

    Percent-escaping is injective, so two distinct table names can only
    collide on a case-insensitive filesystem; :func:`save_snapshot`
    checks for that explicitly.
    """
    if not name:
        raise StorageError("cannot snapshot a table with an empty name")
    return f"table_{urllib.parse.quote(name, safe='')}.json"


def _table_name_from_filename(filename: str) -> str:
    stem = filename[len("table_"):-len(".json")]
    return urllib.parse.unquote(stem)


def _generation_dirs(root: Path) -> list[Path]:
    """Generation directories, oldest first."""
    if not root.is_dir():
        return []
    dirs = [
        d for d in root.iterdir()
        if d.is_dir() and d.name.startswith(_GEN_PREFIX)
        and d.name[len(_GEN_PREFIX):].isdigit()
    ]
    return sorted(dirs, key=lambda d: int(d.name[len(_GEN_PREFIX):]))


def _catalog_payload(engine: StorageEngine) -> dict:
    catalog = {}
    for name in engine.table_names():
        meta = engine.catalog.get(name)
        catalog[name] = {
            "schema": {k: v.value for k, v in meta.schema.items()},
            "primary_key": meta.primary_key,
            "not_null": sorted(meta.not_null),
            "version": meta.version,
            "foreign_keys": {
                k: list(v) for k, v in meta.foreign_keys.items()
            },
            "indexes": sorted(engine._tables[name].secondary),
            # Physical row ids must survive recovery: WAL update/delete
            # records reference them, so loads restore rows at their
            # original ids and the allocator continues where it left off.
            "next_row_id": engine._tables[name].next_row_id,
        }
    return catalog


def _rows_payload(engine: StorageEngine, name: str) -> dict:
    stored = engine._tables[name]
    return {
        str(row_id): {k: _encode_value(v) for k, v in row.items()}
        for row_id, row in sorted(stored.rows.items())
    }


def save_snapshot(
    engine: StorageEngine,
    directory: str | Path,
    *,
    keep: int = KEEP_GENERATIONS,
) -> Path:
    """Deprecated spelling of the unified :func:`repro.persistence.save`."""
    warnings.warn(
        "save_snapshot() is deprecated; use repro.persistence.save()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _save_snapshot(engine, directory, keep=keep)


def _save_snapshot(
    engine: StorageEngine,
    directory: str | Path,
    *,
    keep: int = KEEP_GENERATIONS,
) -> Path:
    """Write a new snapshot generation under ``directory``; returns its path.

    The generation becomes visible (recoverable) only once its manifest
    lands; older generations beyond ``keep`` are pruned afterwards.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    existing = _generation_dirs(root)
    next_number = (
        int(existing[-1].name[len(_GEN_PREFIX):]) + 1 if existing else 1
    )
    gen_dir = root / f"{_GEN_PREFIX}{next_number:08d}"
    gen_dir.mkdir()

    names = engine.table_names()
    filenames = {name: table_filename(name) for name in names}
    by_casefold: dict[str, str] = {}
    for name, filename in filenames.items():
        other = by_casefold.setdefault(filename.casefold(), name)
        if other != name:
            raise StorageError(
                f"table names {other!r} and {name!r} collide on snapshot "
                f"filename {filename!r} (case-insensitive filesystems)"
            )

    with obs.span(
        "snapshot.save", generation=next_number, tables=len(names)
    ) as sp:
        snapshot_bytes = 0
        digests: dict[str, str] = {}
        catalog_bytes = json.dumps(
            _catalog_payload(engine), indent=2
        ).encode("utf-8")
        atomic_write_bytes(gen_dir / _CATALOG, catalog_bytes, point="snapshot.data")
        digests[_CATALOG] = crc32_hex(catalog_bytes)
        snapshot_bytes += len(catalog_bytes)
        for name in names:
            data = json.dumps(_rows_payload(engine, name)).encode("utf-8")
            atomic_write_bytes(
                gen_dir / filenames[name], data, point="snapshot.data"
            )
            digests[filenames[name]] = crc32_hex(data)
            snapshot_bytes += len(data)

        manifest = {
            "format_version": _FORMAT_VERSION,
            "generation": next_number,
            "wal_seq": engine.wal.last_seq,
            "tables": filenames,
            "files": digests,
        }
        atomic_write_bytes(
            gen_dir / _MANIFEST,
            json.dumps(manifest, indent=2).encode("utf-8"),
            point="snapshot.manifest",
        )
        fsync_dir(root)
        sp.set(bytes=snapshot_bytes)
        obs.set_gauge("storage.snapshot.bytes", snapshot_bytes)
        obs.count("storage.snapshot.saves")

    for stale in _generation_dirs(root)[:-keep] if keep > 0 else []:
        shutil.rmtree(stale, ignore_errors=True)
    return gen_dir


def load_generation(gen_dir: str | Path) -> tuple[StorageEngine, dict]:
    """Load one generation, verifying every checksum; returns (engine, manifest)."""
    gen_path = Path(gen_dir)
    manifest_file = gen_path / _MANIFEST
    if not manifest_file.exists():
        raise SnapshotError(
            f"{gen_path}: no manifest — incomplete generation (crashed save?)"
        )
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{gen_path}: manifest is not valid JSON: {exc}")
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise SnapshotError(
            f"{gen_path}: unsupported snapshot format {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    digests = manifest["files"]
    if _CATALOG not in digests:
        raise SnapshotError(f"{gen_path}: manifest records no catalog digest")
    catalog_bytes = verify_digest(gen_path / _CATALOG, digests[_CATALOG])
    catalog = json.loads(catalog_bytes.decode("utf-8"))

    engine = _engine_from_catalog(catalog)
    for name, filename in manifest["tables"].items():
        if filename not in digests:
            raise SnapshotError(
                f"{gen_path}: manifest records no digest for {filename!r}"
            )
        data = verify_digest(gen_path / filename, digests[filename])
        _insert_rows(engine, name, json.loads(data.decode("utf-8")))
    _restore_row_id_allocators(engine, catalog)
    _rebuild_indexes(engine, catalog)
    return engine, manifest


def load_snapshot(directory: str | Path) -> StorageEngine:
    """Deprecated spelling of the unified :func:`repro.persistence.load`."""
    warnings.warn(
        "load_snapshot() is deprecated; use repro.persistence.load()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_snapshot(directory)


def _load_snapshot(directory: str | Path) -> StorageEngine:
    """Reconstruct an engine from the newest snapshot generation.

    Verifies checksums; raises :class:`~repro.errors.SnapshotError` when
    the newest generation is damaged (use :func:`recover` to fall back to
    older generations and replay the WAL).  Flat format-1 directories
    load through the compatibility path.
    """
    root = Path(directory)
    generations = _generation_dirs(root)
    if generations:
        engine, _ = load_generation(generations[-1])
        return engine
    if (root / _CATALOG).exists():
        return _load_flat_legacy(root)
    raise StorageError(f"no snapshot found at {root}")


def recover(
    directory: str | Path, wal_path: str | Path | None = None
) -> StorageEngine:
    """Crash recovery: newest *valid* generation + WAL replay.

    Walks generations newest-first, skipping damaged or incomplete ones
    (with the legacy flat layout as a final fallback), then replays
    committed WAL records appended after the chosen generation's
    ``wal_seq``.  The recovered engine adopts the (tail-repaired) WAL so
    subsequent transactions continue the same log.
    """
    root = Path(directory)
    with obs.span("recover", root=str(root)) as sp:
        engine: StorageEngine | None = None
        after_seq = 0
        generation = None
        problems: list[str] = []
        for gen_dir in reversed(_generation_dirs(root)):
            try:
                with obs.span("recover.load_generation", generation=gen_dir.name):
                    engine, manifest = load_generation(gen_dir)
                after_seq = manifest.get("wal_seq", 0)
                generation = gen_dir.name
                break
            except (DurabilityError, OSError, KeyError, ValueError) as exc:
                problems.append(f"{gen_dir.name}: {exc}")
        if engine is None and (root / _CATALOG).exists():
            try:
                engine = _load_flat_legacy(root)
                generation = "flat-legacy"
            except (DurabilityError, StorageError, OSError, ValueError) as exc:
                problems.append(f"flat layout: {exc}")
        if engine is None:
            detail = "; ".join(problems) if problems else "no generations present"
            raise SnapshotError(f"no recoverable snapshot at {root} ({detail})")

        replayed = 0
        if wal_path is not None:
            with obs.span("recover.wal_replay", after_seq=after_seq) as replay_sp:
                wal = WriteAheadLog.load(wal_path)
                replayed = replay_into(engine, wal, after_seq=after_seq)
                replay_sp.set(records=replayed)
            engine.wal = wal
        sp.set(
            generation=generation,
            skipped_generations=len(problems),
            wal_records_replayed=replayed,
        )
        obs.count("storage.recoveries")
        return engine


def checkpoint(
    engine: StorageEngine,
    directory: str | Path,
    *,
    keep: int = KEEP_GENERATIONS,
) -> Path:
    """Snapshot the engine, then truncate its WAL; returns the generation.

    Ordering matters: the manifest (recording ``wal_seq``) lands before
    the WAL shrinks, so a crash between the two steps merely leaves
    already-snapshotted records in the log — recovery skips them via the
    manifest's sequence cutoff.
    """
    with obs.span("checkpoint", wal_seq=engine.wal.last_seq):
        gen_dir = _save_snapshot(engine, directory, keep=keep)
        engine.wal.truncate()
        obs.count("storage.checkpoints")
    return gen_dir


# ----------------------------------------------------------------------
# Shared loading internals + format-1 compatibility
# ----------------------------------------------------------------------


def _engine_from_catalog(catalog: dict) -> StorageEngine:
    engine = StorageEngine()
    # Create tables without FKs first, then attach FK metadata, so load
    # order between referencing/referenced tables does not matter.
    for name, meta in catalog.items():
        engine.create_table(
            name,
            {k: DType.coerce(v) for k, v in meta["schema"].items()},
            primary_key=meta["primary_key"],
            not_null=set(meta["not_null"]),
        )
    for name, meta in catalog.items():
        engine.catalog.get(name).foreign_keys = {
            k: tuple(v) for k, v in meta["foreign_keys"].items()
        }
        engine.catalog.get(name).version = meta["version"]
    return engine


def _insert_rows(engine: StorageEngine, name: str, rows: dict) -> None:
    with engine.transaction():
        for row_id_text, row in sorted(rows.items(), key=lambda p: int(p[0])):
            decoded = {k: _decode_value(v) for k, v in row.items()}
            engine.insert(name, decoded, at_row_id=int(row_id_text))


def _restore_row_id_allocators(engine: StorageEngine, catalog: dict) -> None:
    for name, meta in catalog.items():
        recorded = meta.get("next_row_id")  # absent in format-1 catalogs
        if recorded is not None:
            stored = engine._tables[name]
            stored.next_row_id = max(stored.next_row_id, recorded)


def _rebuild_indexes(engine: StorageEngine, catalog: dict) -> None:
    for name, meta in catalog.items():
        for column in meta.get("indexes", []):
            engine.create_index(name, column)


def _load_flat_legacy(root: Path) -> StorageEngine:
    """Format 1: bare ``catalog.json`` + ``<table>.json``, no checksums."""
    with open(root / _CATALOG, encoding="utf-8") as handle:
        catalog = json.load(handle)
    engine = _engine_from_catalog(catalog)
    for name in catalog:
        table_file = root / f"{name}.json"
        if not table_file.exists():
            continue
        with open(table_file, encoding="utf-8") as handle:
            rows = json.load(handle)
        _insert_rows(engine, name, rows)
    _rebuild_indexes(engine, catalog)
    return engine
