"""Embedded storage engine — the operational (OLTP) substrate.

The paper's clinical environment has "flat file storage, multiple database
vendors and different data models"; this package plays the role of those
operational stores.  It provides named tables with declared schemas,
row-level CRUD inside transactions, hash and sorted indexes, a
checksummed write-ahead log for durability, snapshot generations with
verified manifests, and crash recovery (newest valid generation + WAL
replay) with a pluggable fault-injection harness.

::

    from repro.storage import StorageEngine, checkpoint, recover

    db = StorageEngine(WriteAheadLog("visits.wal"))
    db.create_table("visits", {"visit_id": "int", "patient_id": "int",
                               "fbg": "float"}, primary_key="visit_id")
    with db.transaction():
        db.insert("visits", {"visit_id": 1, "patient_id": 7, "fbg": 5.4})
    checkpoint(db, "snapshots/")       # durable point-in-time state
    db = recover("snapshots/", "visits.wal")   # after a crash
"""

from repro.storage.engine import StorageEngine, replay_into
from repro.storage.catalog import Catalog, TableMeta
from repro.storage.faults import FaultPlan, FaultRule, SimulatedCrash
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.wal import WriteAheadLog
from repro.storage.persistence import (
    checkpoint,
    load_snapshot,
    recover,
    save_snapshot,
)

__all__ = [
    "StorageEngine",
    "Catalog",
    "TableMeta",
    "HashIndex",
    "SortedIndex",
    "WriteAheadLog",
    "replay_into",
    "save_snapshot",
    "load_snapshot",
    "checkpoint",
    "recover",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
]
