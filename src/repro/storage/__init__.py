"""Embedded storage engine — the operational (OLTP) substrate.

The paper's clinical environment has "flat file storage, multiple database
vendors and different data models"; this package plays the role of those
operational stores.  It provides named tables with declared schemas,
row-level CRUD inside transactions, hash and sorted indexes, a write-ahead
log for durability, and whole-database snapshots.

::

    from repro.storage import StorageEngine

    db = StorageEngine()
    db.create_table("visits", {"visit_id": "int", "patient_id": "int",
                               "fbg": "float"}, primary_key="visit_id")
    with db.transaction():
        db.insert("visits", {"visit_id": 1, "patient_id": 7, "fbg": 5.4})
    table = db.scan("visits")          # -> repro.tabular.Table
"""

from repro.storage.engine import StorageEngine
from repro.storage.catalog import Catalog, TableMeta
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.wal import WriteAheadLog
from repro.storage.persistence import save_snapshot, load_snapshot

__all__ = [
    "StorageEngine",
    "Catalog",
    "TableMeta",
    "HashIndex",
    "SortedIndex",
    "WriteAheadLog",
    "save_snapshot",
    "load_snapshot",
]
