"""Recursive-descent parser for the DG-SQL subset."""

from __future__ import annotations

from repro.errors import ParseError
from repro.dgsql.ast import (
    AggregateItem,
    BoolExpr,
    ColumnItem,
    Condition,
    LearnStatement,
    PredictStatement,
    SelectStatement,
    Statement,
    WhereExpr,
)
from repro.dgsql.lexer import SqlToken, SqlTokenType, tokenize_sql

_AGG_KEYWORDS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class _Parser:
    def __init__(self, tokens: list[SqlToken]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> SqlToken:
        return self.tokens[self.pos]

    def advance(self) -> SqlToken:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, type_: SqlTokenType, text: str | None = None) -> SqlToken:
        token = self.peek()
        if token.type is not type_ or (text is not None and token.text != text):
            wanted = text or type_.value
            raise ParseError(
                f"expected {wanted} but found {token.text or 'end of input'!r} "
                f"at offset {token.position}"
            )
        return self.advance()

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.type is SqlTokenType.KEYWORD and token.text in words

    # ------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.at_keyword("SELECT"):
            statement = self.parse_select()
        elif self.at_keyword("LEARN"):
            statement = self.parse_learn()
        elif self.at_keyword("PREDICT"):
            statement = self.parse_predict()
        else:
            token = self.peek()
            raise ParseError(
                f"expected SELECT, LEARN or PREDICT, found {token.text!r}"
            )
        self.expect(SqlTokenType.EOF)
        return statement

    # ------------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect(SqlTokenType.KEYWORD, "SELECT")
        select_star = False
        items: list = []
        if self.peek().type is SqlTokenType.STAR:
            self.advance()
            select_star = True
        else:
            items.append(self.parse_item())
            while self.peek().type is SqlTokenType.COMMA:
                self.advance()
                items.append(self.parse_item())
        self.expect(SqlTokenType.KEYWORD, "FROM")
        table = self.expect(SqlTokenType.IDENT).text

        where: WhereExpr | None = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_bool_expr()

        group_by: list[str] = []
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect(SqlTokenType.KEYWORD, "BY")
            group_by.append(self.expect(SqlTokenType.IDENT).text)
            while self.peek().type is SqlTokenType.COMMA:
                self.advance()
                group_by.append(self.expect(SqlTokenType.IDENT).text)

        having: WhereExpr | None = None
        if self.at_keyword("HAVING"):
            if not group_by:
                raise ParseError("HAVING requires GROUP BY")
            self.advance()
            having = self.parse_bool_expr()

        order_by: str | None = None
        order_desc = False
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect(SqlTokenType.KEYWORD, "BY")
            order_by = self.expect(SqlTokenType.IDENT).text
            if self.at_keyword("ASC", "DESC"):
                order_desc = self.advance().text == "DESC"

        limit: int | None = None
        if self.at_keyword("LIMIT"):
            self.advance()
            limit_token = self.expect(SqlTokenType.NUMBER)
            limit = int(limit_token.text)
            if limit < 0:
                raise ParseError("LIMIT must be non-negative")

        return SelectStatement(
            items=tuple(items),
            table=table,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
            select_star=select_star,
        )

    # boolean expression grammar: OR binds loosest, then AND, then atoms
    def parse_bool_expr(self) -> WhereExpr:
        operands = [self.parse_and_expr()]
        while self.at_keyword("OR"):
            self.advance()
            operands.append(self.parse_and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolExpr("or", tuple(operands))

    def parse_and_expr(self) -> WhereExpr:
        operands = [self.parse_atom()]
        while self.at_keyword("AND"):
            self.advance()
            operands.append(self.parse_atom())
        if len(operands) == 1:
            return operands[0]
        return BoolExpr("and", tuple(operands))

    def parse_atom(self) -> WhereExpr:
        if self.peek().type is SqlTokenType.LPAREN:
            self.advance()
            inner = self.parse_bool_expr()
            self.expect(SqlTokenType.RPAREN)
            return inner
        return self.parse_condition()

    def parse_item(self):
        token = self.peek()
        if token.type is SqlTokenType.KEYWORD and token.text in _AGG_KEYWORDS:
            function = self.advance().text
            self.expect(SqlTokenType.LPAREN)
            distinct = False
            column: str | None = None
            if self.peek().type is SqlTokenType.STAR:
                self.advance()
                if function != "COUNT":
                    raise ParseError(f"{function}(*) is not valid")
            else:
                if self.at_keyword("DISTINCT"):
                    self.advance()
                    distinct = True
                column = self.expect(SqlTokenType.IDENT).text
            self.expect(SqlTokenType.RPAREN)
            alias = self.parse_alias()
            return AggregateItem(function, column, distinct, alias)
        name = self.expect(SqlTokenType.IDENT).text
        return ColumnItem(name, self.parse_alias())

    def parse_alias(self) -> str | None:
        if self.at_keyword("AS"):
            self.advance()
            return self.expect(SqlTokenType.IDENT).text
        return None

    def parse_condition(self) -> Condition:
        column = self.expect(SqlTokenType.IDENT).text
        if self.at_keyword("IS"):
            self.advance()
            if self.at_keyword("NOT"):
                self.advance()
                self.expect(SqlTokenType.KEYWORD, "NULL")
                return Condition(column, "is_not_null")
            self.expect(SqlTokenType.KEYWORD, "NULL")
            return Condition(column, "is_null")
        if self.at_keyword("IN"):
            self.advance()
            self.expect(SqlTokenType.LPAREN)
            values = [self.parse_literal()]
            while self.peek().type is SqlTokenType.COMMA:
                self.advance()
                values.append(self.parse_literal())
            self.expect(SqlTokenType.RPAREN)
            if any(v is None for v in values):
                raise ParseError("NULL inside an IN list never matches; drop it")
            return Condition(column, "in", tuple(values))
        if self.at_keyword("BETWEEN"):
            self.advance()
            low = self.parse_literal()
            self.expect(SqlTokenType.KEYWORD, "AND")
            high = self.parse_literal()
            if low is None or high is None:
                raise ParseError("BETWEEN bounds must not be NULL")
            return Condition(column, "between", (low, high))
        operator = self.expect(SqlTokenType.OPERATOR).text
        if operator == "!=":
            operator = "<>"
        value = self.parse_literal()
        return Condition(column, operator, value)

    def parse_literal(self) -> object:
        token = self.peek()
        if token.type is SqlTokenType.NUMBER:
            self.advance()
            text = token.text
            return float(text) if "." in text else int(text)
        if token.type is SqlTokenType.STRING:
            self.advance()
            return token.text
        if self.at_keyword("TRUE"):
            self.advance()
            return True
        if self.at_keyword("FALSE"):
            self.advance()
            return False
        if self.at_keyword("NULL"):
            self.advance()
            return None
        raise ParseError(
            f"expected a literal, found {token.text or 'end of input'!r} "
            f"at offset {token.position}"
        )

    # ------------------------------------------------------------------

    def parse_learn(self) -> LearnStatement:
        self.expect(SqlTokenType.KEYWORD, "LEARN")
        model = self.expect(SqlTokenType.IDENT).text
        self.expect(SqlTokenType.KEYWORD, "PREDICTING")
        target = self.expect(SqlTokenType.IDENT).text
        self.expect(SqlTokenType.KEYWORD, "FROM")
        table = self.expect(SqlTokenType.IDENT).text
        self.expect(SqlTokenType.KEYWORD, "USING")
        features = [self.expect(SqlTokenType.IDENT).text]
        while self.peek().type is SqlTokenType.COMMA:
            self.advance()
            features.append(self.expect(SqlTokenType.IDENT).text)
        where: WhereExpr | None = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_bool_expr()
        return LearnStatement(model, target, table, tuple(features), where)

    def parse_predict(self) -> PredictStatement:
        self.expect(SqlTokenType.KEYWORD, "PREDICT")
        model = self.expect(SqlTokenType.IDENT).text
        self.expect(SqlTokenType.KEYWORD, "GIVEN")
        givens: dict[str, object] = {}
        while True:
            column = self.expect(SqlTokenType.IDENT).text
            self.expect(SqlTokenType.OPERATOR, "=")
            givens[column] = self.parse_literal()
            if self.peek().type is SqlTokenType.COMMA:
                self.advance()
                continue
            break
        return PredictStatement(model, givens)


def parse_dgsql(source: str) -> Statement:
    """Parse one DG-SQL statement."""
    return _Parser(tokenize_sql(source)).parse_statement()
