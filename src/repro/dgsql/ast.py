"""AST nodes for the DG-SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnItem:
    """A plain column in the select list."""

    name: str
    alias: str | None = None

    @property
    def output_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class AggregateItem:
    """``AGG(col)``, ``COUNT(*)`` or ``COUNT(DISTINCT col)``."""

    function: str                 # COUNT | SUM | AVG | MIN | MAX
    column: str | None            # None for COUNT(*)
    distinct: bool = False
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column or "*"
        prefix = "distinct_" if self.distinct else ""
        return f"{self.function.lower()}_{prefix}{target}".replace("*", "all")


@dataclass(frozen=True)
class Condition:
    """A leaf predicate.

    ``operator`` ∈ {=, <>, <, <=, >, >=, is_null, is_not_null, in,
    between}; ``value`` holds the literal, the tuple of IN values, or the
    (low, high) pair for BETWEEN.
    """

    column: str
    operator: str
    value: object = None


@dataclass(frozen=True)
class BoolExpr:
    """AND/OR over conditions and nested boolean expressions."""

    operator: str                 # "and" | "or"
    operands: tuple               # Condition | BoolExpr


WhereExpr = Condition | BoolExpr


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT."""

    items: tuple
    table: str
    where: WhereExpr | None = None
    group_by: tuple[str, ...] = ()
    having: WhereExpr | None = None
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    select_star: bool = False


@dataclass(frozen=True)
class LearnStatement:
    """``LEARN model PREDICTING target FROM table USING features
    [WHERE ...]`` — the optional WHERE scopes training to a subset."""

    model: str
    target: str
    table: str
    features: tuple[str, ...]
    where: "WhereExpr | None" = None


@dataclass(frozen=True)
class PredictStatement:
    """``PREDICT model GIVEN col = value, ...``."""

    model: str
    givens: dict[str, object] = field(default_factory=dict)


Statement = SelectStatement | LearnStatement | PredictStatement
