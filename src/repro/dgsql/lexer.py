"""Tokenizer for the DG-SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LexError


class SqlTokenType(Enum):
    """Kinds of DG-SQL tokens."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"    # = <> != < <= > >=
    STAR = "star"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EOF = "eof"


SQL_KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
        "AND", "OR", "IN", "BETWEEN", "HAVING",
        "AS", "ASC", "DESC", "DISTINCT", "NULL", "TRUE", "FALSE",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "IS", "NOT",
        "LEARN", "PREDICTING", "USING", "PREDICT", "GIVEN",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


@dataclass(frozen=True)
class SqlToken:
    """One token with its source offset."""

    type: SqlTokenType
    text: str
    position: int


def tokenize_sql(source: str) -> list[SqlToken]:
    """Tokenize DG-SQL text; raises :class:`LexError` on bad input."""
    tokens: list[SqlToken] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "*":
            tokens.append(SqlToken(SqlTokenType.STAR, "*", i))
            i += 1
            continue
        if ch == ",":
            tokens.append(SqlToken(SqlTokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(SqlToken(SqlTokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(SqlToken(SqlTokenType.RPAREN, ")", i))
            i += 1
            continue
        matched_op = next(
            (op for op in _OPERATORS if source.startswith(op, i)), None
        )
        if matched_op:
            tokens.append(SqlToken(SqlTokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch == "'":
            end = source.find("'", i + 1)
            if end < 0:
                raise LexError("unterminated string literal", i)
            tokens.append(SqlToken(SqlTokenType.STRING, source[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(SqlToken(SqlTokenType.NUMBER, source[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_."):
                j += 1
            word = source[i:j]
            if word.upper() in SQL_KEYWORDS:
                tokens.append(SqlToken(SqlTokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(SqlToken(SqlTokenType.IDENT, word, i))
            i = j
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(SqlToken(SqlTokenType.EOF, "", n))
    return tokens
