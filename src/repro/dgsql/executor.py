"""Execution of DG-SQL statements against a storage engine."""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.dgsql.ast import (
    AggregateItem,
    BoolExpr,
    ColumnItem,
    Condition,
    LearnStatement,
    PredictStatement,
    SelectStatement,
    Statement,
    WhereExpr,
)
from repro.dgsql.parser import parse_dgsql
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.serving.resilience import checkpoint
from repro.storage.engine import StorageEngine
from repro.tabular.expressions import Expression, col
from repro.tabular.table import Table

_AGG_MAP = {
    "COUNT": "count",
    "SUM": "sum",
    "AVG": "mean",
    "MIN": "min",
    "MAX": "max",
}


def _condition_expression(condition: Condition) -> Expression:
    reference = col(condition.column)
    if condition.operator == "is_null":
        return reference.is_null()
    if condition.operator == "is_not_null":
        return reference.is_not_null()
    if condition.operator == "=":
        return reference.eq(condition.value)
    if condition.operator == "<>":
        return ~reference.eq(condition.value)
    if condition.operator == "<":
        return reference < condition.value
    if condition.operator == "<=":
        return reference <= condition.value
    if condition.operator == ">":
        return reference > condition.value
    if condition.operator == ">=":
        return reference >= condition.value
    if condition.operator == "in":
        return reference.isin(list(condition.value))  # type: ignore[arg-type]
    if condition.operator == "between":
        low, high = condition.value  # type: ignore[misc]
        return reference.between(low, high)
    raise EvaluationError(f"unknown operator {condition.operator!r}")


def _where_expression(node: WhereExpr) -> Expression:
    """Compile the boolean tree into a tabular filter expression."""
    if isinstance(node, Condition):
        return _condition_expression(node)
    if isinstance(node, BoolExpr):
        compiled = [_where_expression(operand) for operand in node.operands]
        combined = compiled[0]
        for clause in compiled[1:]:
            combined = (combined & clause) if node.operator == "and" else (combined | clause)
        return combined
    raise EvaluationError(f"unknown where node {node!r}")


class DGSQLExecutor:
    """Runs DG-SQL over an engine; holds the learned-model registry.

    This is the whole "classic DGMS" in miniature: reporting via SELECT,
    learning via LEARN (naive Bayes over the flat table) and prediction via
    PREDICT — with no dimensional model anywhere, which is exactly the
    architecture the paper argues the warehouse improves on.
    """

    def __init__(self, engine: StorageEngine, *, serving=None):
        self.engine = engine
        self.models: dict[str, NaiveBayesClassifier] = {}
        #: optional :class:`~repro.serving.admission.ServingRuntime`; when
        #: set, every statement passes the admission gate and runs under
        #: the configured default deadline
        self.serving = serving

    def execute(self, source: str | Statement) -> Table | dict[str, object]:
        """Run one statement.

        SELECT and LEARN return a :class:`Table` (LEARN's is a one-row
        summary); PREDICT returns a dict with the predicted label and the
        class distribution.
        """
        statement = parse_dgsql(source) if isinstance(source, str) else source
        if self.serving is not None:
            with self.serving.query_scope():
                return self._dispatch(statement)
        return self._dispatch(statement)

    def _dispatch(self, statement: Statement) -> Table | dict[str, object]:
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement)
        if isinstance(statement, LearnStatement):
            return self._execute_learn(statement)
        if isinstance(statement, PredictStatement):
            return self._execute_predict(statement)
        raise EvaluationError(f"unsupported statement {statement!r}")

    # ------------------------------------------------------------------

    def _execute_select(self, statement: SelectStatement) -> Table:
        table = self.engine.scan(statement.table)
        checkpoint()
        if statement.where is not None:
            table = table.filter(_where_expression(statement.where))
            checkpoint()

        has_aggregates = any(
            isinstance(item, AggregateItem) for item in statement.items
        )
        aggregated = statement.group_by or has_aggregates
        if not aggregated and statement.order_by is not None:
            # ORDER BY may name a column that the projection drops, so plain
            # selects sort before projecting (grouped queries sort after —
            # there ORDER BY refers to output columns like an alias).
            table = table.sort_by(
                statement.order_by, descending=statement.order_desc
            )
        if statement.select_star:
            result = table
        elif aggregated:
            result = self._aggregate(statement, table)
            if statement.having is not None:
                result = result.filter(_where_expression(statement.having))
            if statement.order_by is not None:
                result = result.sort_by(
                    statement.order_by, descending=statement.order_desc
                )
        else:
            result = table.select([item.name for item in statement.items])
            renames = {
                item.name: item.alias
                for item in statement.items
                if isinstance(item, ColumnItem) and item.alias
            }
            if renames:
                result = result.rename(renames)
        if statement.limit is not None:
            result = result.head(statement.limit)
        return result

    def _aggregate(self, statement: SelectStatement, table: Table) -> Table:
        aggregations: dict[str, tuple[str, str]] = {}
        for item in statement.items:
            if isinstance(item, ColumnItem):
                if item.name not in statement.group_by:
                    raise EvaluationError(
                        f"column {item.name!r} must appear in GROUP BY or "
                        "inside an aggregate"
                    )
                continue
            function = _AGG_MAP[item.function]
            if item.column is None:
                anchor = statement.group_by[0] if statement.group_by else table.column_names[0]
                aggregations[item.output_name] = (anchor, "size")
            elif item.distinct:
                if item.function != "COUNT":
                    raise EvaluationError("DISTINCT is only valid inside COUNT")
                aggregations[item.output_name] = (item.column, "nunique")
            else:
                aggregations[item.output_name] = (item.column, function)
        if not aggregations:
            raise EvaluationError("GROUP BY query selects no aggregates")

        if statement.group_by:
            result = table.groupby(*statement.group_by).agg(**aggregations)
            wanted = [
                item.output_name if isinstance(item, AggregateItem) else item.name
                for item in statement.items
            ]
            result = result.select(
                [c for c in result.column_names if c in set(wanted) | set(statement.group_by)]
            )
            renames = {
                item.name: item.alias
                for item in statement.items
                if isinstance(item, ColumnItem) and item.alias
            }
            return result.rename(renames) if renames else result

        # global aggregate: one output row
        from repro.tabular.groupby import AGGREGATORS

        row: dict[str, object] = {}
        indices = np.arange(len(table))
        for out_name, (target, function) in aggregations.items():
            row[out_name] = AGGREGATORS[function](table.column(target), indices)
        return Table.from_rows([row])

    # ------------------------------------------------------------------

    def _execute_learn(self, statement: LearnStatement) -> Table:
        table = self.engine.scan(statement.table)
        if statement.where is not None:
            table = table.filter(_where_expression(statement.where))
        rows = table.to_rows()
        model = NaiveBayesClassifier().fit(
            rows, statement.target, list(statement.features)
        )
        self.models[statement.model] = model
        return Table.from_rows(
            [
                {
                    "model": statement.model,
                    "target": statement.target,
                    "features": ", ".join(statement.features),
                    "classes": ", ".join(model.classes),
                    "rows": len(rows),
                }
            ]
        )

    def _execute_predict(self, statement: PredictStatement) -> dict[str, object]:
        model = self.models.get(statement.model)
        if model is None:
            raise EvaluationError(
                f"no model named {statement.model!r}; run LEARN first "
                f"(known: {', '.join(sorted(self.models)) or 'none'})"
            )
        probabilities = model.predict_proba(dict(statement.givens))
        label = max(sorted(probabilities), key=lambda c: probabilities[c])
        return {
            "model": statement.model,
            "prediction": label,
            "probabilities": probabilities,
        }
