"""Mini DG-SQL — the classic-DGMS baseline the paper extends.

Brodsky & Wang's DGMS (the paper's reference [4]) intermediates between
data and decision features with DG-SQL, "an extension of SQL ... to
support and enable the phases of operation in DGMS".  The DD-DGMS paper
*replaces* that intermediation with a data warehouse; to compare the two
architectures (bench P1) this package implements the baseline: a SQL
subset over flat operational tables plus the DG extensions ``LEARN`` and
``PREDICT`` that close the loop on the flat-store side.

Supported statements::

    SELECT gender, COUNT(*) AS n, AVG(fbg) AS mean_fbg
    FROM visits WHERE age >= 40 AND diabetes = 'yes'
    GROUP BY gender ORDER BY n DESC LIMIT 10

    LEARN diabetes_model PREDICTING diabetes FROM visits
        USING fbg, bmi, reflex_knee

    PREDICT diabetes_model GIVEN fbg = 7.2, bmi = 31.0
"""

from repro.dgsql.executor import DGSQLExecutor
from repro.dgsql.parser import parse_dgsql
from repro.dgsql.lexer import tokenize_sql

__all__ = ["DGSQLExecutor", "parse_dgsql", "tokenize_sql"]
