"""Edge-of-overlapping-dimensions group detection.

Paper §IV: "Groups of patients at the edges of overlapping dimensions are
easily identified visually than by any other means."  This module makes
the same detection algorithmic: cells of a two-level crosstab whose count
is small but non-zero relative to both of their margins — the patients who
sit in the thin intersection of two otherwise-large groups.  Exactly the
Fig. 5 phenomenon (the few women with diabetes past 78).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OLAPError
from repro.olap.crosstab import Crosstab


@dataclass(frozen=True)
class OverlapGroup:
    """One edge group: a thin intersection of two populated margins."""

    row_key: tuple
    col_key: tuple
    count: float
    row_total: float
    col_total: float
    #: min(count/row_total, count/col_total): how marginal the cell is
    edge_ratio: float

    def describe(self) -> str:
        """E.g. ``(75-80,) × (F,): 3 of 45/160 (edge 0.02)``."""
        return (
            f"{self.row_key} × {self.col_key}: {self.count:g} of "
            f"{self.row_total:g}/{self.col_total:g} (edge {self.edge_ratio:.3f})"
        )


def edge_groups(
    crosstab: Crosstab,
    max_edge_ratio: float = 0.15,
    min_count: float = 1,
    min_margin: float = 10,
) -> list[OverlapGroup]:
    """Find thin-intersection cells, most marginal first.

    A cell qualifies when it is populated (``count >= min_count``), both
    its margins are substantial (``>= min_margin``), and the cell holds at
    most ``max_edge_ratio`` of the smaller margin.
    """
    if not 0 < max_edge_ratio <= 1:
        raise OLAPError("max_edge_ratio must be in (0, 1]")
    row_totals = crosstab.row_totals()
    col_totals = crosstab.col_totals()
    groups: list[OverlapGroup] = []
    for row_key in crosstab.row_keys:
        for col_key in crosstab.col_keys:
            value = crosstab.cells.get((row_key, col_key))
            if not isinstance(value, (int, float)) or value < min_count:
                continue
            row_total = row_totals.get(row_key, 0.0)
            col_total = col_totals.get(col_key, 0.0)
            if row_total < min_margin or col_total < min_margin:
                continue
            edge_ratio = min(value / row_total, value / col_total)
            if edge_ratio <= max_edge_ratio:
                groups.append(
                    OverlapGroup(
                        row_key, col_key, float(value),
                        row_total, col_total, edge_ratio,
                    )
                )
    groups.sort(key=lambda g: g.edge_ratio)
    return groups
