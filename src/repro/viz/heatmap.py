"""Terminal heatmaps of crosstabs.

Density shading makes multi-band grids (e.g. the full Fig 6 matrix)
scannable at a glance — the visualisation component's answer to "the
large number of dimensions in clinical settings".
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.olap.crosstab import Crosstab

_SHADES = " ░▒▓█"


def heatmap(crosstab: Crosstab, title: str = "") -> str:
    """Render a crosstab as a shaded grid with a legend.

    Cell shade is value / max over the grid; empty cells show ``·``.
    """
    values = [
        float(v) for v in crosstab.cells.values()
        if isinstance(v, (int, float))
    ]
    if not values:
        raise ReproError("crosstab has no numeric cells to shade")
    peak = max(values)
    if peak <= 0:
        raise ReproError("all cells are <= 0; nothing to shade")

    def shade(value: object) -> str:
        if not isinstance(value, (int, float)):
            return " · "
        index = min(int(float(value) / peak * (len(_SHADES) - 1) + 0.5),
                    len(_SHADES) - 1)
        return _SHADES[index] * 3

    def key_text(key: tuple) -> str:
        return " / ".join("∅" if v is None else str(v) for v in key)

    row_width = max((len(key_text(r)) for r in crosstab.row_keys), default=4)
    col_labels = [key_text(c) for c in crosstab.col_keys]
    lines = [title] if title else []
    header = " " * (row_width + 1) + " ".join(
        label[:3].center(3) for label in col_labels
    )
    lines.append(header)
    for row_key in crosstab.row_keys:
        cells = " ".join(
            shade(crosstab.cells.get((row_key, col_key)))
            for col_key in crosstab.col_keys
        )
        lines.append(f"{key_text(row_key).ljust(row_width)} {cells}")
    lines.append(
        f"legend: ' '=0 … '█'={peak:g}; columns: "
        + ", ".join(f"{label[:3]}={label}" for label in col_labels)
    )
    return "\n".join(lines)
