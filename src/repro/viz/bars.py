"""Unicode bar charts for terminals."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int) -> str:
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * 8)] if full < width else ""
    return "█" * full + partial


def bar_chart(
    values: Mapping[object, float],
    title: str = "",
    width: int = 40,
) -> str:
    """Horizontal bar chart of label → value (insertion order kept)."""
    if not values:
        raise ReproError("nothing to chart")
    numeric = {k: float(v) for k, v in values.items() if v is not None}
    if not numeric:
        raise ReproError("all values are null")
    peak = max(numeric.values())
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        if value is None:
            lines.append(f"{str(label).ljust(label_width)} │ (no data)")
            continue
        bar = _bar(float(value), peak, width)
        lines.append(f"{str(label).ljust(label_width)} │{bar} {value:g}")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[object],
    series: Mapping[object, Mapping[object, float | None]],
    title: str = "",
    width: int = 30,
) -> str:
    """Grouped bars: one block per row label, one bar per series.

    ``series`` maps series name → {row label → value}.  This is the shape
    of paper Fig. 5 (age bands on rows, one bar per gender).
    """
    if not rows or not series:
        raise ReproError("nothing to chart")
    all_values = [
        float(v)
        for per_row in series.values()
        for v in per_row.values()
        if v is not None
    ]
    if not all_values:
        raise ReproError("all values are null")
    peak = max(all_values)
    series_width = max(len(str(s)) for s in series)
    lines = [title] if title else []
    for row in rows:
        lines.append(str(row))
        for name, per_row in series.items():
            value = per_row.get(row)
            if value is None:
                lines.append(f"  {str(name).ljust(series_width)} │ ·")
            else:
                bar = _bar(float(value), peak, width)
                lines.append(
                    f"  {str(name).ljust(series_width)} │{bar} {value:g}"
                )
    return "\n".join(lines)
