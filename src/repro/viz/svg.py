"""Dependency-free SVG chart writer.

Paper Figs. 5 and 6 are grouped bar charts from the BI front end; this
module regenerates them as standalone SVG files without matplotlib.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.olap.crosstab import Crosstab

_PALETTE = [
    "#4E79A7", "#F28E2B", "#59A14F", "#E15759",
    "#76B7B2", "#EDC948", "#B07AA1", "#9C755F",
]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


class SVGChart:
    """A grouped vertical bar chart written as SVG markup."""

    def __init__(
        self,
        title: str,
        groups: Sequence[str],
        series: Mapping[str, Sequence[float | None]],
        width: int = 720,
        height: int = 400,
    ):
        if not groups or not series:
            raise ReproError("nothing to chart")
        for name, values in series.items():
            if len(values) != len(groups):
                raise ReproError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(groups)} groups"
                )
        self.title = title
        self.groups = list(groups)
        self.series = {k: list(v) for k, v in series.items()}
        self.width = width
        self.height = height

    def render(self) -> str:
        """The SVG document as a string."""
        margin = {"top": 48, "right": 24, "bottom": 64, "left": 56}
        plot_w = self.width - margin["left"] - margin["right"]
        plot_h = self.height - margin["top"] - margin["bottom"]
        values = [
            v for series in self.series.values() for v in series if v is not None
        ]
        peak = max(values) if values else 1.0
        peak = peak if peak > 0 else 1.0

        n_groups = len(self.groups)
        n_series = len(self.series)
        group_w = plot_w / n_groups
        bar_w = group_w * 0.8 / n_series

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif">',
            f'<text x="{self.width / 2}" y="24" text-anchor="middle" '
            f'font-size="16">{_escape(self.title)}</text>',
        ]
        # y axis with 4 gridlines
        for i in range(5):
            level = peak * i / 4
            y = margin["top"] + plot_h * (1 - i / 4)
            parts.append(
                f'<line x1="{margin["left"]}" y1="{y:.1f}" '
                f'x2="{self.width - margin["right"]}" y2="{y:.1f}" '
                f'stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{margin["left"] - 6}" y="{y + 4:.1f}" '
                f'text-anchor="end" font-size="10">{level:g}</text>'
            )
        # bars
        for s_index, (name, series) in enumerate(self.series.items()):
            colour = _PALETTE[s_index % len(_PALETTE)]
            for g_index, value in enumerate(series):
                if value is None:
                    continue
                bar_h = plot_h * float(value) / peak
                x = (
                    margin["left"]
                    + g_index * group_w
                    + group_w * 0.1
                    + s_index * bar_w
                )
                y = margin["top"] + plot_h - bar_h
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                    f'height="{bar_h:.1f}" fill="{colour}">'
                    f"<title>{_escape(name)} / "
                    f"{_escape(str(self.groups[g_index]))}: {value:g}</title>"
                    f"</rect>"
                )
        # x labels
        for g_index, group in enumerate(self.groups):
            x = margin["left"] + g_index * group_w + group_w / 2
            y = margin["top"] + plot_h + 16
            parts.append(
                f'<text x="{x:.1f}" y="{y}" text-anchor="middle" '
                f'font-size="10">{_escape(str(group))}</text>'
            )
        # legend
        legend_x = margin["left"]
        legend_y = self.height - 18
        for s_index, name in enumerate(self.series):
            colour = _PALETTE[s_index % len(_PALETTE)]
            parts.append(
                f'<rect x="{legend_x}" y="{legend_y - 10}" width="10" '
                f'height="10" fill="{colour}"/>'
            )
            parts.append(
                f'<text x="{legend_x + 14}" y="{legend_y}" font-size="11">'
                f"{_escape(str(name))}</text>"
            )
            legend_x += 14 + 7 * len(str(name)) + 18
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        """Write the SVG file and return its path."""
        path = Path(path)
        path.write_text(self.render(), encoding="utf-8")
        return path


def crosstab_to_svg(
    crosstab: Crosstab, title: str, path: str | Path | None = None
) -> str:
    """Render a crosstab (rows = x groups, columns = series) as SVG."""
    groups = [" / ".join(str(v) for v in key) for key in crosstab.row_keys]
    series = {}
    for col_key in crosstab.col_keys:
        name = " / ".join(str(v) for v in col_key)
        series[name] = [
            crosstab.cells.get((row_key, col_key)) for row_key in crosstab.row_keys
        ]
    chart = SVGChart(title, groups, series)
    markup = chart.render()
    if path is not None:
        Path(path).write_text(markup, encoding="utf-8")
    return markup
