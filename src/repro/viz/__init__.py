"""Visualisation (paper §IV, "Visualisation").

"The large number of dimensions in clinical settings can require
visualisation features for improved understanding."  Dependency-free
renderers: Unicode bar charts for the terminal (:mod:`repro.viz.bars`,
:mod:`repro.viz.histogram`), an SVG writer for files (:mod:`repro.viz.svg`)
— Figs 5 and 6 regenerate through these — and detection of patient groups
"at the edges of overlapping dimensions" (:mod:`repro.viz.overlap`).
"""

from repro.viz.bars import bar_chart, grouped_bar_chart
from repro.viz.heatmap import heatmap
from repro.viz.histogram import histogram
from repro.viz.lines import line_chart, sparkline
from repro.viz.svg import SVGChart, crosstab_to_svg
from repro.viz.overlap import OverlapGroup, edge_groups

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "heatmap",
    "histogram",
    "line_chart",
    "sparkline",
    "SVGChart",
    "crosstab_to_svg",
    "OverlapGroup",
    "edge_groups",
]
