"""Terminal line/sparkline charts for trajectories and trends.

The prediction component's natural display: a patient's measure over
visits, or a cohort trend over calendar years.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float | None]) -> str:
    """One-line mini chart; nulls render as spaces."""
    present = [float(v) for v in values if v is not None]
    if not present:
        raise ReproError("no values to chart")
    low, high = min(present), max(present)
    span = high - low
    out = []
    for value in values:
        if value is None:
            out.append(" ")
        elif span == 0:
            out.append(_SPARKS[3])
        else:
            index = int((float(value) - low) / span * (len(_SPARKS) - 1))
            out.append(_SPARKS[index])
    return "".join(out)


def line_chart(
    series: Mapping[str, Sequence[float | None]],
    labels: Sequence[object] | None = None,
    title: str = "",
    height: int = 8,
    width_per_point: int = 3,
) -> str:
    """Multi-series character plot (one glyph letter per series).

    All series must share a length; ``labels`` annotate the x axis.
    """
    if not series:
        raise ReproError("no series to chart")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ReproError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if n == 0:
        raise ReproError("series are empty")
    if labels is not None and len(labels) != n:
        raise ReproError(f"{len(labels)} labels for {n} points")

    present = [
        float(v) for values in series.values() for v in values if v is not None
    ]
    if not present:
        raise ReproError("all values are null")
    low, high = min(present), max(present)
    span = high - low if high > low else 1.0

    glyphs = {}
    for index, name in enumerate(series):
        glyphs[name] = chr(ord("A") + index) if len(series) > 1 else "●"

    grid = [[" "] * (n * width_per_point) for __ in range(height)]
    for name, values in series.items():
        glyph = glyphs[name]
        for i, value in enumerate(values):
            if value is None:
                continue
            level = int((float(value) - low) / span * (height - 1) + 0.5)
            row = height - 1 - level
            grid[row][i * width_per_point] = glyph

    lines = [title] if title else []
    lines.append(f"{high:g}".rjust(8))
    for row in grid:
        lines.append("        |" + "".join(row))
    lines.append(f"{low:g}".rjust(8) + " +" + "-" * (n * width_per_point))
    if labels is not None:
        axis = "         "
        for label in labels:
            axis += str(label)[: width_per_point - 1].ljust(width_per_point)
        lines.append(axis)
    if len(series) > 1:
        lines.append(
            "legend: " + ", ".join(f"{glyph}={name}" for name, glyph in glyphs.items())
        )
    return "\n".join(lines)
