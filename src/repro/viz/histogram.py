"""Terminal histograms of numeric columns."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError
from repro.viz.bars import bar_chart


def histogram(
    values: Sequence[float | None],
    bins: int = 10,
    title: str = "",
    width: int = 40,
) -> str:
    """Equal-width histogram rendered as a bar chart.

    Nulls are dropped; the bin labels show the interval bounds.
    """
    present = [float(v) for v in values if v is not None]
    if not present:
        raise ReproError("no non-null values to bin")
    if bins < 1:
        raise ReproError("bins must be >= 1")
    low, high = min(present), max(present)
    if low == high:
        return bar_chart({f"{low:g}": len(present)}, title=title, width=width)
    step = (high - low) / bins
    counts = [0] * bins
    for v in present:
        index = min(int((v - low) / step), bins - 1)
        counts[index] += 1
    labels = {
        f"[{low + i * step:.3g}, {low + (i + 1) * step:.3g})": counts[i]
        for i in range(bins)
    }
    return bar_chart(labels, title=title, width=width)
