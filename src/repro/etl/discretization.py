"""Discretisation of continuous clinical measures.

Two routes, exactly as the paper prescribes (§IV.1): a *clinical scheme*
provided by a domain expert ("in most circumstances the discretisation
criteria is determined by clinicians"), or an *algorithmic* discretiser
when expertise is unavailable.  The algorithmic ones follow Kotsiantis &
Kanellopoulos (the paper's reference [17]): the generic four-step loop of
sort → evaluate cut point → split/merge → terminate, instantiated as

* :class:`EqualWidthDiscretizer` / :class:`EqualFrequencyDiscretizer`
  (unsupervised),
* :class:`MDLPDiscretizer` — Fayyad–Irani top-down entropy splitting with
  the MDL stopping criterion (supervised),
* :class:`ChiMergeDiscretizer` — Kerber bottom-up interval merging by
  chi-square independence (supervised).

All of them produce a :class:`DiscretizationScheme`, the same object a
clinician-supplied scheme uses, so downstream code never cares which route
produced the bins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DiscretizationError


@dataclass(frozen=True)
class Bin:
    """One interval of a scheme: [low, high) with a human-readable label.

    ``low=None`` means open on the left (``< high``); ``high=None`` open on
    the right (``>= low``).  Bounds are inclusive-low / exclusive-high so
    adjacent bins tile the line without overlap.
    """

    label: str
    low: float | None
    high: float | None

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls in this bin."""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value >= self.high:
            return False
        return True

    def describe(self) -> str:
        """Render as the paper writes them, e.g. ``40-60``, ``<40``, ``>=7``."""
        if self.low is None and self.high is None:
            return "any"
        if self.low is None:
            return f"<{_fmt(self.high)}"
        if self.high is None:
            return f">={_fmt(self.low)}"
        return f"{_fmt(self.low)}-{_fmt(self.high)}"


def _fmt(value: float | None) -> str:
    if value is None:
        return "?"
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


class DiscretizationScheme:
    """An ordered, non-overlapping set of bins covering the real line.

    Construct directly from bins, or use :meth:`from_cut_points` which is
    how the paper's Table I schemes are expressed (a list of thresholds plus
    optional labels).
    """

    def __init__(self, name: str, bins: Sequence[Bin]):
        if not bins:
            raise DiscretizationError(f"scheme {name!r} has no bins")
        self.name = name
        self.bins = list(bins)
        self._validate()

    @classmethod
    def from_cut_points(
        cls,
        name: str,
        cut_points: Sequence[float],
        labels: Sequence[str] | None = None,
    ) -> "DiscretizationScheme":
        """Build ``len(cut_points)+1`` bins from ascending thresholds.

        With ``cut_points=[40, 60, 80]`` the bins are ``<40``, ``40-60``,
        ``60-80`` and ``>=80``.  ``labels`` (when given) must have exactly
        one entry per bin; otherwise the interval renderings are used.
        """
        points = list(cut_points)
        if points != sorted(points) or len(set(points)) != len(points):
            raise DiscretizationError(
                f"cut points for {name!r} must be strictly ascending, "
                f"got {points}"
            )
        if not points:
            raise DiscretizationError(f"scheme {name!r} needs at least one cut point")
        edges: list[tuple[float | None, float | None]] = []
        edges.append((None, points[0]))
        for low, high in zip(points, points[1:]):
            edges.append((low, high))
        edges.append((points[-1], None))
        if labels is not None and len(labels) != len(edges):
            raise DiscretizationError(
                f"scheme {name!r} has {len(edges)} bins but {len(labels)} labels"
            )
        bins = []
        for i, (low, high) in enumerate(edges):
            placeholder = Bin("", low, high)
            label = labels[i] if labels is not None else placeholder.describe()
            bins.append(Bin(label, low, high))
        return cls(name, bins)

    def _validate(self) -> None:
        for first, second in zip(self.bins, self.bins[1:]):
            if first.high is None or second.low is None or first.high != second.low:
                raise DiscretizationError(
                    f"scheme {self.name!r}: bins {first.label!r} and "
                    f"{second.label!r} do not tile contiguously"
                )
        labels = [b.label for b in self.bins]
        if len(set(labels)) != len(labels):
            raise DiscretizationError(
                f"scheme {self.name!r} has duplicate bin labels"
            )

    @property
    def labels(self) -> list[str]:
        """Bin labels in interval order."""
        return [b.label for b in self.bins]

    @property
    def cut_points(self) -> list[float]:
        """The interior thresholds."""
        return [b.high for b in self.bins if b.high is not None]

    def assign(self, value: float | None) -> str | None:
        """Label for one value (``None`` stays ``None``)."""
        if value is None:
            return None
        if isinstance(value, float) and math.isnan(value):
            return None
        for bin_ in self.bins:
            if bin_.contains(float(value)):
                return bin_.label
        raise DiscretizationError(
            f"scheme {self.name!r} does not cover value {value!r}"
        )

    def assign_many(self, values: Sequence[float | None]) -> list[str | None]:
        """Vector form of :meth:`assign`."""
        return [self.assign(v) for v in values]

    def occupancy(self, values: Sequence[float | None]) -> dict[str, int]:
        """How many of ``values`` land in each bin (label → count)."""
        counts = {label: 0 for label in self.labels}
        for v in values:
            label = self.assign(v)
            if label is not None:
                counts[label] += 1
        return counts

    def __repr__(self) -> str:
        parts = ", ".join(f"{b.label}={b.describe()}" for b in self.bins)
        return f"DiscretizationScheme({self.name!r}: {parts})"


def discretize_column(
    values: Sequence[float | None], scheme: DiscretizationScheme
) -> list[str | None]:
    """Convenience wrapper used by the ETL pipeline."""
    return scheme.assign_many(values)


# ---------------------------------------------------------------------------
# Algorithmic discretisers
# ---------------------------------------------------------------------------

def _present(values: Sequence[float | None]) -> np.ndarray:
    data = np.array(
        [v for v in values if v is not None and not (isinstance(v, float) and math.isnan(v))],
        dtype=np.float64,
    )
    if len(data) == 0:
        raise DiscretizationError("cannot fit a discretiser on all-null data")
    return data


class EqualWidthDiscretizer:
    """Unsupervised: ``n_bins`` intervals of equal width over the range."""

    def __init__(self, n_bins: int = 4):
        if n_bins < 2:
            raise DiscretizationError("need at least 2 bins")
        self.n_bins = n_bins

    def fit(self, values: Sequence[float | None], name: str = "equal_width") -> DiscretizationScheme:
        """Compute cut points and return the resulting scheme."""
        data = _present(values)
        low, high = float(data.min()), float(data.max())
        if low == high:
            raise DiscretizationError(
                f"all values equal ({low}); nothing to discretise"
            )
        width = (high - low) / self.n_bins
        cuts: list[float] = []
        for i in range(1, self.n_bins):
            cut = low + width * i
            # Guard against float underflow on pathologically narrow ranges,
            # which would otherwise produce duplicate (non-ascending) cuts.
            if (not cuts or cut > cuts[-1]) and low < cut < high:
                cuts.append(cut)
        if not cuts:
            raise DiscretizationError(
                f"value range [{low}, {high}] too narrow to split into "
                f"{self.n_bins} bins"
            )
        return DiscretizationScheme.from_cut_points(name, cuts)


class EqualFrequencyDiscretizer:
    """Unsupervised: cut points at quantiles so bins hold equal counts."""

    def __init__(self, n_bins: int = 4):
        if n_bins < 2:
            raise DiscretizationError("need at least 2 bins")
        self.n_bins = n_bins

    def fit(self, values: Sequence[float | None], name: str = "equal_frequency") -> DiscretizationScheme:
        """Compute quantile cut points and return the resulting scheme."""
        data = np.sort(_present(values))
        quantiles = [i / self.n_bins for i in range(1, self.n_bins)]
        cuts: list[float] = []
        for q in quantiles:
            cut = float(np.quantile(data, q))
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        if not cuts:
            raise DiscretizationError(
                "data too concentrated for equal-frequency binning"
            )
        return DiscretizationScheme.from_cut_points(name, cuts)


def _entropy(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


class MDLPDiscretizer:
    """Supervised top-down splitting (Fayyad & Irani 1993).

    Recursively picks the boundary minimising class-entropy and accepts it
    only when information gain beats the minimum-description-length cost —
    the classic stopping rule, so bin count adapts to the data.
    """

    def __init__(self, max_depth: int = 8):
        self.max_depth = max_depth

    def fit(
        self,
        values: Sequence[float | None],
        classes: Sequence[object],
        name: str = "mdlp",
    ) -> DiscretizationScheme:
        """Fit on (value, class) pairs; nulls in values are skipped."""
        pairs = [
            (float(v), c)
            for v, c in zip(values, classes)
            if v is not None and not (isinstance(v, float) and math.isnan(v))
        ]
        if not pairs:
            raise DiscretizationError("cannot fit MDLP on all-null data")
        pairs.sort(key=lambda p: p[0])
        xs = np.array([p[0] for p in pairs])
        ys = np.array([str(p[1]) for p in pairs], dtype=object)
        cuts: list[float] = []
        self._split(xs, ys, cuts, depth=0)
        if not cuts:
            # No split passed MDL: fall back to the single best boundary so a
            # scheme is always produced (callers can inspect bin count).
            cut = self._best_cut(xs, ys)
            if cut is None:
                raise DiscretizationError(
                    "MDLP found no admissible cut (single class or constant values)"
                )
            cuts = [cut]
        return DiscretizationScheme.from_cut_points(name, sorted(set(cuts)))

    def _best_cut(self, xs: np.ndarray, ys: np.ndarray) -> float | None:
        best_cut, best_entropy = None, float("inf")
        boundaries = self._candidate_boundaries(xs, ys)
        n = len(xs)
        for cut in boundaries:
            left = ys[xs < cut]
            right = ys[xs >= cut]
            weighted = (len(left) * _entropy(left) + len(right) * _entropy(right)) / n
            if weighted < best_entropy:
                best_entropy = weighted
                best_cut = cut
        return best_cut

    @staticmethod
    def _candidate_boundaries(xs: np.ndarray, ys: np.ndarray) -> list[float]:
        # Boundary points: midpoints between adjacent values whose class
        # changes (Fayyad's result: optimal cuts lie there).
        cuts = []
        for i in range(1, len(xs)):
            if xs[i] != xs[i - 1] and ys[i] != ys[i - 1]:
                cuts.append((float(xs[i]) + float(xs[i - 1])) / 2.0)
        return sorted(set(cuts))

    def _split(self, xs: np.ndarray, ys: np.ndarray, cuts: list[float], depth: int) -> None:
        if depth >= self.max_depth or len(xs) < 4:
            return
        cut = self._best_cut(xs, ys)
        if cut is None:
            return
        left_mask = xs < cut
        left_y, right_y = ys[left_mask], ys[~left_mask]
        n = len(ys)
        gain = _entropy(ys) - (
            len(left_y) * _entropy(left_y) + len(right_y) * _entropy(right_y)
        ) / n
        k = len(np.unique(ys))
        k1 = len(np.unique(left_y))
        k2 = len(np.unique(right_y))
        delta = math.log2(3**k - 2) - (
            k * _entropy(ys) - k1 * _entropy(left_y) - k2 * _entropy(right_y)
        )
        threshold = (math.log2(n - 1) + delta) / n
        if gain <= threshold:
            return
        cuts.append(cut)
        self._split(xs[left_mask], left_y, cuts, depth + 1)
        self._split(xs[~left_mask], right_y, cuts, depth + 1)


class ChiMergeDiscretizer:
    """Supervised bottom-up merging (Kerber 1992).

    Starts from one interval per distinct value and repeatedly merges the
    adjacent pair with the lowest chi-square statistic until it exceeds the
    significance threshold or ``max_bins`` is reached.
    """

    def __init__(self, max_bins: int = 6, chi_threshold: float | None = None):
        if max_bins < 2:
            raise DiscretizationError("need at least 2 bins")
        self.max_bins = max_bins
        self.chi_threshold = chi_threshold

    def fit(
        self,
        values: Sequence[float | None],
        classes: Sequence[object],
        name: str = "chimerge",
    ) -> DiscretizationScheme:
        """Fit on (value, class) pairs; nulls in values are skipped."""
        pairs = [
            (float(v), str(c))
            for v, c in zip(values, classes)
            if v is not None and not (isinstance(v, float) and math.isnan(v))
        ]
        if not pairs:
            raise DiscretizationError("cannot fit ChiMerge on all-null data")
        class_labels = sorted({c for _, c in pairs})
        # intervals: list of (low_value, {class: count})
        by_value: dict[float, dict[str, int]] = {}
        for v, c in pairs:
            by_value.setdefault(v, {k: 0 for k in class_labels})
            by_value[v][c] += 1
        intervals = sorted(by_value.items())
        if len(intervals) < 2:
            raise DiscretizationError("constant values; nothing to discretise")

        while len(intervals) > self.max_bins or (
            self.chi_threshold is not None and len(intervals) > 2
        ):
            chis = [
                self._chi2(intervals[i][1], intervals[i + 1][1], class_labels)
                for i in range(len(intervals) - 1)
            ]
            min_chi = min(chis)
            if (
                len(intervals) <= self.max_bins
                and self.chi_threshold is not None
                and min_chi > self.chi_threshold
            ):
                break
            i = chis.index(min_chi)
            low, counts = intervals[i]
            _, next_counts = intervals[i + 1]
            merged = {k: counts[k] + next_counts[k] for k in class_labels}
            intervals[i : i + 2] = [(low, merged)]
            if len(intervals) <= 2:
                break

        cuts = [low for low, _ in intervals[1:]]
        return DiscretizationScheme.from_cut_points(name, cuts)

    @staticmethod
    def _chi2(a: dict[str, int], b: dict[str, int], labels: list[str]) -> float:
        total_a = sum(a.values())
        total_b = sum(b.values())
        total = total_a + total_b
        chi = 0.0
        for label in labels:
            col_total = a[label] + b[label]
            if col_total == 0:
                continue
            for counts, row_total in ((a, total_a), (b, total_b)):
                expected = row_total * col_total / total
                if expected > 0:
                    chi += (counts[label] - expected) ** 2 / expected
        return chi
