"""Incremental ETL: transform only an appended batch, matching a full re-run.

Full warehouse rebuilds re-run the whole pipeline over the combined
history on every ingest.  For the delta-folding publish path
(DESIGN.md §"Incremental maintenance") the appended rows must instead be
transformed *alone* — but produce byte-identical output to what a full
re-run over history+batch would give them.  Most steps are row-local
(discretise, derive) and replay directly; three steps carry cross-row
state that this module captures at every full build and rolls forward:

* **Deduplicate** — the set of key tuples ever seen; a delta row whose
  key already occurred is dropped (first occurrence wins, and historical
  rows always precede the batch).
* **Cleaning** — fill statistics (median/mean/mode) are computed over the
  whole column in a full run.  The state keeps the post-range-rule
  non-null values and the fill value actually applied; a batch that
  would *shift* the fill while historically-filled rows exist cannot be
  replayed incrementally (those rows would re-fill differently in a full
  run) and reports a fallback instead.
* **Cardinality** — per-patient visit counts and max dates; a delta row
  dated before a patient's latest known visit would renumber history, so
  it too forces a fallback.

A pipeline whose shape doesn't fit (unknown step types, row-dropping
cleaning policies, steps out of the dedup → clean → row-local →
cardinality order) simply captures no state, and every ingest takes the
full-rebuild path — correctness never depends on eligibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import CleaningError, ETLError
from repro.etl.cleaning import MissingValuePolicy, _fill_value, clean_table
from repro.etl.pipeline import (
    INGEST_INDEX,
    CardinalityStep,
    CleaningStep,
    DeduplicateStep,
    DeriveStep,
    DiscretizationStep,
    Pipeline,
    TransformStep,
)
from repro.etl.quarantine import QuarantinedRow
from repro.tabular.column import Column
from repro.tabular.table import Table


@dataclass
class _FillState:
    """Cross-batch fill statistics for one cleaned column."""

    policy: MissingValuePolicy
    constant: object
    #: post-range-rule non-null values, in encounter order
    values: list[object]
    #: how many nulls have been filled across all builds so far
    filled: int
    #: the fill value those rows received (None while nothing was filled)
    fill: object


@dataclass
class EtlDeltaState:
    """Everything a delta run needs to match a full pipeline re-run."""

    steps: list[TransformStep]
    dedup_keys: list[str] | None
    seen: set[tuple] | None
    fills: dict[str, _FillState]
    range_step: CleaningStep | None
    row_local: list[TransformStep]
    cardinality: CardinalityStep | None
    #: patient -> (visit count, latest visit date)
    visits: dict[object, tuple[int, object]] = field(default_factory=dict)


@dataclass
class EtlDeltaOutcome:
    """Result of one delta attempt (commit via :func:`commit_delta`)."""

    #: transformed batch rows (None when the attempt fell back)
    table: Table | None = None
    #: why the batch cannot be replayed incrementally (None on success)
    fallback_reason: str | None = None
    #: dead-letter entries for rows the row-local steps rejected
    quarantined: list[QuarantinedRow] = field(default_factory=list)
    #: per-output-row position in the input batch
    kept_indices: list[int] = field(default_factory=list)
    audit: str = ""
    # -- state updates, applied only on commit --
    new_keys: set[tuple] = field(default_factory=set)
    new_values: dict[str, list[object]] = field(default_factory=dict)
    new_fills: dict[str, tuple[int, object]] = field(default_factory=dict)
    new_visits: dict[object, tuple[int, object]] = field(default_factory=dict)


def capture_etl_state(
    pipeline: Pipeline, source: Table, transformed: Table
) -> tuple[EtlDeltaState | None, str | None]:
    """Capture delta state after a full build; ``(None, reason)`` if ineligible.

    ``source`` is the raw table the pipeline ran over (quarantined rows
    included — they participate in deduplication and fill statistics on
    every full rebuild, so the state must mirror that); ``transformed``
    is the pipeline output *before* any load-stage pruning (cardinality
    ordinals are assigned there, prune or not).
    """
    shape, reason = _classify(pipeline.steps)
    if shape is None:
        return None, reason
    dedup, cleaning, row_local, cardinality = shape

    dedup_keys: list[str] | None = None
    seen: set[tuple] | None = None
    work = source
    if dedup is not None:
        dedup_keys = list(dedup.keys) or list(source.column_names)
        columns = [source.column(k).to_list() for k in dedup_keys]
        seen = set(zip(*columns)) if source.num_rows else set()
        work = source.distinct(*dedup_keys)

    fills: dict[str, _FillState] = {}
    if cleaning is not None and cleaning.missing:
        ranged, _ = clean_table(
            work, missing={}, range_rules=cleaning.range_rules
        )
        for name, policy in cleaning.missing.items():
            policy = MissingValuePolicy(policy)
            if policy is MissingValuePolicy.KEEP:
                continue
            column = ranged.column(name)
            values = [v for v in column.to_list() if v is not None]
            filled = int(column.null_count)
            fill = None
            if filled:
                try:
                    fill = _fill_value(
                        column, policy, cleaning.constants.get(name)
                    )
                except CleaningError as exc:
                    return None, f"fill statistic for {name!r} failed: {exc}"
            fills[name] = _FillState(
                policy, cleaning.constants.get(name), values, filled, fill
            )

    state = EtlDeltaState(
        steps=list(pipeline.steps),
        dedup_keys=dedup_keys,
        seen=seen,
        fills=fills,
        range_step=cleaning,
        row_local=row_local,
        cardinality=cardinality,
    )
    if cardinality is not None:
        patients = transformed.column(cardinality.patient_key).to_list()
        dates = transformed.column(cardinality.date_column).to_list()
        visits: dict[object, tuple[int, object]] = {}
        for p, d in zip(patients, dates):
            count, latest = visits.get(p, (0, None))
            visits[p] = (count + 1, d if latest is None or d > latest else latest)
        state.visits = visits
    return state, None


def _classify(steps: Sequence[TransformStep]):
    """Validate the dedup → clean → row-local → cardinality shape."""
    dedup: DeduplicateStep | None = None
    cleaning: CleaningStep | None = None
    row_local: list[TransformStep] = []
    cardinality: CardinalityStep | None = None
    for step in steps:
        if isinstance(step, DeduplicateStep):
            if dedup is not None or cleaning is not None or row_local or cardinality:
                return None, "deduplicate must be the first step"
            dedup = step
        elif isinstance(step, CleaningStep):
            if cleaning is not None or row_local or cardinality:
                return None, "cleaning must precede discretise/derive steps"
            for policy in step.missing.values():
                if MissingValuePolicy(policy) is MissingValuePolicy.DROP_ROW:
                    return None, "DROP_ROW cleaning policies drop history"
            for rule in step.range_rules:
                if rule.action == "drop_row":
                    return None, "drop_row range rules drop history"
            cleaning = step
        elif isinstance(step, (DiscretizationStep, DeriveStep)):
            if cardinality is not None:
                return None, "row-local steps after cardinality"
            row_local.append(step)
        elif isinstance(step, CardinalityStep):
            if cardinality is not None:
                return None, "more than one cardinality step"
            cardinality = step
        else:
            return None, f"step {step.name!r} has no incremental form"
    return (dedup, cleaning, row_local, cardinality), None


def run_delta(
    state: EtlDeltaState,
    batch: Table,
    *,
    resilient: bool = False,
    batch_tag: str = "",
) -> EtlDeltaOutcome:
    """Transform one appended batch against the captured state.

    Pure with respect to ``state``: all cross-batch bookkeeping lands in
    the returned outcome and is only folded in by :func:`commit_delta`
    after every downstream step of the ingest succeeded.  With
    ``resilient=True`` rows the row-local steps reject divert to
    ``outcome.quarantined`` (mirroring the pipeline's row-level error
    mode); otherwise the first bad row raises, like a strict run.
    """
    outcome = EtlDeltaOutcome()
    audit: list[str] = []
    original = batch
    work = batch.with_column(
        INGEST_INDEX, list(range(batch.num_rows)), dtype="int"
    )

    # -- deduplicate against all history, then within the batch ---------
    if state.seen is not None:
        keys = state.dedup_keys or []
        columns = [work.column(k).to_list() for k in keys]
        kept: list[int] = []
        batch_new: set[tuple] = set()
        for i in range(work.num_rows):
            key = tuple(values[i] for values in columns)
            if key in state.seen or key in batch_new:
                continue
            batch_new.add(key)
            kept.append(i)
        dropped = work.num_rows - len(kept)
        if dropped:
            import numpy as np

            work = work.take(np.array(kept, dtype=np.int64))
        outcome.new_keys = batch_new
        audit.append(f"deduplicate: dropped {dropped} against history+batch")

    # -- cleaning: range rules, then history-aware fills ----------------
    if state.range_step is not None:
        work, report = clean_table(
            work, missing={}, range_rules=state.range_step.range_rules
        )
        audit.append(f"clean(range): {report.summary()}")
        for name, fstate in state.fills.items():
            column = work.column(name)
            fresh = [v for v in column.to_list() if v is not None]
            nulls = int(column.null_count)
            outcome.new_values[name] = fresh
            combined_fill = None
            if fstate.filled or nulls:
                combined = Column.from_values(
                    fstate.values + fresh, dtype=column.dtype
                )
                try:
                    combined_fill = _fill_value(
                        combined, fstate.policy, fstate.constant
                    )
                except CleaningError as exc:
                    outcome.fallback_reason = (
                        f"fill statistic for {name!r} failed: {exc}"
                    )
                    return outcome
            if fstate.filled and combined_fill != fstate.fill:
                # historically-filled rows would re-fill differently in a
                # full run — not expressible as an append
                outcome.fallback_reason = (
                    f"fill value for {name!r} drifted "
                    f"({fstate.fill!r} -> {combined_fill!r})"
                )
                return outcome
            if nulls:
                work = work.with_column(name, column.fill_null(combined_fill))
                audit.append(f"clean(fill): {name}×{nulls} with {combined_fill!r}")
            outcome.new_fills[name] = (
                fstate.filled + nulls,
                combined_fill if (fstate.filled or nulls) else fstate.fill,
            )

    # -- row-local steps (discretise / derive) --------------------------
    for step in state.row_local:
        if resilient:
            work, detail, failed = step.apply_resilient(work)
            _quarantine_failures(outcome, original, step.name, failed, batch_tag)
        else:
            work, detail = step.apply(work)
        audit.append(f"{step.name}: {detail}")

    # -- cardinality: extend per-patient ordinals ------------------------
    if state.cardinality is not None:
        card = state.cardinality
        patients = work.column(card.patient_key)
        dates = work.column(card.date_column)
        if resilient:
            kept = []
            failed = []
            for i in range(work.num_rows):
                if not patients.valid[i]:
                    problem = f"null {card.patient_key!r}"
                elif not dates.valid[i]:
                    problem = f"null {card.date_column!r}"
                else:
                    kept.append(i)
                    continue
                failed.append(
                    (work.row(i),
                     ETLError(f"cannot assign cardinality: {problem}"))
                )
            if failed:
                import numpy as np

                _quarantine_failures(
                    outcome, original, card.name, failed, batch_tag
                )
                work = work.take(np.array(kept, dtype=np.int64))
                patients = work.column(card.patient_key)
                dates = work.column(card.date_column)
        p_values = patients.to_list()
        d_values = dates.to_list()
        if any(v is None for v in p_values) or any(v is None for v in d_values):
            raise ETLError(
                f"cannot assign cardinality: null values in "
                f"{card.patient_key!r}/{card.date_column!r}; clean the data first"
            )
        per_patient: dict[object, list[tuple[object, int]]] = {}
        for i, (p, d) in enumerate(zip(p_values, d_values)):
            count, latest = state.visits.get(p, (0, None))
            if latest is not None and d < latest:
                # a back-dated visit renumbers the patient's history
                outcome.fallback_reason = (
                    f"visit for patient {p!r} predates their latest known "
                    f"visit ({d} < {latest})"
                )
                return outcome
            per_patient.setdefault(p, []).append((d, i))
        ordinal = [0] * work.num_rows
        for p, entries in per_patient.items():
            count, latest = state.visits.get(p, (0, None))
            entries.sort(key=lambda pair: (pair[0], pair[1]))
            for n, (d, i) in enumerate(entries, start=count + 1):
                ordinal[i] = n
                latest = d if latest is None or d > latest else latest
            outcome.new_visits[p] = (count + len(entries), latest)
        work = work.with_column(card.output, ordinal, dtype="int")
        audit.append(
            f"cardinality: {work.num_rows} records over "
            f"{len(per_patient)} patients (extended)"
        )

    outcome.kept_indices = [
        int(v) for v in work.column(INGEST_INDEX).to_list()  # type: ignore[arg-type]
    ]
    outcome.table = work.drop(INGEST_INDEX)
    outcome.audit = "; ".join(audit)
    return outcome


def _quarantine_failures(
    outcome: EtlDeltaOutcome,
    original: Table,
    step_name: str,
    failed: list[tuple[dict, BaseException]],
    batch_tag: str,
) -> None:
    for row, error in failed:
        index = int(row.get(INGEST_INDEX, -1))  # type: ignore[arg-type]
        source_row = (
            original.row(index)
            if index >= 0
            else {k: v for k, v in row.items() if k != INGEST_INDEX}
        )
        outcome.quarantined.append(
            QuarantinedRow.from_error(
                source_row, step_name, error,
                batch=batch_tag, source_index=index,
            )
        )


def commit_delta(state: EtlDeltaState, outcome: EtlDeltaOutcome) -> None:
    """Fold a successful delta's bookkeeping into the state (O(batch))."""
    if outcome.fallback_reason is not None:  # pragma: no cover - guard
        raise ETLError("cannot commit a fallen-back delta")
    if state.seen is not None:
        state.seen.update(outcome.new_keys)
    for name, fresh in outcome.new_values.items():
        state.fills[name].values.extend(fresh)
    for name, (filled, fill) in outcome.new_fills.items():
        state.fills[name].filled = filled
        state.fills[name].fill = fill
    state.visits.update(outcome.new_visits)
