"""Temporal abstraction: qualitative descriptions of time-stamped measures.

Following Stacey & McGregor (the paper's reference [18]), two abstraction
families are provided:

* **State abstraction** — map each measurement to a qualitative state via a
  discretisation scheme, then merge consecutive equal states into
  intervals ("FBG was *Diabetic* from 2009-03 to 2011-07").
* **Trend abstraction** — classify the slope between consecutive
  measurements as increasing / steady / decreasing, merged the same way.

The paper stresses that "it is important to ensure temporal abstractions do
not conflict with each other"; :func:`find_conflicts` detects overlapping
intervals that assign different states for the same (patient, variable)
pair from two abstraction runs.

Conflicts are *recorded*, not raised: a same-day pair of contradictory
readings used to produce overlapping intervals that aborted downstream
conflict checking on the first overlap; both abstraction classes now
resolve the contradiction deterministically (first reading wins) and
report it through an optional ``conflict_sink``, and
:func:`quarantine_conflicts` routes any detected conflict pairs into the
ingest dead-letter store as structured entries.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Sequence

from repro.errors import TemporalAbstractionError
from repro.etl.discretization import DiscretizationScheme
from repro.etl.quarantine import QuarantinedRow


@dataclass(frozen=True)
class Interval:
    """One abstracted span: a state held from ``start`` to ``end`` inclusive."""

    variable: str
    state: str
    start: _dt.date
    end: _dt.date
    #: number of raw measurements supporting the interval
    support: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TemporalAbstractionError(
                f"interval for {self.variable!r} ends ({self.end}) before it "
                f"starts ({self.start})"
            )

    @property
    def duration_days(self) -> int:
        """Length of the interval in days."""
        return (self.end - self.start).days

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two spans share at least one day."""
        return self.start <= other.end and other.start <= self.end


@dataclass(frozen=True)
class TemporalConflict:
    """Two abstracted intervals telling contradictory stories.

    The structured record of a conflict — what used to surface only as an
    exception (or not at all).  :func:`quarantine_conflicts` turns these
    into dead-letter entries so the ingest workflow (inspect → repair →
    re-drive) applies to temporal contradictions too.
    """

    variable: str
    first: Interval
    second: Interval
    patient: object | None = None

    @property
    def overlap_start(self) -> _dt.date:
        """First shared day of the contradiction."""
        return max(self.first.start, self.second.start)

    @property
    def overlap_end(self) -> _dt.date:
        """Last shared day of the contradiction."""
        return min(self.first.end, self.second.end)

    def describe(self) -> str:
        """One-line human summary."""
        who = f"patient {self.patient} " if self.patient is not None else ""
        return (
            f"{who}{self.variable!r}: {self.first.state!r} vs "
            f"{self.second.state!r} over {self.overlap_start}..{self.overlap_end}"
        )

    def to_row(self) -> dict:
        """Flat dict form, the payload of the quarantine entry."""
        return {
            "patient": self.patient,
            "variable": self.variable,
            "state_first": self.first.state,
            "state_second": self.second.state,
            "overlap_start": self.overlap_start,
            "overlap_end": self.overlap_end,
            "support_first": self.first.support,
            "support_second": self.second.support,
        }


def quarantine_conflicts(conflicts, sink, *, batch: str = "") -> list[QuarantinedRow]:
    """Route temporal conflicts into the ingest dead-letter store.

    ``conflicts`` may hold :class:`TemporalConflict` objects,
    ``(interval, interval)`` pairs (:func:`find_conflicts` output) or
    ``(patient, interval, interval)`` triples
    (:func:`cross_measure_conflicts` output).  Each becomes a structured
    :class:`~repro.etl.quarantine.QuarantinedRow` with ``step="temporal"``;
    entries are added to ``sink`` (any quarantine sink, or ``None`` to
    just convert) and returned.
    """
    entries = []
    for item in conflicts:
        if isinstance(item, TemporalConflict):
            conflict = item
        elif len(item) == 3:
            patient, a, b = item
            conflict = TemporalConflict(a.variable, a, b, patient=patient)
        else:
            a, b = item
            conflict = TemporalConflict(a.variable, a, b)
        error = TemporalAbstractionError(conflict.describe())
        entry = QuarantinedRow.from_error(
            conflict.to_row(), "temporal", error, batch=batch
        )
        entries.append(entry)
        if sink is not None:
            sink.add(entry)
    return entries


def _check_series(
    timestamps: Sequence[_dt.date], values: Sequence[object]
) -> list[tuple[_dt.date, object]]:
    if len(timestamps) != len(values):
        raise TemporalAbstractionError(
            f"{len(timestamps)} timestamps but {len(values)} values"
        )
    points = [
        (t, v) for t, v in zip(timestamps, values) if t is not None and v is not None
    ]
    points.sort(key=lambda p: p[0])
    return points


class StateAbstraction:
    """State abstraction driven by a discretisation scheme."""

    def __init__(self, variable: str, scheme: DiscretizationScheme,
                 min_support: int = 1):
        self.variable = variable
        self.scheme = scheme
        self.min_support = min_support

    def abstract(
        self,
        timestamps: Sequence[_dt.date],
        values: Sequence[float | None],
        conflict_sink: list | None = None,
    ) -> list[Interval]:
        """Merge consecutive equal qualitative states into intervals.

        Intervals supported by fewer than ``min_support`` raw measurements
        are dropped (persistence filtering): a single spurious reading
        should not create a clinical "episode".

        Two same-day readings assigning different states are a
        contradiction: previously they produced overlapping intervals that
        aborted downstream conflict checking.  The first reading of the
        day now wins, and the contradiction is appended to
        ``conflict_sink`` (when given) as a :class:`TemporalConflict` —
        feed the sink to :func:`quarantine_conflicts` to dead-letter it.
        """
        points = self._resolve_same_day(
            _check_series(timestamps, values), conflict_sink
        )
        if not points:
            return []
        intervals: list[Interval] = []
        current_state: str | None = None
        start = end = points[0][0]
        support = 0
        for when, value in points:
            state = self.scheme.assign(float(value))  # type: ignore[arg-type]
            if state == current_state:
                end = when
                support += 1
            else:
                if current_state is not None:
                    intervals.append(
                        Interval(self.variable, current_state, start, end, support)
                    )
                current_state = state
                start = end = when
                support = 1
        if current_state is not None:
            intervals.append(
                Interval(self.variable, current_state, start, end, support)
            )
        return [iv for iv in intervals if iv.support >= self.min_support]

    def _resolve_same_day(
        self,
        points: list[tuple[_dt.date, object]],
        sink: list | None,
    ) -> list[tuple[_dt.date, object]]:
        kept: list[tuple[_dt.date, object, str]] = []
        for when, value in points:
            state = self.scheme.assign(float(value))  # type: ignore[arg-type]
            if kept and kept[-1][0] == when:
                prior = kept[-1][2]
                if state != prior and sink is not None:
                    sink.append(
                        TemporalConflict(
                            self.variable,
                            Interval(self.variable, prior, when, when),
                            Interval(self.variable, state, when, when),
                        )
                    )
                continue
            kept.append((when, value, state))
        return [(when, value) for when, value, __ in kept]


class TrendAbstraction:
    """Trend abstraction: increasing / steady / decreasing per-unit-time.

    ``tolerance`` is the absolute slope (value units per day) below which a
    segment is *steady*.
    """

    INCREASING = "increasing"
    STEADY = "steady"
    DECREASING = "decreasing"

    def __init__(self, variable: str, tolerance: float = 0.0):
        if tolerance < 0:
            raise TemporalAbstractionError("tolerance must be non-negative")
        self.variable = variable
        self.tolerance = tolerance

    def abstract(
        self,
        timestamps: Sequence[_dt.date],
        values: Sequence[float | None],
        conflict_sink: list | None = None,
    ) -> list[Interval]:
        """Classify consecutive-pair slopes and merge equal trends.

        Same-day readings with different values make the slope of the day
        undefined; as in :class:`StateAbstraction`, the first reading wins
        and the contradiction lands in ``conflict_sink`` instead of
        distorting the trend (the zero-day gap used to be clamped to one
        day, manufacturing a steep artificial slope).
        """
        points = _check_series(timestamps, values)
        deduped: list[tuple[_dt.date, object]] = []
        for when, value in points:
            if deduped and deduped[-1][0] == when:
                prior = deduped[-1][1]
                if float(value) != float(prior) and conflict_sink is not None:  # type: ignore[arg-type]
                    conflict_sink.append(
                        TemporalConflict(
                            self.variable,
                            Interval(self.variable, f"value={prior}", when, when),
                            Interval(self.variable, f"value={value}", when, when),
                        )
                    )
                continue
            deduped.append((when, value))
        points = deduped
        if len(points) < 2:
            return []
        segments: list[tuple[str, _dt.date, _dt.date]] = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            days = max((t1 - t0).days, 1)
            slope = (float(v1) - float(v0)) / days  # type: ignore[arg-type]
            if slope > self.tolerance:
                trend = self.INCREASING
            elif slope < -self.tolerance:
                trend = self.DECREASING
            else:
                trend = self.STEADY
            segments.append((trend, t0, t1))
        intervals: list[Interval] = []
        state, start, end = segments[0]
        support = 2
        for trend, t0, t1 in segments[1:]:
            if trend == state:
                end = t1
                support += 1
            else:
                intervals.append(Interval(self.variable, state, start, end, support))
                state, start, end = trend, t0, t1
                support = 2
        intervals.append(Interval(self.variable, state, start, end, support))
        return intervals


def abstract_states(
    variable: str,
    scheme: DiscretizationScheme,
    timestamps: Sequence[_dt.date],
    values: Sequence[float | None],
    min_support: int = 1,
) -> list[Interval]:
    """Functional shorthand for :class:`StateAbstraction`."""
    return StateAbstraction(variable, scheme, min_support).abstract(timestamps, values)


def abstract_trends(
    variable: str,
    timestamps: Sequence[_dt.date],
    values: Sequence[float | None],
    tolerance: float = 0.0,
) -> list[Interval]:
    """Functional shorthand for :class:`TrendAbstraction`."""
    return TrendAbstraction(variable, tolerance).abstract(timestamps, values)


def episodes_table(
    table,
    patient_key: str,
    date_column: str,
    value_column: str,
    scheme: DiscretizationScheme,
    min_support: int = 1,
):
    """Per-patient state episodes of one measure, as a table.

    Applies :class:`StateAbstraction` to every patient's (date, value)
    series and stacks the resulting intervals into one table — the
    queryable form of temporal abstraction the warehouse consumes
    (columns: patient, variable, state, start, end, support,
    duration_days).
    """
    from repro.tabular.table import Table

    by_patient: dict[object, list[tuple[_dt.date, float]]] = {}
    for row in table.select([patient_key, date_column, value_column]).iter_rows():
        patient = row[patient_key]
        when = row[date_column]
        value = row[value_column]
        if patient is None or when is None or value is None:
            continue
        by_patient.setdefault(patient, []).append((when, value))

    abstraction = StateAbstraction(value_column, scheme, min_support)
    rows = []
    for patient in sorted(by_patient, key=str):
        series = by_patient[patient]
        stamps = [when for when, __ in series]
        values = [value for __, value in series]
        for interval in abstraction.abstract(stamps, values):
            rows.append(
                {
                    "patient": patient,
                    "variable": interval.variable,
                    "state": interval.state,
                    "start": interval.start,
                    "end": interval.end,
                    "support": interval.support,
                    "duration_days": interval.duration_days,
                }
            )
    if not rows:
        return Table.empty(
            {
                "patient": "int", "variable": "str", "state": "str",
                "start": "date", "end": "date", "support": "int",
                "duration_days": "int",
            }
        )
    return Table.from_rows(rows)  # patient key dtype inferred from the data


def cross_measure_conflicts(
    table,
    patient_key: str,
    date_column: str,
    measures: dict[str, tuple[str, DiscretizationScheme, dict[str, str]]],
    min_support: int = 1,
) -> list[tuple[object, Interval, Interval]]:
    """Conflicts between abstractions of *different* measures that map into
    one shared state vocabulary.

    The paper: "Given the multivariate nature of clinical data spaces, it
    is important to ensure temporal abstractions do not conflict with each
    other."  Two measures of the same underlying condition (e.g. FBG and
    HbA1c both staging glycaemia) should tell the same story; where their
    abstracted intervals overlap with different shared states, the span is
    a data-quality or clinical finding.

    ``measures`` maps a variable name → (source column, scheme,
    state_map), where ``state_map`` translates that scheme's bin labels
    into the shared vocabulary.  Returns (patient, interval_a, interval_b)
    triples, where the intervals carry the shared states.
    """
    if len(measures) < 2:
        raise TemporalAbstractionError(
            "cross-measure conflict checking needs at least two measures"
        )
    per_patient: dict[object, dict[str, list[Interval]]] = {}
    for variable, (column, scheme, state_map) in measures.items():
        missing = set(scheme.labels) - set(state_map)
        if missing:
            raise TemporalAbstractionError(
                f"state_map for {variable!r} misses scheme labels "
                f"{sorted(missing)}"
            )
        by_patient: dict[object, list[tuple[_dt.date, float]]] = {}
        for row in table.select([patient_key, date_column, column]).iter_rows():
            patient = row[patient_key]
            when = row[date_column]
            value = row[column]
            if patient is None or when is None or value is None:
                continue
            by_patient.setdefault(patient, []).append((when, value))
        abstraction = StateAbstraction(variable, scheme, min_support)
        for patient, series in by_patient.items():
            stamps = [when for when, __ in series]
            values = [value for __, value in series]
            shared = [
                Interval(
                    "shared", state_map[interval.state],
                    interval.start, interval.end, interval.support,
                )
                for interval in abstraction.abstract(stamps, values)
            ]
            per_patient.setdefault(patient, {})[variable] = shared

    conflicts: list[tuple[object, Interval, Interval]] = []
    variables = list(measures)
    for patient, streams in sorted(per_patient.items(), key=lambda p: str(p[0])):
        for i in range(len(variables)):
            for j in range(i + 1, len(variables)):
                first = streams.get(variables[i], [])
                second = streams.get(variables[j], [])
                for a, b in find_conflicts(first, second):
                    conflicts.append((patient, a, b))
    return conflicts


def find_conflicts(
    first: Sequence[Interval], second: Sequence[Interval]
) -> list[tuple[Interval, Interval]]:
    """Pairs of overlapping same-variable intervals with different states.

    Only intervals describing the same variable can conflict; trend and
    state abstractions of the same measure use distinct variable names
    (e.g. ``"fbg"`` vs ``"fbg_trend"``) precisely so they do not.
    """
    conflicts = []
    for a in first:
        for b in second:
            if a.variable == b.variable and a.state != b.state and a.overlaps(b):
                conflicts.append((a, b))
    return conflicts
