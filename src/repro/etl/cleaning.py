"""Cleaning: missing-value replacement and erroneous-value repair.

The DiScRi trial "initiated with the replacement of missing values,
erroneous values and records" (paper §V.A).  This module makes those
policies explicit and auditable: every change is counted in a
:class:`CleaningReport` so the clinical scientist can see exactly what the
pipeline did to the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

import numpy as np

from repro.errors import CleaningError
from repro.tabular.column import Column
from repro.tabular.table import Table


class MissingValuePolicy(str, Enum):
    """What to do with a null in a column."""

    KEEP = "keep"            #: leave nulls in place
    DROP_ROW = "drop_row"    #: remove the whole record
    MEAN = "mean"            #: replace with the column mean (numeric only)
    MEDIAN = "median"        #: replace with the column median (numeric only)
    MODE = "mode"            #: replace with the most frequent value
    CONSTANT = "constant"    #: replace with a supplied constant


@dataclass(frozen=True)
class RangeRule:
    """Plausibility bounds for a numeric measure.

    Values outside [low, high] are *erroneous* (instrument glitches, unit
    mix-ups).  ``action`` is ``"null"`` (default: treat as missing),
    ``"clip"`` (saturate to the bound) or ``"drop_row"``.
    """

    column: str
    low: float | None = None
    high: float | None = None
    action: str = "null"

    def __post_init__(self) -> None:
        if self.action not in ("null", "clip", "drop_row"):
            raise CleaningError(
                f"unknown range action {self.action!r} (null|clip|drop_row)"
            )
        if self.low is None and self.high is None:
            raise CleaningError(f"range rule on {self.column!r} has no bounds")

    def violates(self, value: object) -> bool:
        """Whether a (non-null) value breaks the bounds."""
        if value is None:
            return False
        v = float(value)  # type: ignore[arg-type]
        if self.low is not None and v < self.low:
            return True
        if self.high is not None and v > self.high:
            return True
        return False

    def repair(self, value: float) -> float:
        """Clip a violating value to the nearest bound."""
        if self.low is not None and value < self.low:
            return self.low
        if self.high is not None and value > self.high:
            return self.high
        return value


@dataclass
class CleaningReport:
    """Audit of what cleaning changed."""

    rows_in: int = 0
    rows_out: int = 0
    rows_dropped: int = 0
    filled: dict[str, int] = field(default_factory=dict)
    erroneous_nulled: dict[str, int] = field(default_factory=dict)
    erroneous_clipped: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One-paragraph human-readable recap."""
        parts = [
            f"{self.rows_in} rows in, {self.rows_out} out "
            f"({self.rows_dropped} dropped)"
        ]
        if self.filled:
            parts.append(
                "filled: " + ", ".join(f"{k}×{v}" for k, v in sorted(self.filled.items()))
            )
        if self.erroneous_nulled:
            parts.append(
                "nulled out-of-range: "
                + ", ".join(f"{k}×{v}" for k, v in sorted(self.erroneous_nulled.items()))
            )
        if self.erroneous_clipped:
            parts.append(
                "clipped: "
                + ", ".join(f"{k}×{v}" for k, v in sorted(self.erroneous_clipped.items()))
            )
        return "; ".join(parts)


def _fill_value(column: Column, policy: MissingValuePolicy, constant: object) -> object:
    if policy is MissingValuePolicy.MEAN:
        value = column.mean()
    elif policy is MissingValuePolicy.MEDIAN:
        values = sorted(v for v in column.to_list() if v is not None)
        if not values:
            raise CleaningError("cannot take median of an all-null column")
        mid = len(values) // 2
        if len(values) % 2:
            value = values[mid]
        else:
            value = (values[mid - 1] + values[mid]) / 2  # type: ignore[operator]
    elif policy is MissingValuePolicy.MODE:
        counts = column.value_counts()
        if not counts:
            raise CleaningError("cannot take mode of an all-null column")
        value = max(sorted(counts), key=lambda k: counts[k])
    elif policy is MissingValuePolicy.CONSTANT:
        if constant is None:
            raise CleaningError("CONSTANT policy requires a fill value")
        value = constant
    else:
        raise CleaningError(f"policy {policy} is not a fill policy")
    if value is None:
        raise CleaningError("fill statistic evaluated to null")
    return value


def clean_table(
    table: Table,
    missing: Mapping[str, MissingValuePolicy | str] | None = None,
    constants: Mapping[str, object] | None = None,
    range_rules: list[RangeRule] | None = None,
) -> tuple[Table, CleaningReport]:
    """Apply range rules then missing-value policies; returns (table, report).

    Range rules run first because an out-of-range value turned into a null
    should then be subject to the column's missing-value policy.
    """
    report = CleaningReport(rows_in=table.num_rows)
    constants = dict(constants or {})

    # Pass 1: erroneous values.
    drop_mask = [False] * table.num_rows
    for rule in range_rules or []:
        values = table.column(rule.column).to_list()
        changed = False
        nulled = clipped = 0
        new_values: list[object] = []
        for i, v in enumerate(values):
            if rule.violates(v):
                if rule.action == "null":
                    new_values.append(None)
                    nulled += 1
                    changed = True
                elif rule.action == "clip":
                    new_values.append(rule.repair(float(v)))  # type: ignore[arg-type]
                    clipped += 1
                    changed = True
                else:  # drop_row
                    new_values.append(v)
                    drop_mask[i] = True
            else:
                new_values.append(v)
        if changed:
            table = table.with_column(
                rule.column, new_values, dtype=table.schema[rule.column]
            )
        if nulled:
            report.erroneous_nulled[rule.column] = (
                report.erroneous_nulled.get(rule.column, 0) + nulled
            )
        if clipped:
            report.erroneous_clipped[rule.column] = (
                report.erroneous_clipped.get(rule.column, 0) + clipped
            )

    # Pass 2: missing-value policies (DROP_ROW policies extend the mask).
    policies = {
        name: MissingValuePolicy(policy) for name, policy in (missing or {}).items()
    }
    for name, policy in policies.items():
        if policy is MissingValuePolicy.DROP_ROW:
            column = table.column(name)
            for i in range(len(column)):
                if not column.valid[i]:
                    drop_mask[i] = True

    if any(drop_mask):
        keep = [not d for d in drop_mask]
        report.rows_dropped = sum(drop_mask)
        table = table.filter(np.array(keep, dtype=bool))

    for name, policy in policies.items():
        if policy in (MissingValuePolicy.KEEP, MissingValuePolicy.DROP_ROW):
            continue
        column = table.column(name)
        nulls = column.null_count
        if nulls == 0:
            continue
        fill = _fill_value(column, policy, constants.get(name))
        table = table.with_column(name, column.fill_null(fill))
        report.filled[name] = report.filled.get(name, 0) + nulls

    report.rows_out = table.num_rows
    return table, report
