"""Cardinality: visit-level abstraction over repeat attendances.

The paper (§IV.3): "Cardinality is temporal abstraction applied to a group
of variables that have a contextual association ... the actual measurements
are candidates for temporal abstraction while cardinality is used to
identify each individual test."  In the DiScRi warehouse this becomes a
dedicated dimension: every visit carries its ordinal position in that
patient's attendance history, letting queries distinguish *records* from
*patients* (paper §V.B).
"""

from __future__ import annotations

from repro.errors import ETLError
from repro.tabular.table import Table


def assign_cardinality(
    table: Table,
    patient_key: str,
    date_column: str,
    output: str = "visit_number",
) -> Table:
    """Add a 1-based visit ordinal per patient, ordered by visit date.

    Ties on the same date are broken by original row order (stable), so
    re-running on the same table is deterministic.  Null dates raise —
    a visit without a date cannot be sequenced and should have been
    repaired or dropped by cleaning first.
    """
    if table.num_rows == 0:
        return table.with_column(output, [], dtype="int")
    patients = table.column(patient_key).to_list()
    dates = table.column(date_column).to_list()
    if any(d is None for d in dates):
        raise ETLError(
            f"cannot assign cardinality: null values in {date_column!r}; "
            "clean the data first"
        )
    if any(p is None for p in patients):
        raise ETLError(
            f"cannot assign cardinality: null values in {patient_key!r}"
        )
    order: dict[object, list[tuple[object, int]]] = {}
    for i, (p, d) in enumerate(zip(patients, dates)):
        order.setdefault(p, []).append((d, i))
    ordinal = [0] * table.num_rows
    for visits in order.values():
        visits.sort(key=lambda pair: (pair[0], pair[1]))
        for n, (_, i) in enumerate(visits, start=1):
            ordinal[i] = n
    return table.with_column(output, ordinal, dtype="int")


def visit_counts(table: Table, patient_key: str) -> dict[object, int]:
    """Number of recorded visits per patient."""
    return table.column(patient_key).value_counts()


def first_visit_only(table: Table, patient_key: str, date_column: str) -> Table:
    """Restrict to each patient's earliest attendance.

    Useful for patient-level (rather than record-level) analyses; the
    complement of what the cardinality dimension enables inside the cube.
    """
    with_ordinal = assign_cardinality(
        table, patient_key, date_column, output="__visit_ordinal"
    )
    from repro.tabular.expressions import col

    return with_ordinal.filter(col("__visit_ordinal").eq(1)).drop("__visit_ordinal")
