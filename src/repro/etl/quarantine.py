"""Row-level dead-letter store for fault-tolerant ingest.

Clinical source data fails row-by-row, not batch-by-batch: one attendance
with a missing visit date must not poison the other nine hundred.  Every
resilient ingest step (pipeline transforms, star-schema key resolution,
OLTP intake) diverts failing rows here instead of aborting, each entry
carrying the originating step, the typed error and the pristine source
row — enough to *inspect* the failure and *re-drive* the row once the
scheme (or the data) is fixed.

The store is WAL-backed through the PR-2 durability layer: entries are
rows of a :class:`~repro.storage.engine.StorageEngine` table whose WAL
lives under ``<root>/wal.log`` and whose snapshots land under
``<root>/snaps``, so quarantined rows survive a crash exactly like
committed facts do (:meth:`QuarantineStore.open` recovers them).  With no
root the store is purely in-memory — handy for tests and one-shot
pipeline runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro import obs
from repro.errors import IngestError
from repro.storage.durable import json_decode_value, json_encode_value
from repro.storage.engine import StorageEngine
from repro.storage.persistence import _save_snapshot, recover
from repro.storage.wal import WriteAheadLog

_TABLE = "quarantine"
_SCHEMA = {
    "entry_id": "int",
    "batch": "str",
    "step": "str",
    "error_type": "str",
    "reason": "str",
    "source_index": "int",
    "row_json": "str",
}


@dataclass
class QuarantinedRow:
    """One dead-letter entry: the row, where it failed, and why."""

    row: dict
    step: str
    error_type: str
    reason: str
    batch: str = ""
    #: position of the row in the batch it arrived with (-1 when unknown)
    source_index: int = -1
    #: surrogate id assigned by the store (-1 until persisted)
    entry_id: int = -1

    @classmethod
    def from_error(
        cls,
        row: dict,
        step: str,
        error: BaseException,
        *,
        batch: str = "",
        source_index: int = -1,
    ) -> "QuarantinedRow":
        """Build an entry from a caught error, preserving its type name."""
        return cls(
            row=dict(row),
            step=step,
            error_type=type(error).__name__,
            reason=str(error),
            batch=batch,
            source_index=source_index,
        )

    def describe(self) -> str:
        """One-line recap for listings."""
        return (
            f"#{self.entry_id} [{self.batch or '-'}] step={self.step} "
            f"{self.error_type}: {self.reason}"
        )


def _encode_row(row: dict) -> str:
    return json.dumps(
        {k: json_encode_value(v) for k, v in row.items()}, sort_keys=True
    )


def _decode_row(text: str) -> dict:
    return {k: json_decode_value(v) for k, v in json.loads(text).items()}


class ListSink:
    """Minimal in-process quarantine sink: collects entries in a list.

    Used by the ingest path to stage entries during a (retryable) rebuild
    and commit them to the durable store only once the rebuild succeeds —
    a retried rebuild must not double-quarantine.
    """

    def __init__(self) -> None:
        self.entries: list[QuarantinedRow] = []

    def add(self, entry: QuarantinedRow) -> None:
        """Collect one entry."""
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class RedriveReport:
    """What a re-drive attempt did."""

    attempted: int = 0
    succeeded: int = 0
    requeued: int = 0
    #: entry ids removed from the store (re-driven successfully)
    removed_ids: list[int] = field(default_factory=list)

    def summary(self) -> str:
        """One-line recap."""
        return (
            f"{self.attempted} attempted, {self.succeeded} re-driven, "
            f"{self.requeued} re-quarantined"
        )


class QuarantineStore:
    """Persisted, WAL-backed dead-letter table with a typed error taxonomy."""

    def __init__(self, root: str | Path | None = None, *, _engine=None):
        self.root = Path(root) if root is not None else None
        if _engine is not None:
            self._engine = _engine
        else:
            wal = (
                WriteAheadLog(self.root / "wal.log")
                if self.root is not None
                else None
            )
            if self.root is not None:
                self.root.mkdir(parents=True, exist_ok=True)
            self._engine = StorageEngine(wal) if wal is not None else StorageEngine()
            self._engine.create_table(_TABLE, _SCHEMA, primary_key="entry_id")
        self._next_id = 1 + max(
            (row["entry_id"] for row in self._engine.scan(_TABLE).iter_rows()),
            default=0,
        )
        #: identical entries are recorded once (re-runs must not duplicate)
        self._seen: set[tuple] = {
            (row["step"], row["error_type"], row["row_json"])
            for row in self._engine.scan(_TABLE).iter_rows()
        }

    @classmethod
    def open(cls, root: str | Path) -> "QuarantineStore":
        """Open (or create) a durable store, recovering after a crash.

        Walks snapshot generations and replays the WAL exactly like the
        operational store does; a store that never checkpointed recovers
        from its WAL alone.
        """
        root = Path(root)
        snaps = root / "snaps"
        wal_path = root / "wal.log"
        if snaps.is_dir() or wal_path.exists():
            if not snaps.is_dir():
                # WAL with no snapshot yet: seed an empty schema generation
                # so recover() has a base to replay onto.
                seed = QuarantineStore(root)
                _save_snapshot(seed._engine, snaps)
                seed._engine.wal.close()
            engine = recover(snaps, wal_path)
            return cls(root, _engine=engine)
        return cls(root)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def add(self, entry: QuarantinedRow) -> int:
        """Persist one entry (idempotently); returns its entry id.

        An entry identical in (step, error type, row payload) to one
        already stored is not duplicated — re-running a rebuild over a
        partially-ingested batch must converge, not accumulate.
        """
        row_json = _encode_row(entry.row)
        key = (entry.step, entry.error_type, row_json)
        if key in self._seen:
            for existing in self.rows():
                if (existing.step, existing.error_type, _encode_row(existing.row)) == key:
                    entry.entry_id = existing.entry_id
                    return existing.entry_id
        entry.entry_id = self._next_id
        self._next_id += 1
        with self._engine.transaction():
            self._engine.insert(
                _TABLE,
                {
                    "entry_id": entry.entry_id,
                    "batch": entry.batch,
                    "step": entry.step,
                    "error_type": entry.error_type,
                    "reason": entry.reason,
                    "source_index": entry.source_index,
                    "row_json": row_json,
                },
            )
        self._seen.add(key)
        obs.count("ingest.quarantined")
        return entry.entry_id

    def extend(self, entries: Iterable[QuarantinedRow]) -> int:
        """Persist several entries; returns how many were newly stored."""
        before = len(self)
        for entry in entries:
            self.add(entry)
        return len(self) - before

    def remove(self, entry_ids: Iterable[int]) -> int:
        """Delete entries by id (after a successful re-drive)."""
        doomed = set(entry_ids)
        removed = 0
        stored = self._engine._tables[_TABLE]
        targets = [
            (row_id, row)
            for row_id, row in sorted(stored.rows.items())
            if row["entry_id"] in doomed
        ]
        with self._engine.transaction():
            for row_id, row in targets:
                self._seen.discard(
                    (row["step"], row["error_type"], row["row_json"])
                )
                self._engine.delete(_TABLE, row_id)
                removed += 1
        return removed

    def checkpoint(self) -> None:
        """Snapshot the store and truncate its WAL (durable stores only)."""
        if self.root is None:
            return
        from repro.storage.persistence import checkpoint as _checkpoint

        _checkpoint(self._engine, self.root / "snaps")

    def close(self) -> None:
        """Flush and close the underlying WAL handle."""
        self._engine.wal.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._engine.row_count(_TABLE)

    def rows(self) -> list[QuarantinedRow]:
        """Every entry, oldest first."""
        out = []
        for row in self._engine.scan(_TABLE).iter_rows():
            out.append(
                QuarantinedRow(
                    row=_decode_row(row["row_json"]),
                    step=row["step"],
                    error_type=row["error_type"],
                    reason=row["reason"],
                    batch=row["batch"],
                    source_index=row["source_index"],
                    entry_id=row["entry_id"],
                )
            )
        out.sort(key=lambda e: e.entry_id)
        return out

    def get(self, entry_id: int) -> QuarantinedRow:
        """One entry by id; raises :class:`IngestError` when absent."""
        for entry in self.rows():
            if entry.entry_id == entry_id:
                return entry
        raise IngestError(f"no quarantine entry #{entry_id}")

    def counts(self, by: str = "step") -> dict[str, int]:
        """Entry counts grouped by ``step`` | ``error_type`` | ``batch``."""
        if by not in ("step", "error_type", "batch"):
            raise IngestError(
                f"counts(by={by!r}): use step | error_type | batch"
            )
        out: dict[str, int] = {}
        for row in self._engine.scan(_TABLE).iter_rows():
            key = str(row[by])
            out[key] = out.get(key, 0) + 1
        return out

    def values(self, column: str) -> set:
        """Distinct values of one source-row column across all entries.

        Used by the ingest path to exclude already-dead-lettered rows
        (e.g. by ``visit_id``) from the main flow until they are
        re-driven.
        """
        out = set()
        for entry in self.rows():
            if column in entry.row:
                out.add(entry.row[column])
        return out

    # ------------------------------------------------------------------
    # Re-drive
    # ------------------------------------------------------------------

    def redrive(
        self,
        handler: Callable[[list[QuarantinedRow]], Iterable[int]],
        *,
        repair: Callable[[dict], dict] | None = None,
    ) -> RedriveReport:
        """Re-run every entry through ``handler``; purge the survivors.

        ``handler`` receives the entries (rows repaired by ``repair`` when
        given) and returns the entry ids that succeeded; those are removed
        from the store.  Entries the handler re-quarantines stay put under
        their new diagnosis.
        """
        entries = self.rows()
        report = RedriveReport(attempted=len(entries))
        if not entries:
            return report
        if repair is not None:
            for entry in entries:
                entry.row = dict(repair(dict(entry.row)))
        succeeded = sorted(set(handler(entries)))
        report.removed_ids = succeeded
        report.succeeded = len(succeeded)
        report.requeued = report.attempted - report.succeeded
        self.remove(succeeded)
        obs.count("ingest.redriven", report.succeeded)
        return report
