"""Composable transformation pipeline with an audit trail.

Clinical ETL must be reviewable: a scientist has to be able to answer
"what exactly happened to this attribute before it reached the warehouse?".
Every step therefore logs a human-readable audit entry, and the pipeline
result carries the full trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ETLError
from repro.etl.cleaning import MissingValuePolicy, RangeRule, clean_table
from repro.etl.cardinality import assign_cardinality
from repro.etl.discretization import DiscretizationScheme
from repro.tabular.table import Table


@dataclass
class AuditEntry:
    """One line of the pipeline audit trail."""

    step: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.step}] {self.detail}"


class TransformStep:
    """Base class: subclasses implement :meth:`apply`."""

    name = "step"

    def apply(self, table: Table) -> tuple[Table, str]:
        """Transform the table; return (new_table, audit_detail)."""
        raise NotImplementedError


class CleaningStep(TransformStep):
    """Wraps :func:`repro.etl.cleaning.clean_table`."""

    name = "clean"

    def __init__(
        self,
        missing: Mapping[str, MissingValuePolicy | str] | None = None,
        constants: Mapping[str, object] | None = None,
        range_rules: Sequence[RangeRule] | None = None,
    ):
        self.missing = dict(missing or {})
        self.constants = dict(constants or {})
        self.range_rules = list(range_rules or [])

    def apply(self, table: Table) -> tuple[Table, str]:
        cleaned, report = clean_table(
            table,
            missing=self.missing,
            constants=self.constants,
            range_rules=self.range_rules,
        )
        return cleaned, report.summary()


class DiscretizationStep(TransformStep):
    """Discretise one column into a new (or replacing) label column.

    The DiScRi trial kept both forms for attributes without clinical
    schemes — "duplicated with one having the original continuous form and
    the other discretised" — so the default output is ``<column>_band`` and
    the source column is preserved.
    """

    name = "discretize"

    def __init__(
        self,
        column: str,
        scheme: DiscretizationScheme,
        output: str | None = None,
        keep_original: bool = True,
    ):
        self.column = column
        self.scheme = scheme
        self.output = output or f"{column}_band"
        self.keep_original = keep_original

    def apply(self, table: Table) -> tuple[Table, str]:
        values = table.column(self.column).to_list()
        labels = self.scheme.assign_many(values)  # type: ignore[arg-type]
        result = table.with_column(self.output, labels, dtype="str")
        if not self.keep_original:
            result = result.drop(self.column)
        detail = (
            f"{self.column} -> {self.output} via scheme {self.scheme.name!r} "
            f"({len(self.scheme.bins)} bins)"
        )
        return result, detail


class CardinalityStep(TransformStep):
    """Wraps :func:`repro.etl.cardinality.assign_cardinality`."""

    name = "cardinality"

    def __init__(self, patient_key: str, date_column: str,
                 output: str = "visit_number"):
        self.patient_key = patient_key
        self.date_column = date_column
        self.output = output

    def apply(self, table: Table) -> tuple[Table, str]:
        result = assign_cardinality(
            table, self.patient_key, self.date_column, output=self.output
        )
        patients = table.column(self.patient_key).n_unique()
        detail = (
            f"visit ordinals in {self.output!r}: {table.num_rows} records "
            f"over {patients} patients"
        )
        return result, detail


class DeduplicateStep(TransformStep):
    """Remove duplicate records (the trial also cleaned "records").

    Keyed on the given columns (e.g. patient + visit date, so a twice-
    entered attendance collapses); with no keys, full rows deduplicate.
    First occurrence wins, preserving entry order.
    """

    name = "deduplicate"

    def __init__(self, *keys: str):
        self.keys = list(keys)

    def apply(self, table: Table) -> tuple[Table, str]:
        before = table.num_rows
        result = table.distinct(*self.keys)
        dropped = before - result.num_rows
        keyed = f" on ({', '.join(self.keys)})" if self.keys else ""
        return result, f"dropped {dropped} duplicate records{keyed}"


class DeriveStep(TransformStep):
    """Add a computed column via ``func(row_dict)``."""

    name = "derive"

    def __init__(self, output: str, func: Callable[[dict], object],
                 dtype: str | None = None, description: str = ""):
        self.output = output
        self.func = func
        self.dtype = dtype
        self.description = description or f"computed column {output!r}"

    def apply(self, table: Table) -> tuple[Table, str]:
        return table.with_derived(self.output, self.func, dtype=self.dtype), self.description


@dataclass
class PipelineResult:
    """Output table plus the audit trail of every step."""

    table: Table
    audit: list[AuditEntry] = field(default_factory=list)

    def audit_text(self) -> str:
        """The trail as newline-joined text."""
        return "\n".join(str(entry) for entry in self.audit)


class Pipeline:
    """An ordered list of transform steps applied to a table."""

    def __init__(self, steps: Sequence[TransformStep] | None = None):
        self.steps: list[TransformStep] = list(steps or [])

    def add(self, step: TransformStep) -> "Pipeline":
        """Append a step; returns self for chaining."""
        self.steps.append(step)
        return self

    def run(self, table: Table) -> PipelineResult:
        """Execute every step in order, collecting the audit trail."""
        if not self.steps:
            raise ETLError("pipeline has no steps")
        audit: list[AuditEntry] = []
        current = table
        for step in self.steps:
            current, detail = step.apply(current)
            audit.append(AuditEntry(step.name, detail))
        return PipelineResult(current, audit)
