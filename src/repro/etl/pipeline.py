"""Composable transformation pipeline with an audit trail.

Clinical ETL must be reviewable: a scientist has to be able to answer
"what exactly happened to this attribute before it reached the warehouse?".
Every step therefore logs a human-readable audit entry, and the pipeline
result carries the full trail.

The pipeline has two execution modes.  The default (`run(table)`) is
all-or-nothing: any failing row aborts the batch, as a unit-test fixture
or a trusted source wants.  Passing a quarantine sink
(`run(table, quarantine=...)`) switches every step into **row-level error
mode**: rows a step cannot transform are diverted to the sink as
:class:`~repro.etl.quarantine.QuarantinedRow` entries — carrying the
originating step's audit context and the pristine source row — and the
batch continues with the survivors.  Step *configuration* errors (a
missing column, an empty pipeline) still raise in both modes; only
per-row data problems quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ETLError
from repro.etl.cleaning import MissingValuePolicy, RangeRule, clean_table
from repro.etl.cardinality import assign_cardinality
from repro.etl.discretization import DiscretizationScheme
from repro.etl.quarantine import QuarantinedRow
from repro.tabular.table import Table

#: hidden column threaded through resilient runs so every surviving row
#: can be traced back to its position in the *input* batch
INGEST_INDEX = "__ingest_index__"


def _require_column(step: "TransformStep", column: str, table: Table) -> None:
    """Configuration check: the step's column must exist in the table."""
    if column not in table.column_names:
        raise ETLError(
            f"step {step.name!r}: column {column!r} is not in the table "
            f"(available: {', '.join(table.column_names)})"
        )


@dataclass
class AuditEntry:
    """One line of the pipeline audit trail."""

    step: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.step}] {self.detail}"


class TransformStep:
    """Base class: subclasses implement :meth:`apply`."""

    name = "step"

    def apply(self, table: Table) -> tuple[Table, str]:
        """Transform the table; return (new_table, audit_detail)."""
        raise NotImplementedError

    def apply_resilient(
        self, table: Table
    ) -> tuple[Table, str, list[tuple[dict, BaseException]]]:
        """Row-level error mode: return (table, detail, failed_rows).

        ``failed_rows`` pairs each undigestible row (as a dict, hidden
        columns included) with the error that rejected it.  The default
        assumes the step has no per-row failure mode and delegates to
        :meth:`apply` — steps that can reject individual rows override
        this with a single-pass implementation so the clean-batch path
        stays as fast as the strict one.
        """
        result, detail = self.apply(table)
        return result, detail, []


class CleaningStep(TransformStep):
    """Wraps :func:`repro.etl.cleaning.clean_table`."""

    name = "clean"

    def __init__(
        self,
        missing: Mapping[str, MissingValuePolicy | str] | None = None,
        constants: Mapping[str, object] | None = None,
        range_rules: Sequence[RangeRule] | None = None,
    ):
        self.missing = dict(missing or {})
        self.constants = dict(constants or {})
        self.range_rules = list(range_rules or [])

    def apply(self, table: Table) -> tuple[Table, str]:
        cleaned, report = clean_table(
            table,
            missing=self.missing,
            constants=self.constants,
            range_rules=self.range_rules,
        )
        return cleaned, report.summary()


class DiscretizationStep(TransformStep):
    """Discretise one column into a new (or replacing) label column.

    The DiScRi trial kept both forms for attributes without clinical
    schemes — "duplicated with one having the original continuous form and
    the other discretised" — so the default output is ``<column>_band`` and
    the source column is preserved.
    """

    name = "discretize"

    def __init__(
        self,
        column: str,
        scheme: DiscretizationScheme,
        output: str | None = None,
        keep_original: bool = True,
    ):
        self.column = column
        self.scheme = scheme
        self.output = output or f"{column}_band"
        self.keep_original = keep_original

    def apply(self, table: Table) -> tuple[Table, str]:
        _require_column(self, self.column, table)
        values = table.column(self.column).to_list()
        labels = self.scheme.assign_many(values)  # type: ignore[arg-type]
        result = table.with_column(self.output, labels, dtype="str")
        if not self.keep_original:
            result = result.drop(self.column)
        return result, self._detail()

    def apply_resilient(
        self, table: Table
    ) -> tuple[Table, str, list[tuple[dict, BaseException]]]:
        _require_column(self, self.column, table)
        values = table.column(self.column).to_list()
        assign = self.scheme.assign
        labels: list[str | None] = []
        kept: list[int] = []
        failed: list[tuple[dict, BaseException]] = []
        for i, value in enumerate(values):
            try:
                labels.append(assign(value))  # type: ignore[arg-type]
                kept.append(i)
            except Exception as exc:
                failed.append((table.row(i), exc))
        result = table if not failed else table.take(kept)
        result = result.with_column(self.output, labels, dtype="str")
        if not self.keep_original:
            result = result.drop(self.column)
        return result, self._detail(), failed

    def _detail(self) -> str:
        return (
            f"{self.column} -> {self.output} via scheme {self.scheme.name!r} "
            f"({len(self.scheme.bins)} bins)"
        )


class CardinalityStep(TransformStep):
    """Wraps :func:`repro.etl.cardinality.assign_cardinality`."""

    name = "cardinality"

    def __init__(self, patient_key: str, date_column: str,
                 output: str = "visit_number"):
        self.patient_key = patient_key
        self.date_column = date_column
        self.output = output

    def apply(self, table: Table) -> tuple[Table, str]:
        _require_column(self, self.patient_key, table)
        _require_column(self, self.date_column, table)
        result = assign_cardinality(
            table, self.patient_key, self.date_column, output=self.output
        )
        patients = table.column(self.patient_key).n_unique()
        detail = (
            f"visit ordinals in {self.output!r}: {table.num_rows} records "
            f"over {patients} patients"
        )
        return result, detail

    def apply_resilient(
        self, table: Table
    ) -> tuple[Table, str, list[tuple[dict, BaseException]]]:
        _require_column(self, self.patient_key, table)
        _require_column(self, self.date_column, table)
        patients = table.column(self.patient_key)
        dates = table.column(self.date_column)
        kept: list[int] = []
        failed: list[tuple[dict, BaseException]] = []
        for i in range(table.num_rows):
            if not patients.valid[i]:
                problem = f"null {self.patient_key!r}"
            elif not dates.valid[i]:
                problem = f"null {self.date_column!r}"
            else:
                kept.append(i)
                continue
            failed.append(
                (table.row(i), ETLError(f"cannot assign cardinality: {problem}"))
            )
        work = table if not failed else table.take(kept)
        result, detail = self.apply(work)
        return result, detail, failed


class DeduplicateStep(TransformStep):
    """Remove duplicate records (the trial also cleaned "records").

    Keyed on the given columns (e.g. patient + visit date, so a twice-
    entered attendance collapses); with no keys, full rows deduplicate.
    First occurrence wins, preserving entry order.
    """

    name = "deduplicate"

    def __init__(self, *keys: str):
        self.keys = list(keys)

    def apply(self, table: Table) -> tuple[Table, str]:
        before = table.num_rows
        result = table.distinct(*self.keys)
        dropped = before - result.num_rows
        keyed = f" on ({', '.join(self.keys)})" if self.keys else ""
        return result, f"dropped {dropped} duplicate records{keyed}"

    def apply_resilient(
        self, table: Table
    ) -> tuple[Table, str, list[tuple[dict, BaseException]]]:
        # Dropping duplicates is policy, not failure — nothing quarantines.
        # With no explicit keys, full-row dedup must ignore the hidden
        # ingest-index column (it makes every row unique).
        keys = self.keys or [
            name for name in table.column_names if name != INGEST_INDEX
        ]
        before = table.num_rows
        result = table.distinct(*keys)
        dropped = before - result.num_rows
        keyed = f" on ({', '.join(self.keys)})" if self.keys else ""
        return result, f"dropped {dropped} duplicate records{keyed}", []


class DeriveStep(TransformStep):
    """Add a computed column via ``func(row_dict)``."""

    name = "derive"

    def __init__(self, output: str, func: Callable[[dict], object],
                 dtype: str | None = None, description: str = ""):
        self.output = output
        self.func = func
        self.dtype = dtype
        self.description = description or f"computed column {output!r}"

    def apply(self, table: Table) -> tuple[Table, str]:
        return table.with_derived(self.output, self.func, dtype=self.dtype), self.description

    def apply_resilient(
        self, table: Table
    ) -> tuple[Table, str, list[tuple[dict, BaseException]]]:
        func = self.func
        values: list[object] = []
        kept: list[int] = []
        failed: list[tuple[dict, BaseException]] = []
        for i, row in enumerate(table.iter_rows()):
            try:
                values.append(func(row))
                kept.append(i)
            except Exception as exc:  # derive funcs raise arbitrary errors
                failed.append((dict(row), exc))
        result = table if not failed else table.take(kept)
        result = result.with_column(self.output, values, dtype=self.dtype)
        return result, self.description, failed


@dataclass
class PipelineResult:
    """Output table plus the audit trail of every step."""

    table: Table
    audit: list[AuditEntry] = field(default_factory=list)
    #: dead-letter entries diverted during a resilient run ([] otherwise)
    quarantined: list[QuarantinedRow] = field(default_factory=list)
    #: for resilient runs: position in the *input* batch of each output
    #: row, in output order (``None`` for strict runs)
    kept_indices: list[int] | None = None

    def audit_text(self) -> str:
        """The trail as newline-joined text."""
        return "\n".join(str(entry) for entry in self.audit)


class Pipeline:
    """An ordered list of transform steps applied to a table."""

    def __init__(self, steps: Sequence[TransformStep] | None = None):
        self.steps: list[TransformStep] = list(steps or [])

    def add(self, step: TransformStep) -> "Pipeline":
        """Append a step; returns self for chaining."""
        self.steps.append(step)
        return self

    def run(
        self,
        table: Table,
        *,
        quarantine=None,
        batch: str = "",
    ) -> PipelineResult:
        """Execute every step in order, collecting the audit trail.

        Without ``quarantine`` any row a step cannot transform raises and
        aborts the batch (the strict, historical contract).  With a
        quarantine sink (anything exposing ``add(QuarantinedRow)``), such
        rows divert to the sink tagged with ``batch`` and the run
        continues; the result then also carries the diverted entries and
        the surviving rows' positions in the input batch.
        """
        if not self.steps:
            raise ETLError("pipeline has no steps")
        if quarantine is None:
            audit: list[AuditEntry] = []
            current = table
            for step in self.steps:
                current, detail = step.apply(current)
                audit.append(AuditEntry(step.name, detail))
            return PipelineResult(current, audit)
        return self._run_resilient(table, quarantine, batch)

    def _run_resilient(
        self, table: Table, quarantine, batch: str
    ) -> PipelineResult:
        original = table
        current = table.with_column(
            INGEST_INDEX, list(range(table.num_rows)), dtype="int"
        )
        audit: list[AuditEntry] = []
        entries: list[QuarantinedRow] = []
        for step in self.steps:
            current, detail, failed = step.apply_resilient(current)
            if failed:
                detail += f"; quarantined {len(failed)} rows"
                for row, error in failed:
                    index = int(row.get(INGEST_INDEX, -1))  # type: ignore[arg-type]
                    if index >= 0:
                        source_row = original.row(index)
                    else:
                        source_row = {
                            k: v for k, v in row.items() if k != INGEST_INDEX
                        }
                    entries.append(
                        QuarantinedRow.from_error(
                            source_row,
                            step.name,
                            error,
                            batch=batch,
                            source_index=index,
                        )
                    )
            audit.append(AuditEntry(step.name, detail))
        kept = [int(v) for v in current.column(INGEST_INDEX).to_list()]  # type: ignore[arg-type]
        for entry in entries:
            quarantine.add(entry)
        return PipelineResult(
            current.drop(INGEST_INDEX), audit, quarantined=entries, kept_indices=kept
        )
