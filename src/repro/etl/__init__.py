"""Data transformation (paper §IV, "Data Transformation").

The paper singles out three clinical-specific ETL concerns beyond generic
integration, all implemented here:

* **Discretisation** (:mod:`repro.etl.discretization`) — clinical schemes
  supplied by domain experts (paper Table I) plus algorithmic fallbacks:
  equal-width / equal-frequency (unsupervised), MDLP (top-down entropy) and
  ChiMerge (bottom-up chi-square), per the paper's reference [17].
* **Temporal abstraction** (:mod:`repro.etl.temporal`) — qualitative
  state/trend descriptions derived from time-stamped measures, with
  conflict detection between abstractions.
* **Cardinality** (:mod:`repro.etl.cardinality`) — visit-level abstraction
  that distinguishes repeat attendances of the same patient.

:mod:`repro.etl.cleaning` handles missing/erroneous values, and
:mod:`repro.etl.pipeline` composes steps with an audit trail.
"""

from repro.etl.cleaning import (
    CleaningReport,
    MissingValuePolicy,
    RangeRule,
    clean_table,
)
from repro.etl.discretization import (
    Bin,
    ChiMergeDiscretizer,
    DiscretizationScheme,
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    MDLPDiscretizer,
    discretize_column,
)
from repro.etl.temporal import (
    Interval,
    StateAbstraction,
    TemporalConflict,
    TrendAbstraction,
    abstract_states,
    abstract_trends,
    cross_measure_conflicts,
    episodes_table,
    find_conflicts,
    quarantine_conflicts,
)
from repro.etl.quarantine import ListSink, QuarantinedRow, QuarantineStore
from repro.etl.cardinality import assign_cardinality, visit_counts
from repro.etl.pipeline import Pipeline, TransformStep

__all__ = [
    "CleaningReport",
    "MissingValuePolicy",
    "RangeRule",
    "clean_table",
    "Bin",
    "DiscretizationScheme",
    "EqualWidthDiscretizer",
    "EqualFrequencyDiscretizer",
    "MDLPDiscretizer",
    "ChiMergeDiscretizer",
    "discretize_column",
    "Interval",
    "ListSink",
    "QuarantinedRow",
    "QuarantineStore",
    "StateAbstraction",
    "TemporalConflict",
    "TrendAbstraction",
    "abstract_states",
    "abstract_trends",
    "cross_measure_conflicts",
    "episodes_table",
    "find_conflicts",
    "quarantine_conflicts",
    "assign_cardinality",
    "visit_counts",
    "Pipeline",
    "TransformStep",
]
