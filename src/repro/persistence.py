"""One persistence surface for every durable artefact.

The platform keeps three kinds of durable state — the operational
snapshot store (:mod:`repro.storage.persistence`), the dimensional
warehouse (:mod:`repro.warehouse.persistence`) and the knowledge base
(:mod:`repro.knowledge.persistence`) — which historically each grew
their own ``save_*``/``load_*`` spelling.  This module unifies them
behind one protocol:

* :func:`save` — dispatches on the object's type; always returns the
  path the artefact now lives at;
* :func:`load` — auto-detects the artefact kind from the on-disk layout
  (or takes ``kind=`` explicitly) and reconstructs it;
* :func:`recover` — crash recovery for the operational store (newest
  valid snapshot generation + WAL replay).

All three raise :class:`~repro.errors.PersistenceError` on failure, with
the subsystem's specific error preserved as ``__cause__``.  The old
per-subsystem names still work but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Callable, TypeVar

from repro import obs
from repro.errors import (
    KnowledgeBaseError,
    PersistenceError,
    StorageError,
    WarehouseError,
)
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.persistence import (
    _load_knowledge_base,
    _save_knowledge_base,
)
from repro.storage.engine import StorageEngine
from repro.storage.persistence import (
    KEEP_GENERATIONS,
    _load_snapshot,
    _save_snapshot,
)
from repro.storage.persistence import checkpoint as _checkpoint
from repro.storage.persistence import recover as _recover
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.persistence import _load_warehouse, _save_warehouse
from repro.warehouse.star import StarSchema

__all__ = [
    "save",
    "load",
    "recover",
    "checkpoint",
    "detect_kind",
    "PersistenceError",
    "KEEP_GENERATIONS",
]

_F = TypeVar("_F", bound=Callable)


def _unified(fn: _F) -> _F:
    """Translate subsystem failures into :class:`PersistenceError`."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except PersistenceError:
            raise
        except (StorageError, WarehouseError, KnowledgeBaseError) as exc:
            raise PersistenceError(str(exc)) from exc

    return wrapper  # type: ignore[return-value]


def detect_kind(path: str | Path) -> str:
    """Which artefact lives at ``path``: storage / warehouse / knowledge.

    Detection reads only the directory layout: a single JSON file is a
    knowledge base, a directory with ``schema.json`` is a warehouse, and
    a directory with generation subdirectories (or a flat format-1
    ``catalog.json``) is an operational snapshot store.
    """
    target = Path(path)
    if target.is_file():
        return "knowledge"
    if target.is_dir():
        if (target / "schema.json").exists():
            return "warehouse"
        has_generation = any(
            child.is_dir() and child.name.startswith("gen-")
            for child in target.iterdir()
        )
        if has_generation or (target / "catalog.json").exists():
            return "storage"
        raise PersistenceError(
            f"{target}: directory holds no recognisable artefact "
            "(no schema.json, generation directories or catalog.json)"
        )
    raise PersistenceError(f"nothing exists at {target}")


@_unified
def save(
    obj: StorageEngine | DynamicWarehouse | StarSchema | KnowledgeBase,
    path: str | Path,
    *,
    keep: int = KEEP_GENERATIONS,
) -> Path:
    """Persist any durable artefact at ``path``; returns where it landed.

    ``keep`` applies to the operational store only (snapshot generations
    retained); the other artefacts overwrite in place atomically.  For an
    engine the returned path is the new generation directory.
    """
    with obs.span("persistence.save", kind=type(obj).__name__):
        if isinstance(obj, StorageEngine):
            return _save_snapshot(obj, path, keep=keep)
        if isinstance(obj, (DynamicWarehouse, StarSchema)):
            _save_warehouse(obj, path)
            return Path(path)
        if isinstance(obj, KnowledgeBase):
            _save_knowledge_base(obj, path)
            return Path(path)
    raise PersistenceError(
        f"cannot save object of type {type(obj).__name__} "
        "(expected StorageEngine, DynamicWarehouse/StarSchema or KnowledgeBase)"
    )


@_unified
def load(
    path: str | Path, *, kind: str | None = None
) -> StorageEngine | DynamicWarehouse | KnowledgeBase:
    """Reconstruct whichever artefact lives at ``path``.

    ``kind`` (``"storage"`` / ``"warehouse"`` / ``"knowledge"``) skips
    auto-detection — useful when loading a path that does not exist yet
    should fail with the subsystem's message rather than detection's.
    """
    resolved = kind if kind is not None else detect_kind(path)
    with obs.span("persistence.load", kind=resolved, path=str(path)):
        if resolved == "storage":
            return _load_snapshot(path)
        if resolved == "warehouse":
            return _load_warehouse(path)
        if resolved == "knowledge":
            return _load_knowledge_base(path)
    raise PersistenceError(
        f"unknown artefact kind {resolved!r} "
        "(expected storage, warehouse or knowledge)"
    )


@_unified
def recover(
    path: str | Path, wal_path: str | Path | None = None
) -> StorageEngine:
    """Crash-recover the operational store at ``path``.

    Walks snapshot generations newest-first, loads the first valid one
    and replays committed WAL records past its cutoff; see
    :func:`repro.storage.persistence.recover` for the full contract.
    """
    return _recover(path, wal_path)


@_unified
def checkpoint(
    engine: StorageEngine,
    path: str | Path,
    *,
    keep: int = KEEP_GENERATIONS,
) -> Path:
    """Snapshot ``engine`` at ``path``, then truncate its WAL."""
    return _checkpoint(engine, path, keep=keep)
