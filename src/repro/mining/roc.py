"""ROC analysis for probabilistic binary classifiers.

Risk assessment (the paper's motivating use of "multivariate regression
modelling") is threshold-based: a clinician needs the full
sensitivity/specificity trade-off, not one accuracy number.  This module
computes the ROC curve and AUC from scores, plus the Youden-optimal
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MiningError


@dataclass(frozen=True)
class RocPoint:
    """One operating point of the curve."""

    threshold: float
    true_positive_rate: float
    false_positive_rate: float

    @property
    def youden_j(self) -> float:
        """Youden's J = TPR - FPR (higher = better operating point)."""
        return self.true_positive_rate - self.false_positive_rate


@dataclass
class RocCurve:
    """The full curve with its summary statistics."""

    points: list[RocPoint]
    auc: float

    def best_threshold(self) -> float:
        """Threshold maximising Youden's J."""
        return max(self.points, key=lambda p: p.youden_j).threshold


def roc_curve(
    labels: Sequence[object],
    scores: Sequence[float],
    positive_label: object,
) -> RocCurve:
    """Build the ROC curve from (label, score) pairs.

    ``scores`` are "higher means more positive".  AUC is computed by the
    trapezoidal rule over the curve; ties in score share an operating
    point (the standard treatment).
    """
    if len(labels) != len(scores):
        raise MiningError(
            f"{len(labels)} labels vs {len(scores)} scores"
        )
    positives = sum(1 for label in labels if label == positive_label)
    negatives = len(labels) - positives
    if positives == 0 or negatives == 0:
        raise MiningError(
            "ROC needs at least one positive and one negative example"
        )
    paired = sorted(zip(scores, labels), key=lambda pair: -pair[0])

    points: list[RocPoint] = [RocPoint(float("inf"), 0.0, 0.0)]
    true_positives = false_positives = 0
    index = 0
    while index < len(paired):
        threshold = paired[index][0]
        # consume the whole tie group at this score
        while index < len(paired) and paired[index][0] == threshold:
            if paired[index][1] == positive_label:
                true_positives += 1
            else:
                false_positives += 1
            index += 1
        points.append(
            RocPoint(
                threshold,
                true_positives / positives,
                false_positives / negatives,
            )
        )

    auc = 0.0
    for previous, current in zip(points, points[1:]):
        width = current.false_positive_rate - previous.false_positive_rate
        auc += width * (
            current.true_positive_rate + previous.true_positive_rate
        ) / 2
    return RocCurve(points, auc)


def auc_score(
    labels: Sequence[object],
    scores: Sequence[float],
    positive_label: object,
) -> float:
    """Area under the ROC curve."""
    return roc_curve(labels, scores, positive_label).auc
