"""Data analytics (paper §IV, "Data Analytics").

"Cubes of data that are of interest to the clinical scientist can be
isolated using OLAP and further analysed using data mining algorithms.
There are a variety of data mining algorithms to address different
requirements such as classification, association and clustering."

All models share one convention: rows are plain dicts (exactly what
``Table.to_rows()`` and cube slices produce), ``target`` names the class
attribute and ``features`` lists the attributes to learn from.  Mixed
categorical/numeric features are supported where the algorithm allows.

:mod:`repro.mining.awsum` implements AWSum (the paper's reference [9]) —
the transparent evidence-weight classifier behind the reflex+glucose
pre-diabetes insight quoted in §II.
"""

from repro.mining.metrics import (
    ConfusionMatrix,
    accuracy,
    entropy,
    f1_score,
    gini,
    precision,
    recall,
)
from repro.mining.validation import cross_validate, stratified_k_fold, train_test_split
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.knn import KNNClassifier
from repro.mining.logistic import LogisticRegressionClassifier
from repro.mining.kmeans import KMeans
from repro.mining.hierarchical import AgglomerativeClustering
from repro.mining.apriori import AssociationRule, apriori, association_rules
from repro.mining.awsum import AWSumClassifier
from repro.mining.feature_selection import (
    chi2_scores,
    information_gain_scores,
    wrapper_filter_select,
)
from repro.mining.random_forest import RandomForestClassifier
from repro.mining.roc import RocCurve, RocPoint, auc_score, roc_curve
from repro.mining.silhouette import (
    pick_k_by_silhouette,
    silhouette_samples,
    silhouette_score,
)

__all__ = [
    "ConfusionMatrix",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "entropy",
    "gini",
    "train_test_split",
    "stratified_k_fold",
    "cross_validate",
    "DecisionTreeClassifier",
    "NaiveBayesClassifier",
    "KNNClassifier",
    "LogisticRegressionClassifier",
    "KMeans",
    "AgglomerativeClustering",
    "apriori",
    "association_rules",
    "AssociationRule",
    "AWSumClassifier",
    "chi2_scores",
    "information_gain_scores",
    "wrapper_filter_select",
    "RandomForestClassifier",
    "RocCurve",
    "RocPoint",
    "roc_curve",
    "auc_score",
    "silhouette_samples",
    "silhouette_score",
    "pick_k_by_silhouette",
]
