"""C4.5-style decision tree over mixed categorical/numeric features.

Categorical attributes split multi-way on their values; numeric attributes
split binary on a threshold chosen by information gain.  Gain *ratio*
selects among candidates (guarding against many-valued attributes, which
clinical codes often are), and depth/support pre-pruning keeps trees
readable — readability is the point:
the paper's motivation cites "presenting knowledge in a form that medical
specialists could find intuitively easy to assimilate".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MiningError, NotFittedError
from repro.mining.metrics import entropy


@dataclass
class TreeNode:
    """One node: either a leaf (prediction) or an internal split."""

    prediction: str | None = None
    #: class distribution at this node
    distribution: dict[str, int] = field(default_factory=dict)
    feature: str | None = None
    #: numeric split threshold (None for categorical splits)
    threshold: float | None = None
    #: categorical value → child, or {"<=": node, ">": node} for numeric
    children: dict[str, "TreeNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def majority(self) -> str:
        """Most frequent class at the node (ties break alphabetically)."""
        peak = max(self.distribution.values())
        return min(c for c, n in self.distribution.items() if n == peak)


class DecisionTreeClassifier:
    """Interpretable classification tree (ID3/C4.5 family)."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_gain_ratio: float = 1e-3,
    ):
        if max_depth < 1:
            raise MiningError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain_ratio = min_gain_ratio
        self._fitted = False

    # ------------------------------------------------------------------

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "DecisionTreeClassifier":
        """Grow the tree top-down."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        self.target = target
        self.features = list(features)
        labelled = [row for row in rows if row.get(target) is not None]
        if not labelled:
            raise MiningError(f"no rows carry a {target!r} label")
        self._numeric = {
            feature
            for feature in self.features
            if all(
                isinstance(row.get(feature), (int, float))
                and not isinstance(row.get(feature), bool)
                for row in labelled
                if row.get(feature) is not None
            )
            and any(row.get(feature) is not None for row in labelled)
        }
        self.root = self._grow(labelled, depth=0)
        self._fitted = True
        return self

    def _grow(self, rows: list[dict], depth: int) -> TreeNode:
        labels = [str(row[self.target]) for row in rows]
        node = TreeNode(distribution=dict(Counter(labels)))
        node.prediction = node.majority()
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples_split
            or len(set(labels)) == 1
        ):
            return node

        best = self._best_split(rows, labels)
        if best is None:
            return node
        feature, threshold, gain_ratio, partitions = best
        if gain_ratio < self.min_gain_ratio:
            return node
        node.feature = feature
        node.threshold = threshold
        for branch, subset in partitions.items():
            node.children[branch] = self._grow(subset, depth + 1)
        return node

    def _best_split(self, rows: list[dict], labels: list[str]):
        base = entropy(labels)
        best: tuple[str, float | None, float, dict[str, list[dict]]] | None = None
        for feature in self.features:
            known = [
                (row, label)
                for row, label in zip(rows, labels)
                if row.get(feature) is not None
            ]
            if len(known) < 2:
                continue
            if feature in self._numeric:
                candidate = self._numeric_split(feature, known, base)
            else:
                candidate = self._categorical_split(feature, known, base)
            if candidate is None:
                continue
            threshold, gain_ratio, partitions = candidate
            if best is None or gain_ratio > best[2]:
                best = (feature, threshold, gain_ratio, partitions)
        return best

    def _categorical_split(self, feature: str, known: list[tuple[dict, str]], base: float):
        groups: dict[str, list[tuple[dict, str]]] = {}
        for row, label in known:
            groups.setdefault(str(row[feature]), []).append((row, label))
        if len(groups) < 2:
            return None
        n = len(known)
        children_entropy = sum(
            len(members) / n * entropy([label for __, label in members])
            for members in groups.values()
        )
        gain = base - children_entropy
        split_info = _split_entropy([len(m) for m in groups.values()], n)
        if split_info <= 0:
            return None
        partitions = {
            value: [row for row, __ in members] for value, members in groups.items()
        }
        return None, gain / split_info, partitions

    def _numeric_split(self, feature: str, known: list[tuple[dict, str]], base: float):
        known = sorted(known, key=lambda pair: float(pair[0][feature]))
        values = [float(row[feature]) for row, __ in known]
        labels = [label for __, label in known]
        n = len(known)
        best_gain, best_threshold = -1.0, None
        for i in range(1, n):
            if values[i] == values[i - 1] or labels[i] == labels[i - 1]:
                continue
            threshold = (values[i] + values[i - 1]) / 2
            left = labels[:i]
            right = labels[i:]
            gain = base - (len(left) * entropy(left) + len(right) * entropy(right)) / n
            if gain > best_gain:
                best_gain, best_threshold = gain, threshold
        if best_threshold is None:
            return None
        left_rows = [row for row, __ in known if float(row[feature]) <= best_threshold]
        right_rows = [row for row, __ in known if float(row[feature]) > best_threshold]
        split_info = _split_entropy([len(left_rows), len(right_rows)], n)
        if split_info <= 0:
            return None
        return (
            best_threshold,
            best_gain / split_info,
            {"<=": left_rows, ">": right_rows},
        )

    # ------------------------------------------------------------------

    def predict(self, row: dict) -> str:
        """Route one row down the tree to a leaf prediction."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier used before fit()")
        node = self.root
        while not node.is_leaf:
            value = row.get(node.feature)
            if value is None:
                break  # unknown feature: answer with this node's majority
            if node.threshold is not None:
                branch = "<=" if float(value) <= node.threshold else ">"
            else:
                branch = str(value)
            child = node.children.get(branch)
            if child is None:
                break  # unseen category: majority at this node
            node = child
        return node.majority()

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]

    def depth(self) -> int:
        """Height of the fitted tree."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier used before fit()")

        def _depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(child) for child in node.children.values())

        return _depth(self.root)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier used before fit()")

        def _leaves(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return sum(_leaves(child) for child in node.children.values())

        return _leaves(self.root)

    def to_text(self) -> str:
        """Human-readable rules — what a clinician actually reads."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier used before fit()")
        lines: list[str] = []

        def _render(node: TreeNode, indent: int, prefix: str) -> None:
            pad = "  " * indent
            if node.is_leaf:
                lines.append(f"{pad}{prefix}-> {node.majority()} {node.distribution}")
                return
            if node.threshold is not None:
                lines.append(f"{pad}{prefix}[{node.feature}]")
                _render(node.children["<="], indent + 1, f"<= {node.threshold:g} ")
                _render(node.children[">"], indent + 1, f">  {node.threshold:g} ")
            else:
                lines.append(f"{pad}{prefix}[{node.feature}]")
                for value in sorted(node.children):
                    _render(node.children[value], indent + 1, f"= {value} ")

        _render(self.root, 0, "")
        return "\n".join(lines)


def _split_entropy(sizes: list[int], total: int) -> float:
    """Entropy of the partition sizes (C4.5's split info)."""
    import math

    return -sum(
        (size / total) * math.log2(size / total) for size in sizes if size > 0
    )
