"""AWSum — the transparent evidence-weight classifier of the paper's ref [9]
(Quinn, Stranieri, Yearwood, Hafen & Jelinek, 2008).

Each categorical attribute value receives an *influence* weight in
[-1, +1]: the difference between the conditional probabilities of the two
classes given that value.  An instance's score is the mean influence of
its present values, classified against a threshold fitted on training
data.  Because every value's contribution is visible, clinicians can read
the model directly — this is the algorithm that surfaced the paper's
reflex+glucose pre-diabetes insight, and :meth:`interaction_influences`
reproduces that discovery mechanism: value *pairs* whose joint influence
departs sharply from what their individual influences suggest.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.errors import MiningError, NotFittedError


@dataclass(frozen=True)
class Influence:
    """Influence of one attribute value toward the positive class."""

    attribute: str
    value: object
    weight: float
    support: int

    def render(self) -> str:
        """E.g. ``fbg_band=Diabetic  +0.82 (n=141)``."""
        return f"{self.attribute}={self.value}  {self.weight:+.2f} (n={self.support})"


@dataclass(frozen=True)
class InteractionInfluence:
    """Joint influence of a value pair, with its departure from additivity."""

    first: Influence
    second: Influence
    joint_weight: float
    support: int
    #: joint weight minus the mean of the individual weights — large
    #: magnitude marks an *unexpected* interaction worth a hypothesis
    surprise: float

    def render(self) -> str:
        """Readable interaction line."""
        return (
            f"{self.first.attribute}={self.first.value} & "
            f"{self.second.attribute}={self.second.value}: joint "
            f"{self.joint_weight:+.2f} vs parts "
            f"({self.first.weight:+.2f}, {self.second.weight:+.2f}) "
            f"surprise {self.surprise:+.2f} (n={self.support})"
        )


class AWSumClassifier:
    """Automated Weighted Sum classifier for a binary target."""

    def __init__(self, min_support: int = 5):
        if min_support < 1:
            raise MiningError("min_support must be >= 1")
        self.min_support = min_support
        self._fitted = False

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "AWSumClassifier":
        """Compute value influences and the classification threshold."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        labelled = [row for row in rows if row.get(target) is not None]
        classes = sorted({str(row[target]) for row in labelled})
        if len(classes) != 2:
            raise MiningError(f"AWSum is binary; got classes {classes}")
        self.target = target
        self.features = list(features)
        #: classes[1] is the positive class (weights point toward it)
        self.classes = classes
        self._rows = labelled

        self._influences: dict[tuple[str, object], Influence] = {}
        for feature in self.features:
            groups: dict[object, list[str]] = {}
            for row in labelled:
                value = row.get(feature)
                if value is None:
                    continue
                groups.setdefault(value, []).append(str(row[target]))
            for value, labels in groups.items():
                if len(labels) < self.min_support:
                    continue
                positive = sum(1 for label in labels if label == classes[1])
                weight = positive / len(labels) - (len(labels) - positive) / len(labels)
                self._influences[(feature, value)] = Influence(
                    feature, value, weight, len(labels)
                )

        if not self._influences:
            raise MiningError(
                "no attribute value reached min_support; lower it or add data"
            )

        scores = [self._score(row) for row in labelled]
        actual = [str(row[target]) for row in labelled]
        self.threshold = self._fit_threshold(scores, actual)
        self._fitted = True
        return self

    def _score(self, row: dict) -> float:
        weights = [
            influence.weight
            for (feature, value), influence in self._influences.items()
            if row.get(feature) == value
        ]
        if not weights:
            return 0.0
        return sum(weights) / len(weights)

    def _fit_threshold(self, scores: list[float], actual: list[str]) -> float:
        candidates = sorted(set(scores))
        if len(candidates) == 1:
            return candidates[0]
        midpoints = [
            (a + b) / 2 for a, b in zip(candidates, candidates[1:])
        ]
        best_threshold, best_accuracy = 0.0, -1.0
        for threshold in midpoints:
            predicted = [
                self.classes[1] if score > threshold else self.classes[0]
                for score in scores
            ]
            correct = sum(1 for p, a in zip(predicted, actual) if p == a)
            if correct / len(actual) > best_accuracy:
                best_accuracy = correct / len(actual)
                best_threshold = threshold
        return best_threshold

    # ------------------------------------------------------------------

    def score(self, row: dict) -> float:
        """Mean influence of the row's present values (the AWSum)."""
        if not self._fitted:
            raise NotFittedError("AWSumClassifier used before fit()")
        return self._score(row)

    def predict(self, row: dict) -> str:
        """Classify by comparing the score against the fitted threshold."""
        return self.classes[1] if self.score(row) > self.threshold else self.classes[0]

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]

    def value_influences(self) -> list[Influence]:
        """All value influences, strongest (absolute) first."""
        if not self._fitted:
            raise NotFittedError("AWSumClassifier used before fit()")
        return sorted(
            self._influences.values(), key=lambda inf: -abs(inf.weight)
        )

    def influence_of(self, attribute: str, value: object) -> Influence | None:
        """Influence record for one value (None below support)."""
        if not self._fitted:
            raise NotFittedError("AWSumClassifier used before fit()")
        return self._influences.get((attribute, value))

    def interaction_influences(
        self, min_support: int | None = None, top: int = 20
    ) -> list[InteractionInfluence]:
        """Value pairs ranked by surprise — the knowledge-acquisition view.

        For every co-occurring pair of influential values (from different
        attributes) the joint influence is computed the same way as the
        individual ones; ``surprise`` is the departure of the joint weight
        from the mean of the parts.  Clinically interesting interactions —
        like absent reflexes combined with mid-range glucose — show up with
        high |surprise|.
        """
        if not self._fitted:
            raise NotFittedError("AWSumClassifier used before fit()")
        support_floor = min_support if min_support is not None else self.min_support
        interactions: list[InteractionInfluence] = []
        influences = list(self._influences.values())
        for first, second in combinations(influences, 2):
            if first.attribute == second.attribute:
                continue
            joint_labels = [
                str(row[self.target])
                for row in self._rows
                if row.get(first.attribute) == first.value
                and row.get(second.attribute) == second.value
            ]
            if len(joint_labels) < support_floor:
                continue
            positive = sum(1 for label in joint_labels if label == self.classes[1])
            joint_weight = (2 * positive - len(joint_labels)) / len(joint_labels)
            expected = (first.weight + second.weight) / 2
            interactions.append(
                InteractionInfluence(
                    first, second, joint_weight, len(joint_labels),
                    joint_weight - expected,
                )
            )
        interactions.sort(key=lambda inter: -abs(inter.surprise))
        return interactions[:top]
