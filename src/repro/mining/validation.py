"""Train/test splitting and cross-validation."""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import MiningError
from repro.mining.metrics import ConfusionMatrix


def train_test_split(
    rows: Sequence[dict],
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[list[dict], list[dict]]:
    """Shuffle (seeded) and split rows into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise MiningError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if len(rows) < 2:
        raise MiningError("need at least two rows to split")
    shuffled = list(rows)
    random.Random(seed).shuffle(shuffled)
    cut = max(1, int(round(len(shuffled) * test_fraction)))
    cut = min(cut, len(shuffled) - 1)
    return shuffled[cut:], shuffled[:cut]


def stratified_k_fold(
    rows: Sequence[dict], target: str, k: int = 5, seed: int = 0
) -> list[tuple[list[dict], list[dict]]]:
    """K folds preserving class proportions; returns [(train, test), ...].

    Every row lands in exactly one test fold.  Classes with fewer members
    than ``k`` still distribute round-robin, so no fold is ever empty for
    ``k <= len(rows)``.
    """
    if k < 2:
        raise MiningError(f"k must be >= 2, got {k}")
    if len(rows) < k:
        raise MiningError(f"cannot make {k} folds from {len(rows)} rows")
    rng = random.Random(seed)
    by_class: dict[object, list[dict]] = {}
    for row in rows:
        by_class.setdefault(row.get(target), []).append(row)
    folds: list[list[dict]] = [[] for __ in range(k)]
    offset = 0
    for cls in sorted(by_class, key=str):
        members = by_class[cls]
        rng.shuffle(members)
        for i, row in enumerate(members):
            folds[(i + offset) % k].append(row)
        offset += len(members)
    out = []
    for i in range(k):
        test = folds[i]
        train = [row for j in range(k) if j != i for row in folds[j]]
        out.append((train, test))
    return out


def cross_validate(
    model_factory: Callable[[], object],
    rows: Sequence[dict],
    target: str,
    features: Sequence[str],
    k: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """K-fold CV of any classifier with the fit/predict_many convention.

    Returns mean/min/max accuracy and mean macro-F1 across folds.
    """
    accuracies: list[float] = []
    macro_f1s: list[float] = []
    for train, test in stratified_k_fold(rows, target, k=k, seed=seed):
        model = model_factory()
        model.fit(train, target, list(features))  # type: ignore[attr-defined]
        predicted = model.predict_many(test)  # type: ignore[attr-defined]
        actual = [row.get(target) for row in test]
        matrix = ConfusionMatrix(actual, predicted)
        accuracies.append(matrix.accuracy())
        macro_f1s.append(matrix.macro_f1())
    return {
        "mean_accuracy": sum(accuracies) / len(accuracies),
        "min_accuracy": min(accuracies),
        "max_accuracy": max(accuracies),
        "mean_macro_f1": sum(macro_f1s) / len(macro_f1s),
        "folds": float(k),
    }
