"""Naive Bayes over mixed categorical/numeric clinical features.

Categorical features use Laplace-smoothed frequency estimates; numeric
features a Gaussian likelihood.  Nulls contribute nothing to the
log-posterior (treated as missing-at-random), which suits screening data
where different visits record different test panels.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.errors import MiningError, NotFittedError


class NaiveBayesClassifier:
    """Hybrid categorical/Gaussian naive Bayes."""

    def __init__(self, smoothing: float = 1.0):
        if smoothing <= 0:
            raise MiningError("smoothing must be positive")
        self.smoothing = smoothing
        self._fitted = False

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "NaiveBayesClassifier":
        """Estimate priors and per-class likelihood parameters."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        self.target = target
        self.features = list(features)
        labelled = [row for row in rows if row.get(target) is not None]
        if not labelled:
            raise MiningError(f"no rows carry a {target!r} label")
        self.classes = sorted({str(row[target]) for row in labelled})

        self._numeric: set[str] = set()
        for feature in self.features:
            values = [row.get(feature) for row in labelled]
            present = [v for v in values if v is not None]
            if present and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in present
            ):
                self._numeric.add(feature)

        self._priors: dict[str, float] = {}
        self._cat_likelihood: dict[tuple[str, str], Counter] = {}
        self._cat_totals: dict[tuple[str, str], int] = {}
        self._cat_vocab: dict[str, set] = {f: set() for f in self.features}
        self._gauss: dict[tuple[str, str], tuple[float, float]] = {}

        n = len(labelled)
        by_class: dict[str, list[dict]] = {c: [] for c in self.classes}
        for row in labelled:
            by_class[str(row[target])].append(row)
        for cls, members in by_class.items():
            self._priors[cls] = len(members) / n
            for feature in self.features:
                values = [m.get(feature) for m in members]
                present = [v for v in values if v is not None]
                if feature in self._numeric:
                    if present:
                        mean = sum(present) / len(present)
                        var = sum((v - mean) ** 2 for v in present) / max(
                            len(present) - 1, 1
                        )
                    else:
                        mean, var = 0.0, 1.0
                    self._gauss[(cls, feature)] = (mean, max(var, 1e-9))
                else:
                    counter = Counter(str(v) for v in present)
                    self._cat_likelihood[(cls, feature)] = counter
                    self._cat_totals[(cls, feature)] = len(present)
                    self._cat_vocab[feature].update(counter)
        self._fitted = True
        return self

    def _log_likelihood(self, cls: str, feature: str, value: object) -> float:
        if feature in self._numeric:
            mean, var = self._gauss[(cls, feature)]
            v = float(value)  # type: ignore[arg-type]
            return -0.5 * (math.log(2 * math.pi * var) + (v - mean) ** 2 / var)
        counter = self._cat_likelihood[(cls, feature)]
        total = self._cat_totals[(cls, feature)]
        vocab_size = max(len(self._cat_vocab[feature]), 1)
        count = counter.get(str(value), 0)
        return math.log(
            (count + self.smoothing) / (total + self.smoothing * vocab_size)
        )

    def predict_proba(self, row: dict) -> dict[str, float]:
        """Posterior probability per class for one row."""
        if not self._fitted:
            raise NotFittedError("NaiveBayesClassifier used before fit()")
        log_posts = {}
        for cls in self.classes:
            score = math.log(self._priors[cls])
            for feature in self.features:
                value = row.get(feature)
                if value is None:
                    continue
                score += self._log_likelihood(cls, feature, value)
            log_posts[cls] = score
        peak = max(log_posts.values())
        expd = {c: math.exp(s - peak) for c, s in log_posts.items()}
        total = sum(expd.values())
        return {c: v / total for c, v in expd.items()}

    def predict(self, row: dict) -> str:
        """Most probable class for one row."""
        probs = self.predict_proba(row)
        return max(sorted(probs), key=lambda c: probs[c])

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]
